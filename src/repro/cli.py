"""Command-line interface.

Mirrors how operators would drive a deployment from the monitoring server:

* ``repro-prodigy generate``  — synthesise a labeled campaign to CSV + labels
* ``repro-prodigy simulate``  — synthesise a named *scenario* campaign
  (``--scenario gpu-cluster`` renders a mixed CPU+GPU fleet to one
  union-column CSV; absent metrics are NaN in a node's rows)
* ``repro-prodigy detect``    — score every node-run in a telemetry file
  with a per-node-class breakdown (schema-aware when ``--scenario`` names
  the fleet the telemetry came from)
* ``repro-prodigy train``     — fit a deployment from CSV telemetry + labels
* ``repro-prodigy predict``   — per-node verdicts for a job id
* ``repro-prodigy explain``   — CoMTE counterfactual for one flagged node-run
* ``repro-prodigy evaluate``  — macro-F1 of a saved deployment on labeled data
* ``repro-prodigy runtime``   — runtime-layer utilities (``stats`` self-bench)
* ``repro-prodigy lifecycle`` — model-operations: ``register`` an artifact
  dir as an immutable version, ``activate``/``rollback`` the serving
  version, ``status`` (versions + drift + audit tail), ``drift`` (offline
  drift check of telemetry against the active version's training
  profile), ``gc`` old versions
* ``repro-prodigy fleet``     — sharded multi-worker scoring: ``run`` a
  synthetic stream through a worker fleet (optionally killing a worker
  mid-run to exercise rebalancing), ``status`` to render a saved fleet
  status JSON
* ``repro-prodigy dsos``      — columnar historical store: ``ingest`` CSV
  telemetry into time-partitioned segments (columns are grouped into
  containers by their ``<metric>::<sampler>`` suffix), ``compact`` raw
  history into the 1min/10min retention tiers, ``query`` a window back
  out (optionally to CSV), ``stats`` for the segment/tier layout and a
  windowed rollup

The train/predict/evaluate/runtime commands accept ``--workers`` /
``--cache-size`` (or the ``PRODIGY_WORKERS`` / ``PRODIGY_CACHE_SIZE``
environment variables) to configure the shared extraction runtime, and
streaming consumers (fleet, lifecycle) accept ``--streaming-mode
batch|rolling`` (``PRODIGY_STREAMING_MODE``) to pick between the batch
window recompute and the O(1) rolling feature kernels.

The CSV format is the LDMS-extract layout of :mod:`repro.telemetry.io`
(index columns ``job_id, component_id, timestamp``, then metric columns);
labels are JSON mapping ``"job_id:component_id"`` to 0/1.

Run ``python -m repro.cli --help`` for details.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.anomalies import TABLE2_INJECTORS
from repro.core import Prodigy
from repro.eval import classification_report
from repro.runtime import (
    ExecutionConfig,
    ParallelExtractor,
    get_instrumentation,
    set_execution_config,
)
from repro.telemetry.frame import TelemetryFrame
from repro.telemetry.io import read_csv, write_csv
from repro.telemetry.preprocessing import standard_preprocess
from repro.util.rng import derive_seed, ensure_rng
from repro.workloads import ECLIPSE, ECLIPSE_APPS, JobRunner, JobSpec, default_catalog

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-prodigy",
        description="Prodigy HPC anomaly detection (SC'23 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    runtime_opts = argparse.ArgumentParser(add_help=False)
    runtime_opts.add_argument(
        "--workers", type=int, default=None,
        help="extraction worker processes (default: PRODIGY_WORKERS or 1)",
    )
    runtime_opts.add_argument(
        "--cache-size", type=int, default=None,
        help="feature-cache entries, 0 disables (default: PRODIGY_CACHE_SIZE or 512)",
    )
    runtime_opts.add_argument(
        "--streaming-mode", choices=["batch", "rolling"], default=None,
        help="online feature path: batch recompute or O(1) rolling kernels "
             "(default: PRODIGY_STREAMING_MODE or batch)",
    )

    scenario_opts = argparse.ArgumentParser(add_help=False)
    scenario_opts.add_argument(
        "--scenario", default=None, metavar="NAME",
        help="named fleet scenario for schema-aware telemetry loading "
             "(e.g. gpu-cluster); omit for plain homogeneous CSV",
    )

    gen = sub.add_parser("generate", help="synthesise a labeled telemetry campaign")
    gen.add_argument("--output", type=Path, required=True, help="CSV output path")
    gen.add_argument("--labels", type=Path, required=True, help="labels JSON output path")
    gen.add_argument("--jobs", type=int, default=12, help="healthy jobs to run")
    gen.add_argument("--anomalous-jobs", type=int, default=4, help="anomalous jobs to run")
    gen.add_argument("--nodes", type=int, default=4, help="nodes per job")
    gen.add_argument("--duration", type=int, default=300, help="seconds per job")
    gen.add_argument("--seed", type=int, default=0)

    sim = sub.add_parser(
        "simulate", parents=[scenario_opts],
        help="synthesise a labeled campaign for a named fleet scenario",
    )
    sim.set_defaults(scenario="gpu-cluster")
    sim.add_argument("--output", type=Path, required=True, help="CSV output path")
    sim.add_argument("--labels", type=Path, required=True, help="labels JSON output path")
    sim.add_argument(
        "--manifest", type=Path, default=None,
        help="also write a JSON manifest (job classes + injected anomaly names)",
    )
    sim.add_argument("--jobs", type=int, default=12, help="healthy jobs to run")
    sim.add_argument("--anomalous-jobs", type=int, default=4, help="anomalous jobs to run")
    sim.add_argument("--nodes", type=int, default=4, help="nodes per job")
    sim.add_argument("--duration", type=int, default=300, help="seconds per job")
    sim.add_argument("--seed", type=int, default=0)

    train = sub.add_parser(
        "train", parents=[runtime_opts, scenario_opts],
        help="train a deployment from CSV telemetry",
    )
    train.add_argument("--telemetry", type=Path, required=True, help="CSV telemetry")
    train.add_argument("--labels", type=Path, help="labels JSON (omit for healthy-only)")
    train.add_argument("--artifacts", type=Path, required=True, help="output directory")
    train.add_argument("--features", type=int, default=1024, help="selected feature count")
    train.add_argument("--epochs", type=int, default=300)
    train.add_argument("--batch-size", type=int, default=64, help="training minibatch size")
    train.add_argument(
        "--patience", type=int, default=40,
        help="early-stopping patience in epochs on the validation "
             "reconstruction error (-1 disables early stopping)",
    )
    train.add_argument("--trim", type=float, default=30.0, help="edge trim seconds")
    train.add_argument("--seed", type=int, default=0)

    pred = sub.add_parser(
        "predict", parents=[runtime_opts, scenario_opts],
        help="score the nodes of one job",
    )
    pred.add_argument("--telemetry", type=Path, required=True, help="CSV telemetry")
    pred.add_argument("--artifacts", type=Path, required=True, help="deployment directory")
    pred.add_argument("--job", type=int, required=True, help="job id to score")
    pred.add_argument("--trim", type=float, default=30.0)
    pred.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    det = sub.add_parser(
        "detect", parents=[runtime_opts, scenario_opts],
        help="score every node-run with a per-node-class breakdown",
    )
    det.add_argument("--telemetry", type=Path, required=True, help="CSV telemetry")
    det.add_argument("--artifacts", type=Path, required=True, help="deployment directory")
    det.add_argument("--labels", type=Path, default=None,
                     help="labels JSON for detection quality metrics")
    det.add_argument("--job", type=int, default=None, help="restrict to one job id")
    det.add_argument("--trim", type=float, default=30.0)
    det.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    ex = sub.add_parser(
        "explain", parents=[runtime_opts, scenario_opts],
        help="CoMTE counterfactual for one flagged node-run",
    )
    ex.add_argument("--telemetry", type=Path, required=True, help="CSV telemetry")
    ex.add_argument("--artifacts", type=Path, required=True, help="deployment directory")
    ex.add_argument("--job", type=int, required=True, help="job id of the run to explain")
    ex.add_argument(
        "--node", type=int, default=None,
        help="component id (default: the job's highest-scoring node)",
    )
    ex.add_argument(
        "--max-metrics", type=int, default=5,
        help="substitution budget for the greedy search",
    )
    ex.add_argument(
        "--distractors", type=int, default=10,
        help="healthy runs from the telemetry retained as distractors",
    )
    ex.add_argument("--trim", type=float, default=30.0)
    ex.add_argument("--json", action="store_true", help="emit JSON instead of text")

    ev = sub.add_parser(
        "evaluate", parents=[runtime_opts, scenario_opts],
        help="macro-F1 of a deployment on labeled telemetry",
    )
    ev.add_argument("--telemetry", type=Path, required=True)
    ev.add_argument("--labels", type=Path, required=True)
    ev.add_argument("--artifacts", type=Path, required=True)
    ev.add_argument("--trim", type=float, default=30.0)

    rt = sub.add_parser(
        "runtime", parents=[runtime_opts], help="extraction/inference runtime utilities"
    )
    rt.add_argument(
        "action", choices=["stats"],
        help="stats: run a small self-benchmark and print per-stage timings",
    )
    rt.add_argument("--samples", type=int, default=24, help="node-runs in the self-bench")
    rt.add_argument("--metrics", type=int, default=8, help="metrics per node-run")
    rt.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    lc = sub.add_parser(
        "lifecycle", parents=[runtime_opts],
        help="model registry / drift / deployment operations",
    )
    lc.add_argument(
        "action",
        choices=["register", "activate", "rollback", "status", "drift", "gc"],
        help="lifecycle operation",
    )
    lc.add_argument("--registry", type=Path, required=True, help="registry directory")
    lc.add_argument("--artifacts", type=Path, help="artifact dir to register")
    lc.add_argument("--version", help="version id (e.g. v0001) for activate")
    lc.add_argument("--activate", action="store_true",
                    help="activate immediately after register")
    lc.add_argument("--note", default="", help="free-form note for the audit log")
    lc.add_argument("--telemetry", type=Path, help="CSV telemetry for drift checks")
    lc.add_argument("--trim", type=float, default=30.0)
    lc.add_argument("--window", type=int, default=32,
                    help="drift window size in scored node-runs")
    lc.add_argument("--keep", type=int, default=3, help="versions to keep on gc")
    lc.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    fl = sub.add_parser(
        "fleet", parents=[runtime_opts],
        help="sharded multi-worker streaming scorer (run a demo stream, render status)",
    )
    fl.add_argument(
        "action", choices=["run", "status"],
        help="run: stream synthetic telemetry through a worker fleet; "
             "status: render a saved fleet status JSON",
    )
    fl.add_argument("--fleet-workers", type=int, default=2,
                    help="scoring workers on the ring (run)")
    fl.add_argument("--transport", choices=["inline", "process"], default=None,
                    help="worker transport: inline (cooperative, one thread) or "
                         "process (one OS process per worker over shared-memory "
                         "rings); default: PRODIGY_FLEET_TRANSPORT or inline")
    fl.add_argument("--nodes", type=int, default=8, help="streaming nodes (run)")
    fl.add_argument("--metrics", type=int, default=6, help="metrics per node (run)")
    fl.add_argument("--samples", type=int, default=120,
                    help="telemetry samples per node (run)")
    fl.add_argument("--chunk", type=int, default=20,
                    help="samples per submitted chunk (run)")
    fl.add_argument("--queue-capacity", type=int, default=256,
                    help="per-worker ingest queue bound (run)")
    fl.add_argument("--kill-worker", default=None, metavar="ID",
                    help="kill this worker mid-run (e.g. w0) to exercise rebalancing")
    fl.add_argument("--kill-after", type=int, default=0,
                    help="submitted chunks before the kill fires")
    fl.add_argument("--status-out", type=Path, default=None,
                    help="also write the final status JSON here (run)")
    fl.add_argument("--status-file", type=Path, default=None,
                    help="saved status JSON to render (status)")
    fl.add_argument("--seed", type=int, default=0)
    fl.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    ds = sub.add_parser(
        "dsos", parents=[runtime_opts],
        help="columnar historical store (segments, tiers, mmap queries)",
    )
    ds.add_argument(
        "action", choices=["ingest", "compact", "query", "stats"],
        help="ingest: CSV telemetry into the store; compact: build the "
             "1min/10min tiers; query: read a window back out; stats: "
             "segment/tier layout + windowed rollup",
    )
    ds.add_argument("--store", type=Path, required=True, help="store root directory")
    ds.add_argument("--telemetry", type=Path, help="CSV telemetry to ingest")
    ds.add_argument(
        "--segment-span", type=float, default=3600.0,
        help="seconds of history per segment window (ingest)",
    )
    ds.add_argument("--sampler", default=None,
                    help="container to query (default: the store's only one)")
    ds.add_argument("--job", type=int, default=None, help="job id filter (query)")
    ds.add_argument("--component", type=int, default=None,
                    help="component id filter (query)")
    ds.add_argument("--t0", type=float, default=None, help="window start (inclusive)")
    ds.add_argument("--t1", type=float, default=None, help="window end (inclusive)")
    ds.add_argument("--tier", default=None,
                    help="retention tier (query: default raw; stats rollup: "
                         "default 1min)")
    ds.add_argument("--output", type=Path, default=None,
                    help="write the query result to this CSV instead of a preview")
    ds.add_argument("--limit", type=int, default=10,
                    help="preview rows printed for query (without --output)")
    ds.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    sv = sub.add_parser(
        "serve", parents=[runtime_opts, scenario_opts],
        help="one dashboard request through the multi-tenant serving gateway",
    )
    sv.add_argument("--telemetry", type=Path, required=True, help="CSV telemetry")
    sv.add_argument("--artifacts", type=Path, required=True, help="deployment directory")
    sv.add_argument(
        "--dashboard", default="anomaly_detection",
        help="dashboard to render (anomaly_detection, node_analysis, slo, ...)",
    )
    sv.add_argument("--job", type=int, default=0, help="job id the dashboard reads")
    sv.add_argument("--node", type=int, default=None,
                    help="component id filter (node_analysis)")
    sv.add_argument("--metric", action="append", default=None, metavar="NAME",
                    help="metric name filter for node_analysis (repeatable)")
    sv.add_argument("--tenant", default="operator",
                    help="tenant name used for SLO accounting")
    sv.add_argument("--trim", type=float, default=30.0)
    sv.add_argument("--json", action="store_true", help="emit JSON instead of tables")

    lg = sub.add_parser(
        "loadgen", parents=[runtime_opts],
        help="deterministic multi-tenant traffic replay against a demo gateway",
    )
    lg.add_argument("--mode", choices=["open", "closed"], default="open",
                    help="open: submit on the arrival schedule; closed: N users "
                         "with think time")
    lg.add_argument("--horizon", type=float, default=5.0,
                    help="virtual seconds of traffic to replay")
    lg.add_argument("--interactive-rate", type=float, default=30.0,
                    help="mean arrival rate of the interactive tenant (Hz)")
    lg.add_argument("--batch-rate", type=float, default=60.0,
                    help="mean arrival rate of the batch tenant (Hz)")
    lg.add_argument("--jobs", type=int, default=3,
                    help="healthy jobs in the synthetic deployment")
    lg.add_argument("--promote-at", type=float, default=None, metavar="T",
                    help="hot-swap the model version at virtual time T "
                         "(exercises cache invalidation mid-replay)")
    lg.add_argument("--check", action="store_true",
                    help="exit 1 on priority inversions, stale responses, or a "
                         "missed interactive SLO")
    lg.add_argument("--out", type=Path, default=None,
                    help="write the replay report JSON here")
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--json", action="store_true", help="emit JSON instead of tables")
    return parser


def _print_sections(sections) -> None:
    """Render (title, headers, rows) sections as aligned tables.

    The one table formatter for operator-facing subcommands (``runtime
    stats``, ``lifecycle status``, ``lifecycle drift``).
    """
    from repro.serving.dashboard import render_table

    for i, (title, headers, rows) in enumerate(sections):
        if i:
            print()
        print(f"{title}:")
        print(render_table(headers, rows))


def _resolve_scenario(name: str):
    """Scenario by name, or None after the standard one-line rc-2 error."""
    from repro.scenarios import available_scenarios, get_scenario

    try:
        return get_scenario(name)
    except KeyError:
        print(
            f"repro-prodigy: error: unknown scenario {name!r} "
            f"(available: {', '.join(available_scenarios())})",
            file=sys.stderr,
        )
        return None


_SCENARIO_ERROR = object()


def _scenario_from(args: argparse.Namespace):
    """None (no --scenario given), a Scenario, or _SCENARIO_ERROR."""
    name = getattr(args, "scenario", None)
    if name is None:
        return None
    scenario = _resolve_scenario(name)
    return scenario if scenario is not None else _SCENARIO_ERROR


def _load_series(telemetry: Path, trim: float, scenario=None):
    frame = read_csv(telemetry)
    if scenario is not None:
        from repro.scenarios import load_scenario_series

        return load_scenario_series(frame, scenario, trim_seconds=trim)
    catalog = default_catalog()
    series = [
        standard_preprocess(s, [m for m in catalog.counter_names if m in frame.metric_names], trim_seconds=trim)
        for s in frame.iter_node_series()
    ]
    return series


def _load_labels(path: Path) -> dict[tuple[int, int], int]:
    raw = json.loads(path.read_text())
    out = {}
    for key, value in raw.items():
        job, comp = key.split(":")
        out[(int(job), int(comp))] = int(value)
    return out


def _labels_for(series, labels_map):
    return np.array(
        [labels_map.get((s.job_id, s.component_id), 0) for s in series], dtype=np.int64
    )


def cmd_generate(args: argparse.Namespace) -> int:
    rng = ensure_rng(args.seed)
    catalog = default_catalog()
    runner = JobRunner(ECLIPSE, catalog=catalog, seed=derive_seed(rng))
    injectors = TABLE2_INJECTORS()
    apps = list(ECLIPSE_APPS.values())
    frames, labels = [], {}
    job_id = 0
    for i in range(args.jobs + args.anomalous_jobs):
        job_id += 1
        app = apps[i % len(apps)]
        anomalies = {}
        if i >= args.jobs:
            inj = injectors[int(rng.integers(len(injectors)))]
            anomalies = {0: inj}
        result = runner.run(
            JobSpec(job_id=job_id, app=app, n_nodes=args.nodes,
                    duration_s=args.duration, anomalies=anomalies)
        )
        frames.append(result.frame)
        for comp in result.component_ids:
            labels[f"{job_id}:{comp}"] = result.node_label(comp)
    write_csv(TelemetryFrame.concat(frames), args.output)
    args.labels.parent.mkdir(parents=True, exist_ok=True)
    args.labels.write_text(json.dumps(labels, indent=2, sort_keys=True))
    n_anom = sum(labels.values())
    print(f"wrote {args.output} ({job_id} jobs) and {args.labels} "
          f"({n_anom}/{len(labels)} anomalous node-runs)")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Render a named scenario campaign to union-column CSV + labels."""
    from repro.scenarios import simulate_scenario

    scenario = _resolve_scenario(args.scenario)
    if scenario is None:
        return 2
    run = simulate_scenario(
        scenario, jobs=args.jobs, anomalous_jobs=args.anomalous_jobs,
        nodes=args.nodes, duration_s=args.duration, seed=args.seed,
    )
    write_csv(run.frame, args.output)
    args.labels.parent.mkdir(parents=True, exist_ok=True)
    args.labels.write_text(json.dumps(run.labels, indent=2, sort_keys=True))
    if args.manifest is not None:
        args.manifest.parent.mkdir(parents=True, exist_ok=True)
        args.manifest.write_text(json.dumps({
            "scenario": run.scenario,
            "job_classes": {str(j): c for j, c in run.job_classes.items()},
            "anomaly_names": run.anomaly_names,
        }, indent=2, sort_keys=True))
    n_anom = sum(run.labels.values())
    print(f"wrote {args.output} ({run.n_jobs} jobs, "
          f"{len(scenario.classes)} node classes) and {args.labels} "
          f"({n_anom}/{len(run.labels)} anomalous node-runs)")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    if scenario is _SCENARIO_ERROR:
        return 2
    series = _load_series(args.telemetry, args.trim, scenario)
    labels = None
    if args.labels is not None:
        labels = _labels_for(series, _load_labels(args.labels))
    prodigy = Prodigy(
        n_features=args.features, epochs=args.epochs,
        batch_size=args.batch_size,
        patience=None if args.patience < 0 else args.patience,
        seed=args.seed,
    )
    prodigy.fit(series, labels)
    prodigy.save(args.artifacts)
    print(f"trained on {len(series)} node-runs "
          f"({'healthy-only' if labels is None else f'{int(labels.sum())} anomalous dropped'}); "
          f"threshold={prodigy.detector.threshold_:.4f}; artifacts in {args.artifacts}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    if scenario is _SCENARIO_ERROR:
        return 2
    prodigy = Prodigy.load(args.artifacts)
    series = [
        s for s in _load_series(args.telemetry, args.trim, scenario)
        if s.job_id == args.job
    ]
    if not series:
        print(f"error: job {args.job} not found in {args.telemetry}", file=sys.stderr)
        return 2
    scores = prodigy.anomaly_score(series)
    preds = prodigy.predict(series)
    if args.json:
        print(json.dumps(
            [
                {"component_id": s.component_id, "prediction": int(p), "score": float(sc)}
                for s, p, sc in zip(series, preds, scores)
            ],
            indent=2,
        ))
    else:
        print(f"job {args.job} (threshold {prodigy.detector.threshold_:.4f}):")
        for s, p, sc in zip(series, preds, scores):
            verdict = "ANOMALOUS" if p else "healthy"
            print(f"  node {s.component_id:>6}: {verdict:<9} score={sc:.4f}")
    return 0


def _series_class_name(s, scenario) -> str:
    """Node-class label for the detect table (scenario class or schema name)."""
    if scenario is not None:
        cls = scenario.class_of_metric_names(s.metric_names)
        if cls is not None:
            return cls.name
    return s.schema.name if s.schema is not None else "unknown"


def cmd_detect(args: argparse.Namespace) -> int:
    """Score every node-run in the telemetry with a per-class breakdown."""
    scenario = _scenario_from(args)
    if scenario is _SCENARIO_ERROR:
        return 2
    prodigy = Prodigy.load(args.artifacts)
    series = _load_series(args.telemetry, args.trim, scenario)
    if args.job is not None:
        series = [s for s in series if s.job_id == args.job]
        if not series:
            print(f"error: job {args.job} not found in {args.telemetry}",
                  file=sys.stderr)
            return 2
    scores = prodigy.anomaly_score(series)
    preds = prodigy.predict(series)
    classes = [_series_class_name(s, scenario) for s in series]
    per_class: dict[str, dict[str, int]] = {}
    for name, p in zip(classes, preds):
        stats = per_class.setdefault(name, {"node_runs": 0, "alerts": 0})
        stats["node_runs"] += 1
        stats["alerts"] += int(p)
    payload = {
        "threshold": float(prodigy.detector.threshold_),
        "n_node_runs": len(series),
        "n_anomalous": int(preds.sum()),
        "classes": per_class,
        "nodes": [
            {"job_id": s.job_id, "component_id": s.component_id,
             "node_class": c, "prediction": int(p), "score": float(sc)}
            for s, c, p, sc in zip(series, classes, preds, scores)
        ],
    }
    if args.labels is not None:
        y = _labels_for(series, _load_labels(args.labels))
        report = classification_report(y, preds)
        payload["report"] = {
            "f1_macro": report.f1_macro,
            "accuracy": report.accuracy,
            "precision_anomalous": report.precision_anomalous,
            "recall_anomalous": report.recall_anomalous,
        }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    sections = [
        (
            f"verdicts (threshold {payload['threshold']:.4f}, "
            f"{payload['n_anomalous']}/{payload['n_node_runs']} anomalous)",
            ["job", "node", "class", "verdict", "score"],
            [[n["job_id"], n["component_id"], n["node_class"],
              "ANOMALOUS" if n["prediction"] else "healthy", n["score"]]
             for n in payload["nodes"]],
        ),
        (
            "node classes",
            ["class", "node-runs", "alerts"],
            [[name, c["node_runs"], c["alerts"]]
             for name, c in sorted(per_class.items())],
        ),
    ]
    _print_sections(sections)
    if "report" in payload:
        r = payload["report"]
        print(f"\nmacro-F1 {r['f1_macro']:.3f}  accuracy {r['accuracy']:.3f}  "
              f"anomalous P/R {r['precision_anomalous']:.3f}/{r['recall_anomalous']:.3f}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """CoMTE counterfactual for one node-run of a job."""
    from repro.explain.comte import OptimizedSearch
    from repro.explain.evaluators import FeatureSpaceEvaluator

    scenario = _scenario_from(args)
    if scenario is _SCENARIO_ERROR:
        return 2
    prodigy = Prodigy.load(args.artifacts)
    series = _load_series(args.telemetry, args.trim, scenario)
    job = [s for s in series if s.job_id == args.job]
    if not job:
        print(f"error: job {args.job} not found in {args.telemetry}", file=sys.stderr)
        return 2
    if args.node is not None:
        picked = [s for s in job if s.component_id == args.node]
        if not picked:
            print(f"error: node {args.node} not found in job {args.job}",
                  file=sys.stderr)
            return 2
        sample = picked[0]
    else:
        sample = job[int(np.argmax(prodigy.anomaly_score(job)))]
    # Distractors: predicted-healthy runs from the same telemetry file (the
    # loaded deployment carries no training references).  CoMTE substitutes
    # whole metric columns, so distractors must share the flagged run's
    # column layout — on a mixed fleet only same-class nodes qualify.
    healthy = [
        s for s, p in zip(series, prodigy.predict(series))
        if p == 0 and s is not sample and s.metric_names == sample.metric_names
    ][: args.distractors]
    if not healthy:
        print("error: no predicted-healthy runs in the telemetry to use as "
              "distractors", file=sys.stderr)
        return 2
    evaluator = FeatureSpaceEvaluator(prodigy.pipeline, prodigy.detector)
    search = OptimizedSearch(evaluator, healthy, max_metrics=args.max_metrics)
    cf = search.explain(sample)
    if args.json:
        print(json.dumps({
            "job_id": sample.job_id,
            "component_id": sample.component_id,
            "metrics": list(cf.metrics),
            "flipped": cf.flipped,
            "p_anomalous_before": cf.p_anomalous_before,
            "p_anomalous_after": cf.p_anomalous_after,
            "distractor_job_id": cf.distractor_job_id,
            "distractor_component_id": cf.distractor_component_id,
            "n_evaluations": cf.n_evaluations,
            "n_cached_evaluations": cf.n_cached_evaluations,
        }, indent=2))
    else:
        print(f"job {args.job}, node {sample.component_id}:")
        print(f"  {cf.summary()}")
        print(f"  {cf.evaluation_summary()}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    scenario = _scenario_from(args)
    if scenario is _SCENARIO_ERROR:
        return 2
    prodigy = Prodigy.load(args.artifacts)
    series = _load_series(args.telemetry, args.trim, scenario)
    y = _labels_for(series, _load_labels(args.labels))
    report = classification_report(y, prodigy.predict(series))
    print(f"macro-F1 {report.f1_macro:.3f}  accuracy {report.accuracy:.3f}  "
          f"anomalous P/R {report.precision_anomalous:.3f}/{report.recall_anomalous:.3f}")
    return 0


def cmd_runtime(args: argparse.Namespace) -> int:
    """Self-benchmark the runtime layer and report per-stage timings."""
    from repro.core import ProdigyDetector
    from repro.features import FeatureExtractor
    from repro.features.scaling import make_scaler
    from repro.features.selection import ChiSquareSelector
    from repro.pipeline import DataPipeline
    from repro.telemetry import NodeSeries

    inst = get_instrumentation()
    inst.reset()

    rng = np.random.default_rng(0)
    names = tuple(f"m{i}" for i in range(args.metrics))
    series = [
        NodeSeries(1, c, np.arange(180.0), rng.random((180, args.metrics)), names)
        for c in range(args.samples)
    ]
    engine = ParallelExtractor(FeatureExtractor(resample_points=64))
    features, feature_names = engine.extract_matrix(series)  # cold extraction
    engine.extract_matrix(series)  # warm: served from the feature cache

    # A sentinel-fitted pipeline + tiny detector so select/scale/score show up.
    n_keep = min(64, features.shape[1])
    var = features.var(axis=0)
    keep = np.sort(np.lexsort((np.arange(var.size), -var))[:n_keep])
    pipeline = DataPipeline(engine, n_features=n_keep)
    pipeline.selected_names_ = tuple(feature_names[i] for i in keep)
    pipeline.selector_ = ChiSquareSelector.sentinel(pipeline.selected_names_, var[keep])
    pipeline.scaler_ = make_scaler(pipeline.scaler_kind).fit(features[:, keep])
    scaled = pipeline.transform_series(series)
    detector = ProdigyDetector(
        hidden_dims=(16, 8), latent_dim=4, epochs=20, batch_size=16,
        learning_rate=1e-3, seed=0,
    ).fit(scaled)
    inst.reset()  # keep only the steady-state pass in the report
    detector.anomaly_score(pipeline.transform_series(series))

    stats = engine.stats()
    engine.close()
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    cfg = stats["config"]
    sections = [(
        "runtime config",
        ["n_workers", "chunk_size", "cache_size", "instrument"],
        [[cfg["n_workers"], cfg["chunk_size"], cfg["cache_size"], cfg["instrument"]]],
    )]
    plan = stats.get("scheduler")
    if plan is not None:
        sections.append((
            "chunk scheduler",
            ["mode", "reason", "workers (cfg/eff)", "cpus", "units"],
            [[
                plan["mode"], plan["reason"],
                f"{plan['configured_workers']}/{plan['effective_workers']}",
                plan["cpu_count"], plan.get("n_units", "-"),
            ]],
        ))
    cache = stats["cache"]
    if cache is not None:
        sections.append((
            "feature cache",
            ["entries", "hits", "misses", "hit rate"],
            [[cache["entries"], cache["hits"], cache["misses"], f"{cache['hit_rate']:.2f}"]],
        ))
    _print_sections(sections)
    warmth = "warm cache" if cache is not None else "cache disabled"
    print(f"\nstage timings ({args.samples} runs x {args.metrics} metrics, {warmth}):")
    print(inst.report())
    return 0


def cmd_lifecycle(args: argparse.Namespace) -> int:
    """Model lifecycle operations against a registry directory."""
    from repro.lifecycle import DriftMonitor, ModelRegistry
    from repro.serving.dashboard import lifecycle_sections

    registry = ModelRegistry(args.registry)

    if args.action == "register":
        if args.artifacts is None:
            print("repro-prodigy: error: register requires --artifacts", file=sys.stderr)
            return 2
        record = registry.register_artifacts(args.artifacts, note=args.note)
        if args.activate:
            registry.activate(record.version, reason="register --activate")
        print(f"registered {args.artifacts} as {record.version}"
              f"{' (active)' if args.activate else ''}")
        return 0

    if args.action == "activate":
        if not args.version:
            print("repro-prodigy: error: activate requires --version", file=sys.stderr)
            return 2
        registry.activate(args.version, reason=args.note or "cli activate")
        print(f"active version is now {args.version}")
        return 0

    if args.action == "rollback":
        record = registry.rollback(reason=args.note or "cli rollback")
        print(f"rolled back; active version is now {record.version}")
        return 0

    if args.action == "gc":
        removed = registry.gc(keep=args.keep)
        print(f"collected {len(removed)} version(s): {', '.join(removed) or '-'}")
        return 0

    if args.action == "status":
        status = registry.status()
        if args.json:
            print(json.dumps(status, indent=2))
        else:
            _print_sections(lifecycle_sections(status))
        return 0

    # action == "drift": offline check of telemetry against the active profile
    if args.telemetry is None:
        print("repro-prodigy: error: drift requires --telemetry", file=sys.stderr)
        return 2
    if registry.active_version is None:
        print(f"repro-prodigy: error: registry {registry.root} has no active version",
              file=sys.stderr)
        return 2
    profile = registry.load_profile()
    if profile is None:
        print("repro-prodigy: error: active version has no reference profile "
              "(train via the `train` command to persist one)", file=sys.stderr)
        return 2
    pipeline, detector = registry.load()
    series = _load_series(args.telemetry, args.trim)
    features = pipeline.transform_series(series)
    scores = detector.anomaly_score(features)
    monitor = DriftMonitor(
        profile, window_size=min(args.window, max(4, len(series))),
        warmup_windows=0, debounce=1,
    )
    events = []
    for row, score in zip(features, scores):
        events.extend(monitor.observe(float(score), row))
    payload = {
        "version": registry.active_version,
        "n_samples": len(series),
        "monitor": monitor.summary(),
        "events": [
            {"source": e.source, "statistic": e.statistic,
             "value": e.value, "threshold": e.threshold,
             "window_index": e.window_index}
            for e in events
        ],
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    _print_sections([
        (
            f"drift check of {args.telemetry} vs {payload['version']} "
            f"({len(series)} node-runs, window {monitor.window_size})",
            ["source", "statistic", "value", "threshold", "window"],
            [[e["source"], e["statistic"], e["value"], e["threshold"], e["window_index"]]
             for e in payload["events"]] or [["-", "no drift", "-", "-", "-"]],
        ),
    ])
    return 0


def _fleet_deployment(n_nodes: int, n_metrics: int, n_samples: int, seed: int):
    """Sentinel-fitted deployment plus per-node synthetic streams.

    The same fast-deployment pattern as ``runtime stats``: variance-ranked
    feature selection via a sentinel selector and a tiny detector, fitted
    on the synthetic fleet telemetry itself.  Returns
    ``(pipeline, detector, series)``.
    """
    from repro.core import ProdigyDetector
    from repro.features import FeatureExtractor
    from repro.features.scaling import make_scaler
    from repro.features.selection import ChiSquareSelector
    from repro.pipeline import DataPipeline
    from repro.telemetry import NodeSeries

    rng = np.random.default_rng(seed)
    names = tuple(f"m{i}" for i in range(n_metrics))
    series = [
        NodeSeries(1, c, np.arange(float(n_samples)),
                   rng.random((n_samples, n_metrics)), names)
        for c in range(n_nodes)
    ]
    from repro.runtime.config import get_execution_config

    # The rolling streaming path slides accumulators over raw samples, so
    # its deployment must not re-grid windows onto a resampled time axis.
    resample = None if get_execution_config().streaming_mode == "rolling" else 32
    engine = ParallelExtractor(FeatureExtractor(resample_points=resample))
    features, feature_names = engine.extract_matrix(series)
    n_keep = min(48, features.shape[1])
    var = features.var(axis=0)
    keep = np.sort(np.lexsort((np.arange(var.size), -var))[:n_keep])
    pipeline = DataPipeline(engine, n_features=n_keep)
    pipeline.selected_names_ = tuple(feature_names[i] for i in keep)
    pipeline.selector_ = ChiSquareSelector.sentinel(pipeline.selected_names_, var[keep])
    pipeline.scaler_ = make_scaler(pipeline.scaler_kind).fit(features[:, keep])
    detector = ProdigyDetector(
        hidden_dims=(16, 8), latent_dim=4, epochs=20, batch_size=16,
        learning_rate=1e-3, seed=seed,
    ).fit(pipeline.transform_series(series))
    return pipeline, detector, series


def cmd_fleet(args: argparse.Namespace) -> int:
    """Sharded multi-worker scoring: demo run and status rendering."""
    from repro.serving.dashboard import fleet_sections

    if args.action == "status":
        if args.status_file is None:
            print("repro-prodigy: error: status requires --status-file", file=sys.stderr)
            return 2
        status = json.loads(args.status_file.read_text())
        if args.json:
            print(json.dumps(status, indent=2))
        else:
            _print_sections(fleet_sections(status))
        return 0

    # action == "run": stream synthetic telemetry through a worker fleet.
    from repro.fleet import FleetCoordinator, RingSpec
    from repro.monitoring import FleetFaultSchedule, WorkerFailure
    from repro.telemetry import NodeSeries

    if args.fleet_workers < 1:
        print("repro-prodigy: error: --fleet-workers must be >= 1", file=sys.stderr)
        return 2
    pipeline, detector, series = _fleet_deployment(
        args.nodes, args.metrics, args.samples, args.seed
    )
    fleet = FleetCoordinator(
        pipeline, detector,
        n_workers=args.fleet_workers,
        transport=args.transport,
        queue_capacity=args.queue_capacity,
        ring_spec=RingSpec(
            slot_samples=max(64, args.chunk), slot_metrics=max(16, args.metrics)
        ),
        stream_kwargs=dict(
            window_seconds=max(16.0, 2.0 * args.chunk),
            evaluate_every=args.chunk,
            consecutive_alerts=2,
        ),
    )
    # Interleave the per-node chunk streams, as concurrent reporters would.
    per_node = [
        [
            NodeSeries(s.job_id, s.component_id,
                       s.timestamps[i:i + args.chunk], s.values[i:i + args.chunk],
                       s.metric_names)
            for i in range(0, s.n_timestamps, args.chunk)
        ]
        for s in series
    ]
    chunks = [
        stream[i]
        for i in range(max(len(p) for p in per_node))
        for stream in per_node
        if i < len(stream)
    ]
    faults = None
    if args.kill_worker is not None:
        if args.kill_worker not in fleet.workers:
            print(f"repro-prodigy: error: unknown worker {args.kill_worker!r} "
                  f"(have: {', '.join(sorted(fleet.workers))})", file=sys.stderr)
            fleet.close()
            return 2
        faults = FleetFaultSchedule(
            [WorkerFailure(args.kill_worker, after_chunks=args.kill_after)]
        )
    with fleet:
        verdicts = fleet.run_stream(iter(chunks), faults=faults)
        status = fleet.status()
    if faults is not None:
        status["faults"] = faults.summary()
    if args.status_out is not None:
        args.status_out.parent.mkdir(parents=True, exist_ok=True)
        args.status_out.write_text(json.dumps(status, indent=2, sort_keys=True))
    if args.json:
        print(json.dumps(status, indent=2))
    else:
        _print_sections(fleet_sections(status))
        print(f"\n{len(verdicts)} verdicts from {len(chunks)} chunks "
              f"across {args.nodes} nodes")
        if args.status_out is not None:
            print(f"status written to {args.status_out}")
    return 0


def _dsos_sampler_of(metric: str) -> str:
    """Sampler a CSV metric column belongs to (``<metric>::<sampler>``)."""
    return metric.rsplit("::", 1)[1] if "::" in metric else "telemetry"


def cmd_dsos(args: argparse.Namespace) -> int:
    """Columnar historical store: ingest, compact, query, stats."""
    from repro.hist import TIERS, TIER_RAW, HistStore, dashboard_rollup
    from repro.serving.dashboard import history_sections

    store = HistStore(args.store, segment_span=args.segment_span)

    if args.action == "ingest":
        if args.telemetry is None:
            print("repro-prodigy: error: ingest requires --telemetry", file=sys.stderr)
            return 2
        frame = read_csv(args.telemetry)
        by_sampler: dict[str, list[str]] = {}
        for name in frame.metric_names:
            by_sampler.setdefault(_dsos_sampler_of(name), []).append(name)
        counts = {}
        for sampler, names in by_sampler.items():
            sub = TelemetryFrame(
                frame.job_id, frame.component_id, frame.timestamp,
                np.column_stack([frame.column(n) for n in names]),
                tuple(names),
            )
            counts[sampler] = store.ingest(sampler, sub)
        store.flush()
        if args.json:
            print(json.dumps({"ingested": counts, "store": store.stats()}, indent=2))
        else:
            for sampler in sorted(counts):
                print(f"{sampler}: {counts[sampler]} rows")
            print(f"store {args.store}: {store.n_rows} rows total")
        return 0

    if not store.samplers:
        print(f"repro-prodigy: error: store {args.store} is empty "
              "(run dsos ingest first)", file=sys.stderr)
        return 2

    if args.action == "compact":
        built = store.compact()
        if args.json:
            print(json.dumps({"compacted": built, "store": store.stats()}, indent=2))
        else:
            _print_sections(history_sections({"store": store.stats()}))
        return 0

    if args.action == "query":
        sampler = args.sampler
        if sampler is None:
            if len(store.samplers) > 1:
                print("repro-prodigy: error: store has several containers; "
                      f"pick one with --sampler (have: {', '.join(sorted(store.samplers))})",
                      file=sys.stderr)
                return 2
            sampler = store.samplers[0]
        tier = args.tier or TIER_RAW
        if tier not in TIERS:
            print(f"repro-prodigy: error: unknown tier {tier!r} "
                  f"(available: {', '.join(TIERS)})", file=sys.stderr)
            return 2
        try:
            result = store.query(
                sampler, job_id=args.job, component_id=args.component,
                t0=args.t0, t1=args.t1, tier=tier,
            )
        except KeyError as exc:
            print(f"repro-prodigy: error: {exc.args[0]}", file=sys.stderr)
            return 2
        if args.output is not None:
            write_csv(result, args.output)
            print(f"{result.n_rows} rows -> {args.output}")
            return 0
        if args.json:
            print(json.dumps({
                "sampler": sampler, "tier": tier, "n_rows": result.n_rows,
                "metrics": list(result.metric_names),
            }, indent=2))
            return 0
        print(f"{sampler} ({tier}): {result.n_rows} rows, "
              f"{result.n_metrics} metrics")
        head = min(args.limit, result.n_rows)
        if head:
            from repro.serving.dashboard import render_table

            shown = list(result.metric_names[:4])
            print(render_table(
                ["job", "component", "timestamp", *shown],
                [
                    [int(result.job_id[i]), int(result.component_id[i]),
                     float(result.timestamp[i]),
                     *(float(result.column(n)[i]) for n in shown)]
                    for i in range(head)
                ],
            ))
        return 0

    # action == "stats": layout plus a windowed rollup.
    tier = args.tier or "1min"
    if tier not in TIERS:
        print(f"repro-prodigy: error: unknown tier {tier!r} "
              f"(available: {', '.join(TIERS)})", file=sys.stderr)
        return 2
    payload = {
        "store": store.stats(),
        "rollup": dashboard_rollup(store, tier=tier, t0=args.t0, t1=args.t1),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        _print_sections(history_sections(payload))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """One dashboard request through the gateway over a CSV deployment."""
    from repro.pipeline import AnomalyDetectorService
    from repro.serving import (
        AnalyticsService,
        SeriesBank,
        ServingGateway,
        TenantSpec,
    )
    from repro.serving.dashboard import slo_sections
    from repro.serving.errors import error_message, is_error

    scenario = _scenario_from(args)
    if scenario is _SCENARIO_ERROR:
        return 2
    prodigy = Prodigy.load(args.artifacts)
    bank = SeriesBank(_load_series(args.telemetry, args.trim, scenario))
    service = AnalyticsService(
        AnomalyDetectorService(bank, prodigy.pipeline, prodigy.detector)
    )
    gateway = ServingGateway(
        service, [TenantSpec(args.tenant, priority="interactive")]
    )
    params: dict = {}
    if args.dashboard == "node_analysis":
        if args.node is not None:
            params["component_id"] = args.node
        if args.metric:
            params["metrics"] = list(args.metric)
    response = gateway.request(args.tenant, args.dashboard, args.job, **params)
    if is_error(response):
        print(f"repro-prodigy: error: {error_message(response)}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(response, indent=2, default=str))
        return 0
    if args.dashboard == "slo":
        _print_sections(slo_sections(response))
    elif args.dashboard == "anomaly_detection":
        print(f"job {response['job_id']}: "
              f"{response['n_anomalous']}/{response['n_nodes']} nodes anomalous")
        for node in response["nodes"]:
            print(f"  node {node['component_id']:>6}: {node['prediction']:<9} "
                  f"score={node['anomaly_score']:.4f} "
                  f"threshold={node['threshold']:.4f}")
    else:
        body = {k: v for k, v in response.items() if k != "gateway"}
        print(json.dumps(body, indent=2, default=str))
    meta = response["gateway"]
    print(f"served by model {meta['model_version']} for tenant {meta['tenant']} "
          f"(cached={meta['cached']}, latency {meta['latency_ms']:.2f} ms)")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Replay seeded two-tenant traffic against the synthetic demo gateway."""
    from repro.serving import demo_gateway
    from repro.serving.dashboard import slo_sections
    from repro.serving.loadgen import ReplayHarness, TrafficProfile

    versions = ["v0001"]
    gateway, _, job_ids, anomalous_job = demo_gateway(
        n_jobs=args.jobs, seed=args.seed, version_source=lambda: versions[0]
    )
    profiles = [
        TrafficProfile(tenant="dashboard", rate_hz=args.interactive_rate),
        TrafficProfile(
            tenant="analytics", rate_hz=args.batch_rate,
            mix=(("anomaly_detection", 0.7), ("node_analysis", 0.3)),
        ),
    ]
    actions = []
    if args.promote_at is not None:
        actions.append(
            (args.promote_at, lambda: versions.__setitem__(0, "v0002"))
        )
    harness = ReplayHarness(
        gateway, profiles, job_ids, seed=args.seed, actions=actions,
        onsets=((anomalous_job, 0, args.horizon),),
    )
    report = harness.run(horizon_s=args.horizon, mode=args.mode)
    payload = report.to_dict()
    if args.out is not None:
        args.out.write_text(json.dumps(payload, indent=2))
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        _print_sections(slo_sections(report.slo))
        print(f"\n{report.mode} replay: {report.completed} served over "
              f"{report.virtual_seconds:.2f} virtual s "
              f"({report.wall_seconds:.2f} s wall), "
              f"versions {', '.join(report.versions_served)}")
    if args.check:
        interactive_ok = report.slo["tenants"]["dashboard"]["slo_met"]
        failures = []
        if report.priority_inversions:
            failures.append(f"{report.priority_inversions} priority inversions")
        if report.stale_responses:
            failures.append(f"{report.stale_responses} stale responses")
        if not interactive_ok:
            failures.append("interactive p99 SLO missed")
        if failures:
            print(f"repro-prodigy: check failed: {'; '.join(failures)}",
                  file=sys.stderr)
            return 1
        print("check passed: no inversions, no stale responses, SLO met")
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "simulate": cmd_simulate,
    "train": cmd_train,
    "predict": cmd_predict,
    "detect": cmd_detect,
    "explain": cmd_explain,
    "evaluate": cmd_evaluate,
    "runtime": cmd_runtime,
    "lifecycle": cmd_lifecycle,
    "fleet": cmd_fleet,
    "dsos": cmd_dsos,
    "serve": cmd_serve,
    "loadgen": cmd_loadgen,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if hasattr(args, "workers"):
        try:
            config = ExecutionConfig.resolve(
                n_workers=args.workers, cache_size=args.cache_size,
                fleet_transport=getattr(args, "transport", None),
                streaming_mode=getattr(args, "streaming_mode", None),
            )
        except ValueError as exc:
            print(f"repro-prodigy: error: {exc}", file=sys.stderr)
            return 2
        set_execution_config(config)
    try:
        return _COMMANDS[args.command](args)
    except (FileNotFoundError, NotADirectoryError) as exc:
        # Missing artifact/registry/telemetry paths are operator errors, not
        # crashes: one line on stderr, exit 2, no traceback.
        filename = getattr(exc, "filename", None)
        detail = f"no such path: {filename}" if filename else str(exc)
        print(f"repro-prodigy: error: {detail}", file=sys.stderr)
        return 2
    finally:
        if hasattr(args, "workers"):
            set_execution_config(None)


if __name__ == "__main__":
    raise SystemExit(main())
