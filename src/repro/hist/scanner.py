"""Runtime-pooled parallel segment scanner.

Historical queries fan out per segment: each segment's scan decodes its own
columns, builds its own filter mask, and gathers its own rows, touching no
shared state.  The scanner runs those scans on a thread pool sized by the
shared :class:`~repro.runtime.config.ExecutionConfig` (the same
``--workers`` / ``PRODIGY_WORKERS`` knob the extraction engine honours).

Threads — not the extraction layer's process pool — are the right vehicle
here: segment scans are dominated by ``np.memmap`` page faults and large
vectorised gathers, both of which release the GIL, and the mmap handles
themselves cannot cross a process boundary without each worker re-opening
and re-faulting the file.  Scans are instrumented under the ``hist_scan``
stage so ``runtime stats`` and dashboards see historical-query cost next
to extraction and scoring.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.hist.segment import Segment
from repro.runtime.config import ExecutionConfig, get_execution_config
from repro.runtime.instrumentation import Instrumentation, get_instrumentation

__all__ = ["ParallelSegmentScanner"]

#: Below this many candidate segments a pool cannot pay for its dispatch.
_MIN_PARALLEL_SEGMENTS = 4


class ParallelSegmentScanner:
    """Scans candidate segments, serially or on the runtime thread pool."""

    def __init__(
        self,
        *,
        config: ExecutionConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ):
        self._config = config
        self.instrumentation = (
            instrumentation if instrumentation is not None else get_instrumentation()
        )
        self.last_mode: str = "serial"

    @property
    def config(self) -> ExecutionConfig:
        return self._config if self._config is not None else get_execution_config()

    def scan(
        self,
        segments: Sequence[Segment],
        *,
        job_id: int | None = None,
        component_id: int | None = None,
        t0: float | None = None,
        t1: float | None = None,
        metrics: Sequence[str] | None = None,
    ) -> list[dict[str, np.ndarray]]:
        """Per-segment filtered gathers, zone-map pruned, in segment order.

        The output list is index-aligned with the *pruned* candidate list
        but order never matters to callers: every row carries its ``seq``,
        and the store re-establishes legacy ordering with one final sort.
        """
        filters = dict(job_id=job_id, component_id=component_id, t0=t0, t1=t1)
        candidates = [s for s in segments if s.may_contain(**filters)]
        if not candidates:
            self.last_mode = "serial"
            return []
        workers = min(self.config.n_workers, len(candidates))
        with self.instrumentation.stage("hist_scan", items=len(candidates)):
            if workers <= 1 or len(candidates) < _MIN_PARALLEL_SEGMENTS:
                self.last_mode = "serial"
                return [s.scan(**filters, metrics=metrics) for s in candidates]
            self.last_mode = "parallel"
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(lambda s: s.scan(**filters, metrics=metrics), candidates)
                )
