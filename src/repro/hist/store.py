"""HistStore — columnar, time-partitioned drop-in for :class:`DsosStore`.

Same interface as the legacy in-process store (``ingest``/``query``/
``jobs``/``components``/``samplers``/``register_schema``, i.e. the
:class:`~repro.monitoring.aggregator.TelemetrySink` protocol and the query
surface :class:`~repro.pipeline.datagenerator.DataGenerator` consumes),
different substrate:

* ingest appends to a small in-memory **memtable** per container; when it
  exceeds ``flush_rows`` (or on :meth:`flush`), rows are partitioned by
  ``segment_span``-second time windows and written as immutable columnar
  :mod:`segments <repro.hist.segment>`;
* queries prune segments by zone map, scan survivors via the
  runtime-pooled :class:`~repro.hist.scanner.ParallelSegmentScanner`,
  merge the memtable tail, and re-establish the legacy row order with one
  ``(job, ingest-seq)`` sort — results are **bit-identical** to
  ``DsosStore`` on the same ingest stream (the acceptance oracle);
* :meth:`~HistContainer.compact` builds the downsampled retention tiers
  (:mod:`repro.hist.retention`), queryable via ``query(..., tier=...)``.
  Every tier segment records the raw segments it was derived from
  (``raw_sources``), so compaction is incremental: tier segments whose raw
  backing was retained away are the only remaining copy and are preserved,
  everything still backed by raw is rebuilt, and retention only drops a
  raw segment once a tier segment records it as aggregated — history
  degrades in resolution, never to holes.

Persistence is a plain directory tree (``<root>/<sampler>/<tier>/*.seg``
plus a small ``manifest.json`` carrying the schema, meter kinds, and the
sealed ingest high-water mark); re-opening a flushed store picks up every
sealed segment — even when retention has emptied the raw tier — and
continues the ingest sequence where it left off.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.dsos.store import Schema
from repro.hist.meters import GAUGE, METER_KINDS, resolve_meters
from repro.hist.retention import (
    COUNT_COLUMN,
    RetentionPolicy,
    TIER_RAW,
    TIERS,
    downsample,
)
from repro.hist.scanner import ParallelSegmentScanner
from repro.hist.segment import Segment, write_segment
from repro.runtime.instrumentation import get_instrumentation
from repro.telemetry.frame import TelemetryFrame
from repro.telemetry.schema import MetricSchema, SchemaRegistry
from repro.util.validation import check_ingest_timestamps

__all__ = ["HistContainer", "HistStore"]

_SEGMENT_SUFFIX = ".seg"
_MANIFEST = "manifest.json"


def _empty_frame(metric_names: tuple[str, ...]) -> TelemetryFrame:
    return TelemetryFrame(
        np.empty(0, np.int64),
        np.empty(0, np.int64),
        np.empty(0),
        np.empty((0, len(metric_names))),
        metric_names,
    )


class HistContainer:
    """One sampler's history: memtable + sealed segments + retention tiers."""

    def __init__(
        self,
        schema: Schema,
        root: Path,
        *,
        segment_span: float,
        flush_rows: int,
        scanner: ParallelSegmentScanner,
        meters: dict[str, str] | None = None,
    ):
        self.schema = schema
        self.root = Path(root)
        self.segment_span = float(segment_span)
        self.flush_rows = int(flush_rows)
        self.scanner = scanner
        self.meters: dict[str, str] = dict(meters or {})
        #: sealed segments per retention tier, in seal order
        self.segments: dict[str, list[Segment]] = {tier: [] for tier in TIERS}
        self._memtable: list[tuple[int, TelemetryFrame]] = []  # (seq_start, block)
        self._memtable_rows = 0
        self._next_seq = 0
        self._jobs: np.ndarray | None = None
        self._load_existing()

    def _load_existing(self) -> None:
        manifest = self.root / _MANIFEST
        if manifest.is_file():
            # The sealed high-water mark survives retention dropping every
            # raw segment: ingest seq never restarts behind dropped history.
            self._next_seq = int(json.loads(manifest.read_text()).get("next_seq", 0))
        for tier in TIERS:
            tier_dir = self.root / tier
            if not tier_dir.is_dir():
                continue
            for path in sorted(tier_dir.glob(f"*{_SEGMENT_SUFFIX}")):
                seg = Segment(path)
                self.segments[tier].append(seg)
                if tier == TIER_RAW:
                    self._next_seq = max(self._next_seq, seg.seq_max + 1)

    def _write_manifest(self) -> None:
        payload = {
            "sampler": self.schema.name,
            "metric_names": list(self.schema.metric_names),
            "meters": {k: self.meters.get(k, GAUGE) for k in self.schema.metric_names},
            "next_seq": self._next_seq - self._memtable_rows,  # sealed rows only
        }
        tmp = self.root / f".{_MANIFEST}.tmp"
        tmp.write_text(json.dumps(payload, separators=(",", ":")))
        os.replace(tmp, self.root / _MANIFEST)

    # -- ingest ----------------------------------------------------------------

    def append(self, frame: TelemetryFrame) -> int:
        """Ingest one block; returns rows appended (flushes when due)."""
        if frame.metric_names != self.schema.metric_names:
            got, want = frame.metric_names, self.schema.metric_names
            mismatch = f"frame has {len(got)} columns, schema has {len(want)}"
            for i, (g, w) in enumerate(zip(got, want)):
                if g != w:
                    mismatch = f"first mismatch at column {i}: frame {g!r} vs schema {w!r}"
                    break
            raise ValueError(
                f"sampler {self.schema.name!r}: frame columns do not match "
                f"the container schema ({mismatch})"
            )
        if frame.n_rows == 0:
            return 0
        check_ingest_timestamps(frame.timestamp, sampler=self.schema.name)
        self._memtable.append((self._next_seq, frame))
        self._memtable_rows += frame.n_rows
        self._next_seq += frame.n_rows
        self._jobs = None
        if self._memtable_rows >= self.flush_rows:
            self.flush()
        return frame.n_rows

    def flush(self) -> list[Segment]:
        """Seal the memtable into time-partitioned segments (may be empty)."""
        if not self._memtable:
            return []
        with get_instrumentation().stage("hist_flush", items=self._memtable_rows):
            frames = [f for _, f in self._memtable]
            seq = np.concatenate(
                [np.arange(s0, s0 + f.n_rows, dtype=np.int64) for s0, f in self._memtable]
            )
            block = frames[0] if len(frames) == 1 else TelemetryFrame.concat(frames)
            self._memtable.clear()
            self._memtable_rows = 0
            written: list[Segment] = []
            partition = np.floor_divide(block.timestamp, self.segment_span).astype(np.int64)
            for window in np.unique(partition):
                rows = np.flatnonzero(partition == window)
                path = self.root / TIER_RAW / (
                    f"segment-{int(seq[rows[0]]):012d}-w{int(window)}{_SEGMENT_SUFFIX}"
                )
                seg = write_segment(
                    path,
                    sampler=self.schema.name,
                    tier=TIER_RAW,
                    job_id=block.job_id[rows],
                    component_id=block.component_id[rows],
                    timestamp=block.timestamp[rows],
                    seq=seq[rows],
                    values=block.values[rows],
                    metric_names=self.schema.metric_names,
                    meters=self.meters,
                )
                self.segments[TIER_RAW].append(seg)
                written.append(seg)
            self._write_manifest()
        return written

    # -- stats -----------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self._memtable_rows + sum(s.n_rows for s in self.segments[TIER_RAW])

    def jobs(self) -> np.ndarray:
        if self._jobs is None:
            parts = [s.jobs for s in self.segments[TIER_RAW]]
            parts.extend(f.jobs() for _, f in self._memtable)
            self._jobs = (
                np.unique(np.concatenate(parts)) if parts else np.empty(0, dtype=np.int64)
            )
        return self._jobs

    def stats(self) -> dict:
        """JSON-ready layout snapshot for dashboards and ``dsos stats``."""
        tiers = {}
        for tier, segs in self.segments.items():
            codecs: dict[str, int] = {}
            for seg in segs:
                for col in seg._header["columns"]:
                    codecs[col["codec"]] = codecs.get(col["codec"], 0) + 1
            tiers[tier] = {
                "segments": len(segs),
                "rows": sum(s.n_rows for s in segs),
                "bytes": sum(s.nbytes for s in segs),
                "codecs": codecs,
            }
        return {
            "sampler": self.schema.name,
            "columns": len(self.schema.metric_names),
            "memtable_rows": self._memtable_rows,
            "rows": self.n_rows,
            "meters": {k: self.meters.get(k, GAUGE) for k in self.schema.metric_names},
            "tiers": tiers,
        }

    # -- query -----------------------------------------------------------------

    def query(
        self,
        *,
        job_id: int | None = None,
        component_id: int | None = None,
        t0: float | None = None,
        t1: float | None = None,
        tier: str = TIER_RAW,
    ) -> TelemetryFrame:
        """Filtered rows in legacy order — bit-identical to ``DsosStore``.

        The legacy store consolidates ingest-order blocks and stable-sorts
        by job, so its row order is ``(job_id, ingest position)``.  Every
        row here carries its ingest ``seq``; a single ``lexsort`` restores
        exactly that order over segment gathers + the memtable tail.
        """
        if tier not in TIERS:
            raise ValueError(f"unknown tier {tier!r}; available: {TIERS}")
        metric_names = (
            self.schema.metric_names
            if tier == TIER_RAW or not self.segments[tier]
            else self.segments[tier][0].metric_names
        )
        parts = self.scanner.scan(
            self.segments[tier], job_id=job_id, component_id=component_id, t0=t0, t1=t1
        )
        if tier == TIER_RAW:
            parts.extend(self._scan_memtable(job_id, component_id, t0, t1))
        parts = [p for p in parts if p["job_id"].size]
        if not parts:
            return _empty_frame(metric_names)
        job = np.concatenate([p["job_id"] for p in parts])
        comp = np.concatenate([p["component_id"] for p in parts])
        ts = np.concatenate([p["timestamp"] for p in parts])
        seq = np.concatenate([p["seq"] for p in parts])
        vals = np.vstack([p["values"] for p in parts])
        order = np.lexsort((seq, job))
        return TelemetryFrame(job[order], comp[order], ts[order], vals[order], metric_names)

    def _scan_memtable(self, job_id, component_id, t0, t1) -> list[dict]:
        out = []
        for seq_start, frame in self._memtable:
            mask = np.ones(frame.n_rows, dtype=bool)
            if job_id is not None:
                mask &= frame.job_id == job_id
            if component_id is not None:
                mask &= frame.component_id == component_id
            if t0 is not None:
                mask &= frame.timestamp >= t0
            if t1 is not None:
                mask &= frame.timestamp <= t1
            rows = np.flatnonzero(mask)
            if not rows.size:
                continue
            out.append(
                {
                    "job_id": frame.job_id[rows],
                    "component_id": frame.component_id[rows],
                    "timestamp": frame.timestamp[rows],
                    "seq": seq_start + rows.astype(np.int64),
                    "values": frame.values[rows],
                }
            )
        return out

    # -- compaction / retention -------------------------------------------------

    def compact(self) -> dict[str, int]:
        """Incrementally (re)build the downsampled tiers from the tier below.

        The raw tier is flushed first so tiers always cover everything
        ingested.  Each tier segment records the raw segments it aggregates
        (``raw_sources``), which splits the existing tier into two classes:

        * segments whose raw backing is all still present are re-derivable
          — they are deleted and rebuilt (so repeated compaction of the
          same data stays idempotent);
        * segments whose raw backing was dropped by retention are the only
          remaining copy of that history — they are preserved untouched,
          and their sources are excluded from re-aggregation so nothing is
          double-counted.

        Raw data is never touched.
        """
        self.flush()
        counts: dict[str, int] = {}
        with get_instrumentation().stage("hist_compact", items=self.n_rows):
            raw_present = {s.path.name for s in self.segments[TIER_RAW]}
            source_tier = TIER_RAW
            for tier in TIERS[1:]:
                keep: list[Segment] = []
                for seg in self.segments[tier]:
                    # Pre-provenance segments (no raw_sources recorded) are
                    # only rebuilt while raw still exists to rebuild from.
                    rederivable = (
                        set(seg.raw_sources) <= raw_present
                        if seg.raw_sources
                        else bool(raw_present)
                    )
                    if rederivable:
                        seg.path.unlink(missing_ok=True)  # re-derivable below
                    else:
                        keep.append(seg)
                represented = {name for s in keep for name in s.raw_sources}
                if source_tier == TIER_RAW:
                    sources = [
                        s
                        for s in self.segments[source_tier]
                        if s.path.name not in represented
                    ]
                else:
                    sources = [
                        s
                        for s in self.segments[source_tier]
                        if not set(s.raw_sources) <= represented
                    ]
                agg = downsample(
                    sources, tier=tier, source_tier=source_tier, meters=self.meters
                )
                self.segments[tier] = keep
                if agg is not None and agg["job_id"].size:
                    # Tier seq continues past the preserved segments so the
                    # cross-segment "last observation" order of cumulative
                    # meters follows compaction (≈ ingest) order.
                    seq0 = max((s.seq_max for s in keep), default=-1) + 1
                    agg["seq"] = agg["seq"] + seq0
                    provenance = (
                        {s.path.name for s in sources}
                        if source_tier == TIER_RAW
                        else {name for s in sources for name in s.raw_sources}
                    )
                    seg = write_segment(
                        self.root / tier / f"segment-{seq0:012d}{_SEGMENT_SUFFIX}",
                        sampler=self.schema.name,
                        tier=tier,
                        raw_sources=provenance,
                        **agg,
                    )
                    self.segments[tier].append(seg)
                counts[tier] = sum(s.n_rows for s in self.segments[tier])
                source_tier = tier
        return counts

    def apply_retention(self, policy: RetentionPolicy, *, now: float) -> dict[str, int]:
        """Drop whole segments older than each tier's horizon; returns drops.

        Only explicit retention ever removes data — by default every tier
        keeps forever, preserving the bit-parity guarantee with the legacy
        store.  A raw segment is only dropped when a downsampled tier
        records it as aggregated (so dashboards degrade in resolution, not
        to holes); raw ingested after the last :meth:`compact` — including
        backfill inside an already-downsampled window — is always kept.
        """
        dropped: dict[str, int] = {}
        for tier in TIERS:
            horizon = policy.horizon(tier)
            if horizon is None:
                continue
            cutoff = now - horizon
            keep: list[Segment] = []
            for seg in self.segments[tier]:
                if seg.t_max >= cutoff:
                    keep.append(seg)
                    continue
                if tier == TIER_RAW and not self._covered_downsampled(seg):
                    keep.append(seg)
                    continue
                dropped[tier] = dropped.get(tier, 0) + seg.n_rows
                seg.path.unlink(missing_ok=True)
            self.segments[tier] = keep
        if dropped.get(TIER_RAW):
            self._jobs = None
        return dropped

    def _covered_downsampled(self, seg: Segment) -> bool:
        # Exact provenance, not time-span containment: a raw segment is
        # covered only once some tier segment actually aggregated its rows.
        return any(
            seg.path.name in other.raw_sources
            for tier in TIERS[1:]
            for other in self.segments[tier]
        )


class HistStore:
    """The columnar historical database: one :class:`HistContainer` per sampler.

    Implements the :class:`~repro.monitoring.aggregator.TelemetrySink`
    protocol and the legacy ``DsosStore`` query surface, so aggregators,
    the :class:`~repro.pipeline.datagenerator.DataGenerator`, drift
    harvesting, and dashboards run against it unchanged.

    Parameters
    ----------
    root:
        Directory for sealed segments; created on demand.  Opening a root
        with existing segments resumes that store.
    segment_span:
        Seconds of telemetry time per partition (one sealed segment never
        spans two partitions).
    flush_rows:
        Memtable rows per container that trigger an automatic flush.
    meters:
        Per-sampler meter-kind overrides:
        ``{sampler: {column: cumulative|delta|gauge}}``.  Columns described
        by a registered :class:`~repro.telemetry.schema.MetricSchema` are
        typed automatically (counter -> cumulative).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        segment_span: float = 3600.0,
        flush_rows: int = 262_144,
        meters: dict[str, dict[str, str]] | None = None,
    ):
        if segment_span <= 0:
            raise ValueError(f"segment_span must be > 0, got {segment_span}")
        if flush_rows < 1:
            raise ValueError(f"flush_rows must be >= 1, got {flush_rows}")
        self.root = Path(root)
        self.segment_span = float(segment_span)
        self.flush_rows = int(flush_rows)
        self.schemas = SchemaRegistry()
        self.scanner = ParallelSegmentScanner()
        self._meter_overrides = {k: dict(v) for k, v in (meters or {}).items()}
        self._containers: dict[str, HistContainer] = {}
        if self.root.is_dir():
            for sampler_dir in sorted(p for p in self.root.iterdir() if p.is_dir()):
                self._open_existing(sampler_dir)

    def _open_existing(self, sampler_dir: Path) -> None:
        identity = self._existing_identity(sampler_dir)
        if identity is None:
            return
        metric_names, meters = identity
        schema = Schema(sampler_dir.name, metric_names)
        container = HistContainer(
            schema,
            sampler_dir,
            segment_span=self.segment_span,
            flush_rows=self.flush_rows,
            scanner=self.scanner,
            meters=meters,
        )
        self._containers[schema.name] = container

    @staticmethod
    def _existing_identity(
        sampler_dir: Path,
    ) -> tuple[tuple[str, ...], dict[str, str]] | None:
        """(metric_names, meters) of an on-disk container, or None if empty.

        The manifest is authoritative; without one, fall back to the first
        raw segment, and — when retention has emptied the raw tier — to the
        first segment of any downsampled tier, whose base columns (minus
        the ``::min``/``::max`` envelopes and the sample-count column)
        reconstruct the raw schema.  A container therefore never becomes
        unreachable just because its raw history aged out.
        """
        manifest = sampler_dir / _MANIFEST
        if manifest.is_file():
            payload = json.loads(manifest.read_text())
            return tuple(payload["metric_names"]), dict(payload["meters"])
        for tier in TIERS:
            paths = sorted((sampler_dir / tier).glob(f"*{_SEGMENT_SUFFIX}"))
            if not paths:
                continue
            head = Segment(paths[0])
            if tier == TIER_RAW:
                return head.metric_names, head.meters
            base = tuple(
                n
                for n in head.metric_names
                if n != COUNT_COLUMN and not n.endswith(("::min", "::max"))
            )
            return base, {n: head.meters[n] for n in base}
        return None

    # -- ingest side -----------------------------------------------------------

    def register_schema(self, schema: MetricSchema) -> MetricSchema:
        """Declare a node-class schema; drives meter typing for its columns."""
        return self.schemas.register(schema)

    def set_meters(self, sampler: str, meters: dict[str, str]) -> None:
        """Override meter kinds for a sampler's columns (before first ingest)."""
        for kind in meters.values():
            if kind not in METER_KINDS:
                raise ValueError(f"meter kind must be one of {METER_KINDS}, got {kind!r}")
        self._meter_overrides.setdefault(sampler, {}).update(meters)
        container = self._containers.get(sampler)
        if container is not None:
            container.meters.update(
                resolve_meters(
                    container.schema.metric_names,
                    registry=self.schemas,
                    overrides=self._meter_overrides[sampler],
                )
            )

    def create_container(self, schema: Schema) -> HistContainer:
        if schema.name in self._containers:
            raise ValueError(f"container {schema.name!r} already exists")
        container = HistContainer(
            schema,
            self.root / schema.name,
            segment_span=self.segment_span,
            flush_rows=self.flush_rows,
            scanner=self.scanner,
            meters=resolve_meters(
                schema.metric_names,
                registry=self.schemas,
                overrides=self._meter_overrides.get(schema.name),
            ),
        )
        self._containers[schema.name] = container
        return container

    def ingest(self, sampler: str, frame: TelemetryFrame) -> int:
        """Append rows, creating the container on first contact."""
        container = self._containers.get(sampler)
        if container is None:
            container = self.create_container(Schema(sampler, frame.metric_names))
        return container.append(frame)

    def flush(self) -> int:
        """Seal every container's memtable; returns segments written."""
        return sum(len(c.flush()) for c in self._containers.values())

    def compact(self) -> dict[str, dict[str, int]]:
        """Build/refresh downsampled tiers for every container."""
        return {name: c.compact() for name, c in self._containers.items()}

    def apply_retention(
        self, policy: RetentionPolicy, *, now: float
    ) -> dict[str, dict[str, int]]:
        """Enforce per-tier horizons across all containers."""
        out = {}
        for name, container in self._containers.items():
            dropped = container.apply_retention(policy, now=now)
            if dropped:
                out[name] = dropped
        return out

    # -- query side --------------------------------------------------------------

    @property
    def samplers(self) -> tuple[str, ...]:
        return tuple(self._containers)

    def container(self, sampler: str) -> HistContainer:
        try:
            return self._containers[sampler]
        except KeyError:
            raise KeyError(
                f"no container {sampler!r}; available: {sorted(self._containers)}"
            ) from None

    def query(self, sampler: str, **filters) -> TelemetryFrame:
        return self.container(sampler).query(**filters)

    def jobs(self) -> np.ndarray:
        """All job ids across containers."""
        if not self._containers:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([c.jobs() for c in self._containers.values()]))

    def components(self, job_id: int) -> np.ndarray:
        """All component ids that reported data for *job_id*."""
        comps = [
            c.query(job_id=job_id).component_id for c in self._containers.values()
        ]
        comps = [c for c in comps if c.size]
        if not comps:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(comps))

    @property
    def n_rows(self) -> int:
        return sum(c.n_rows for c in self._containers.values())

    def stats(self) -> dict:
        """JSON-ready store snapshot for dashboards and the ``dsos`` CLI."""
        return {
            "root": str(self.root),
            "segment_span": self.segment_span,
            "flush_rows": self.flush_rows,
            "n_rows": self.n_rows,
            "samplers": {name: c.stats() for name, c in self._containers.items()},
        }
