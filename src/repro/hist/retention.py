"""Retention tiers: meter-typed downsampling of sealed history.

Dashboards and drift reference windows rarely need second-resolution rows
past the recent horizon.  Compaction rolls the raw tier into two
downsampled tiers — ``1min`` and ``10min`` tumbling buckets per
``(job, component)`` — with the aggregate the meter type makes correct
(the ceilometer taxonomy, see :mod:`repro.hist.meters`):

==========  =====================================================
meter type  bucket aggregate
==========  =====================================================
cumulative  **last** observation (the running total at close)
delta       **sum** of increments
gauge       **mean**, plus ``::min`` / ``::max`` envelope columns
==========  =====================================================

Every bucket also records its raw-row count in a ``sample_count::hist``
column, which lets the 10-minute tier compute count-weighted gauge means
from the 1-minute tier instead of re-reading raw history, and gives
rollup queries honest denominators.

A :class:`RetentionPolicy` assigns each tier an optional horizon;
:meth:`HistContainer.apply_retention` drops whole segments beyond it.  The
default policy keeps everything — downsampling is additive and retention
is strictly opt-in, so the store's bit-parity with the legacy oracle holds
until an operator explicitly trades resolution for space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.hist.meters import CUMULATIVE, DELTA, GAUGE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hist.segment import Segment

__all__ = [
    "TIER_RAW",
    "TIERS",
    "TIER_RESOLUTION",
    "COUNT_COLUMN",
    "RetentionPolicy",
    "downsample",
]

TIER_RAW = "raw"
TIERS = (TIER_RAW, "1min", "10min")
TIER_RESOLUTION = {"1min": 60.0, "10min": 600.0}

#: Raw rows aggregated into each bucket; the ``::hist`` suffix keeps the
#: name out of any plausible sampler column namespace.
COUNT_COLUMN = "sample_count::hist"


@dataclass(frozen=True)
class RetentionPolicy:
    """Optional per-tier horizons in seconds (None = keep forever)."""

    horizons: Mapping[str, float | None] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.horizons) - set(TIERS)
        if unknown:
            raise ValueError(f"unknown retention tiers {sorted(unknown)}; valid: {TIERS}")

    def horizon(self, tier: str) -> float | None:
        return self.horizons.get(tier)


def _group_bounds(*keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(sort order, group start offsets) for lexicographic grouping.

    Keys are given most-significant first; within a group the final key
    (``seq``) keeps ingest order so "last observation" is well-defined.
    """
    order = np.lexsort(tuple(reversed(keys)))
    sorted_keys = [k[order] for k in keys[:-1]]
    change = np.zeros(order.size, dtype=bool)
    change[0] = True
    for k in sorted_keys:
        change[1:] |= k[1:] != k[:-1]
    return order, np.flatnonzero(change)


def downsample(
    segments: Sequence["Segment"],
    *,
    tier: str,
    source_tier: str,
    meters: Mapping[str, str],
) -> dict | None:
    """Aggregate *segments* (one retention tier) into the next tier's rows.

    Returns the keyword arrays for
    :func:`~repro.hist.segment.write_segment` (plus ``metric_names`` /
    ``meters``), or ``None`` when the source tier is empty.  *meters* maps
    the **base** (raw) metric names; tier-derived columns (``::min``,
    ``::max``, :data:`COUNT_COLUMN`) are recognised structurally.
    """
    resolution = TIER_RESOLUTION[tier]
    if not segments:
        return None
    parts = [s.scan() for s in segments]
    job = np.concatenate([p["job_id"] for p in parts])
    if job.size == 0:
        return None
    comp = np.concatenate([p["component_id"] for p in parts])
    ts = np.concatenate([p["timestamp"] for p in parts])
    seq = np.concatenate([p["seq"] for p in parts])
    vals = np.vstack([p["values"] for p in parts])
    source_names = segments[0].metric_names
    bucket = np.floor(ts / resolution) * resolution

    order, starts = _group_bounds(job, comp, bucket, seq)
    ends = np.append(starts[1:], order.size) - 1
    job, comp, bucket = job[order][starts], comp[order][starts], bucket[order][starts]
    vals = vals[order]
    sizes = np.append(starts[1:], order.size) - starts

    col_of = {name: i for i, name in enumerate(source_names)}
    from_tier = COUNT_COLUMN in col_of  # aggregating an already-downsampled tier
    counts = (
        np.add.reduceat(vals[:, col_of[COUNT_COLUMN]], starts)
        if from_tier
        else sizes.astype(np.float64)
    )

    out_names: list[str] = []
    out_cols: list[np.ndarray] = []
    out_meters: dict[str, str] = {}

    def emit(name: str, kind: str, col: np.ndarray) -> None:
        out_names.append(name)
        out_meters[name] = kind
        out_cols.append(col)

    base_names = (
        [
            n
            for n in source_names
            if n != COUNT_COLUMN and not n.endswith(("::min", "::max"))
        ]
        if from_tier
        else list(source_names)
    )
    for name in base_names:
        kind = meters.get(name, GAUGE)
        col = vals[:, col_of[name]]
        if kind == CUMULATIVE:
            emit(name, CUMULATIVE, col[ends])
        elif kind == DELTA:
            emit(name, DELTA, np.add.reduceat(col, starts))
        else:
            if from_tier:
                # Count-weighted mean of the finer tier's bucket means.
                weights = vals[:, col_of[COUNT_COLUMN]]
                mean = np.add.reduceat(col * weights, starts) / counts
                lo = np.minimum.reduceat(vals[:, col_of[f"{name}::min"]], starts)
                hi = np.maximum.reduceat(vals[:, col_of[f"{name}::max"]], starts)
            else:
                mean = np.add.reduceat(col, starts) / counts
                lo = np.minimum.reduceat(col, starts)
                hi = np.maximum.reduceat(col, starts)
            emit(name, GAUGE, mean)
            emit(f"{name}::min", GAUGE, lo)
            emit(f"{name}::max", GAUGE, hi)
    emit(COUNT_COLUMN, DELTA, counts)

    return {
        "job_id": job,
        "component_id": comp,
        "timestamp": bucket,
        "seq": np.arange(starts.size, dtype=np.int64),
        "values": np.column_stack(out_cols),
        "metric_names": tuple(out_names),
        "meters": out_meters,
    }
