"""Columnar, time-partitioned historical telemetry store.

Drop-in for :class:`repro.dsos.DsosStore` (same ingest/query surface,
bit-identical query results) built for millions-of-rows history: immutable
mmap-read segments with zone maps, typed cumulative/delta/gauge meters
driving compression and downsampling, retention tiers, and a
runtime-pooled parallel segment scanner.  See DESIGN.md "Historical
store".
"""

from repro.hist.feeds import (
    WindowedStoreView,
    dashboard_rollup,
    harvest_healthy_windows,
    metric_reference,
)
from repro.hist.meters import CUMULATIVE, DELTA, GAUGE, resolve_meters
from repro.hist.retention import RetentionPolicy, TIER_RAW, TIERS
from repro.hist.scanner import ParallelSegmentScanner
from repro.hist.segment import Segment, write_segment
from repro.hist.store import HistContainer, HistStore

__all__ = [
    "CUMULATIVE",
    "DELTA",
    "GAUGE",
    "HistContainer",
    "HistStore",
    "ParallelSegmentScanner",
    "RetentionPolicy",
    "Segment",
    "TIERS",
    "TIER_RAW",
    "WindowedStoreView",
    "dashboard_rollup",
    "harvest_healthy_windows",
    "metric_reference",
    "resolve_meters",
    "write_segment",
]
