"""Historical-store feeds for drift, retraining, and dashboards.

The store answers raw row queries; these adapters shape them for the three
consumers the ROADMAP names:

* **drift** — :func:`metric_reference` pulls one metric's historical
  window as the reference sample a
  :class:`~repro.lifecycle.drift.DriftMonitor`-style comparison (KS / PSI)
  runs against;
* **retraining** — :func:`harvest_healthy_windows` rebuilds preprocessed
  per-node :class:`~repro.telemetry.frame.NodeSeries` from a historical
  time window, ready for a
  :class:`~repro.lifecycle.retraining.HealthySampleBuffer`.  It reuses the
  :class:`~repro.pipeline.datagenerator.DataGenerator` unchanged — the
  store satisfies the same query protocol as the legacy ``DsosStore`` —
  over a :class:`WindowedStoreView` that pins the time bounds;
* **dashboards** — :func:`dashboard_rollup` summarises a window per
  sampler/metric from a downsampled tier, count-weighted so bucket means
  aggregate honestly.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.hist.retention import COUNT_COLUMN, TIER_RAW, TIERS
from repro.hist.store import HistStore
from repro.telemetry.frame import NodeSeries
from repro.workloads.metrics import MetricCatalog

__all__ = [
    "WindowedStoreView",
    "metric_reference",
    "harvest_healthy_windows",
    "dashboard_rollup",
]


class WindowedStoreView:
    """A store restricted to ``[t0, t1]`` — the DataGenerator sees only the window.

    Caller-supplied bounds on forwarded queries narrow further (the
    intersection); they can never widen the view.
    """

    def __init__(self, store: HistStore, *, t0: float | None = None, t1: float | None = None):
        self.store = store
        self.t0 = t0
        self.t1 = t1

    @property
    def samplers(self) -> tuple[str, ...]:
        return self.store.samplers

    @property
    def schemas(self):
        return self.store.schemas

    def query(self, sampler: str, *, t0: float | None = None, t1: float | None = None, **filters):
        lo = self.t0 if t0 is None else (t0 if self.t0 is None else max(t0, self.t0))
        hi = self.t1 if t1 is None else (t1 if self.t1 is None else min(t1, self.t1))
        return self.store.query(sampler, t0=lo, t1=hi, **filters)

    def jobs(self) -> np.ndarray:
        parts = [self.query(s).job_id for s in self.samplers]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def components(self, job_id: int) -> np.ndarray:
        parts = [self.query(s, job_id=job_id).component_id for s in self.samplers]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))


def metric_reference(
    store: HistStore,
    sampler: str,
    metric: str,
    *,
    job_id: int | None = None,
    t0: float | None = None,
    t1: float | None = None,
    tier: str = TIER_RAW,
) -> np.ndarray:
    """One metric's values over a historical window (drift reference sample).

    Values come back in the store's canonical ``(job, ingest)`` order;
    distribution statistics (KS, PSI) are order-free, so the shape of the
    return is all a drift monitor needs.
    """
    frame = store.query(sampler, job_id=job_id, t0=t0, t1=t1, tier=tier)
    if metric not in frame.metric_names:
        raise KeyError(
            f"sampler {sampler!r} has no metric {metric!r} in tier {tier!r}; "
            f"available: {list(frame.metric_names)}"
        )
    return frame.column(metric)


def harvest_healthy_windows(
    store: HistStore,
    catalog: MetricCatalog,
    *,
    t0: float | None = None,
    t1: float | None = None,
    exclude: Iterable[tuple[int, int]] = (),
    limit: int | None = None,
    trim_seconds: float = 0.0,
) -> list[NodeSeries]:
    """Preprocessed node windows from history, for a retraining buffer.

    *exclude* lists ``(job_id, component_id)`` pairs that alerted during
    the window (a healthy buffer must not learn from them); *limit* caps
    the harvest.  Node runs whose window slice is too short to preprocess
    are skipped, not fatal — harvest is best-effort by design.
    """
    from repro.pipeline.datagenerator import DataGenerator

    view = WindowedStoreView(store, t0=t0, t1=t1)
    generator = DataGenerator(view, catalog, trim_seconds=trim_seconds)
    excluded = set(exclude)
    out: list[NodeSeries] = []
    for job in view.jobs():
        for comp in view.components(int(job)):
            if (int(job), int(comp)) in excluded:
                continue
            try:
                out.append(generator.node_series(int(job), int(comp)))
            except (LookupError, ValueError):
                continue
            if limit is not None and len(out) >= limit:
                return out
    return out


def dashboard_rollup(
    store: HistStore,
    *,
    tier: str = "1min",
    t0: float | None = None,
    t1: float | None = None,
) -> dict:
    """Per-sampler/metric window summary from a downsampled tier.

    Gauge means are weighted by each bucket's raw-row count; min/max come
    from the envelope columns; cumulative/delta columns report their last
    and sum respectively.  Falls back to the raw tier (unweighted) when the
    requested tier has not been compacted yet — callers always get an
    answer, just a costlier one.
    """
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; available: {TIERS}")
    rollup: dict = {"tier": tier, "window": [t0, t1], "samplers": {}}
    for sampler in store.samplers:
        container = store.container(sampler)
        effective = tier if (tier == TIER_RAW or container.segments[tier]) else TIER_RAW
        frame = store.query(sampler, t0=t0, t1=t1, tier=effective)
        entry: dict = {"tier": effective, "rows": frame.n_rows, "metrics": {}}
        if frame.n_rows:
            names = frame.metric_names
            counts = (
                frame.column(COUNT_COLUMN)
                if COUNT_COLUMN in names
                else np.ones(frame.n_rows)
            )
            total = float(counts.sum())
            for name in names:
                if name == COUNT_COLUMN or name.endswith(("::min", "::max")):
                    continue
                col = frame.column(name)
                kind = container.meters.get(name, "gauge")
                if effective != TIER_RAW and kind == "gauge":
                    stats = {
                        "mean": float((col * counts).sum() / total),
                        "min": float(frame.column(f"{name}::min").min()),
                        "max": float(frame.column(f"{name}::max").max()),
                    }
                else:
                    stats = {
                        "mean": float(col.mean()),
                        "min": float(col.min()),
                        "max": float(col.max()),
                    }
                entry["metrics"][name] = {"kind": kind, **stats}
            entry["samples"] = total
        rollup["samplers"][sampler] = entry
    return rollup
