"""Immutable columnar segments: on-disk format, codecs, mmap reads.

One segment holds the rows of one container (sampler) whose timestamps
fall inside one time partition, laid out column-major:

* index columns — ``job``/``component`` (dictionary-encoded against the
  segment's sorted id dictionaries, which double as zone maps),
  ``timestamp`` (delta-of-delta when exactly integral), and ``seq`` (the
  container-global ingest row number that makes query results bit-identical
  to the legacy append-order store);
* metric columns — one contiguous array each; ``cumulative`` meters are
  counter-differenced to small integer deltas when that round-trips
  exactly, everything else stays raw ``float64``.

Every lossy-looking codec is **verified at write time**: the encoder
decodes its own output and falls back to ``raw`` unless the bits match, so
reads are always exact regardless of what the data looked like.

File layout (single file, written to a temp name and ``os.replace``\\ d so
readers only ever see complete segments)::

    magic "RPHSEG1\\n" | u64 header length | JSON header | pad to 64
    column blob 0 (64-byte aligned) | column blob 1 | ...

The JSON header carries the schema (column names, codecs, dtypes, byte
offsets), the zone map (min/max time, job/component dictionaries), meter
kinds, and the retention tier.  Readers :func:`np.memmap` the file once
and slice per-column views out of it — a scan touches only the pages of
the columns it decodes, so historical queries never materialise the full
history.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.hist.meters import CUMULATIVE

__all__ = ["Segment", "write_segment", "encode_column", "decode_column"]

_MAGIC = b"RPHSEG1\n"
_ALIGN = 64

#: Exact-integer window of float64: integral values beyond 2**53 may have
#: rounded, so integer codecs refuse them and fall back to raw.
_EXACT_INT = float(2**53)


# -- codecs -------------------------------------------------------------------


def _pack_ints(values: np.ndarray) -> np.ndarray:
    """Narrow an int64 array to the smallest integer dtype that holds it."""
    if values.size == 0:
        return values.astype(np.int8)
    lo, hi = int(values.min()), int(values.max())
    for dtype in (np.int8, np.int16, np.int32):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return values.astype(dtype)
    return values


def _as_exact_int64(values: np.ndarray) -> np.ndarray | None:
    """*values* as int64 when the float64 -> int64 cast is exact, else None."""
    if values.dtype == np.int64:
        return values
    if not np.all(np.isfinite(values)):
        return None
    if np.any(np.abs(values) >= _EXACT_INT):
        return None
    ints = values.astype(np.int64)
    if not np.array_equal(ints.astype(np.float64), values):
        return None
    return ints


def encode_column(values: np.ndarray) -> tuple[dict, np.ndarray]:
    """(codec descriptor, blob) for one column; decode is verified exact.

    Exactly-integral sequences (timestamps on a sampling grid, ``seq``,
    raw cumulative counters) are stored as delta (``i-delta``) or
    delta-of-delta (``i-dod``) packed integers, whichever is narrower;
    anything non-integral, non-finite, or outside the exact-int window of
    float64 stays ``raw``.
    """
    values = np.asarray(values)
    raw = {"codec": "raw", "dtype": values.dtype.str}
    ints = _as_exact_int64(values)
    if ints is None or ints.size < 3:
        return raw, values
    deltas = np.diff(ints)
    candidates = [
        ("i-delta", {"first": int(ints[0])}, _pack_ints(deltas)),
        (
            "i-dod",
            {"first": int(ints[0]), "d0": int(deltas[0])},
            _pack_ints(np.diff(deltas)),
        ),
    ]
    name, params, blob = min(candidates, key=lambda c: c[2].itemsize)
    if blob.itemsize >= values.dtype.itemsize:
        return raw, values  # no win over raw storage
    desc = {
        "codec": name,
        "dtype": blob.dtype.str,
        "out_dtype": values.dtype.str,
        **params,
    }
    if not np.array_equal(decode_column(desc, blob, values.shape[0]), values):
        return raw, values  # codec would not round-trip: store raw
    return desc, blob


def decode_column(desc: Mapping, blob: np.ndarray, n_rows: int) -> np.ndarray:
    """Reconstruct the exact original column from its descriptor + blob."""
    codec = desc["codec"]
    if codec == "raw":
        return blob
    if codec == "dict":
        return np.asarray(desc["values"], dtype=np.int64)[blob.astype(np.int64)]
    out_dtype = np.dtype(desc["out_dtype"])
    if codec == "i-delta":
        deltas = blob.astype(np.int64)
        out = np.empty(n_rows, dtype=np.int64)
        out[0] = desc["first"]
        np.cumsum(deltas, out=out[1:])
        out[1:] += desc["first"]
        return out.astype(out_dtype, copy=False)
    if codec == "i-dod":
        dod = blob.astype(np.int64)
        deltas = np.empty(n_rows - 1, dtype=np.int64)
        deltas[0] = desc["d0"]
        np.cumsum(dod, out=deltas[1:])
        deltas[1:] += desc["d0"]
        out = np.empty(n_rows, dtype=np.int64)
        out[0] = desc["first"]
        np.cumsum(deltas, out=out[1:])
        out[1:] += desc["first"]
        return out.astype(out_dtype, copy=False)
    raise ValueError(f"unknown column codec {codec!r}")


def _encode_dictionary(ids: np.ndarray) -> tuple[dict, np.ndarray]:
    """Dictionary-encode an id column; the dictionary doubles as zone map."""
    uniques, codes = np.unique(ids, return_inverse=True)
    blob = _pack_ints(codes.astype(np.int64))
    desc = {
        "codec": "dict",
        "dtype": blob.dtype.str,
        "values": [int(u) for u in uniques],
    }
    return desc, blob


# -- write --------------------------------------------------------------------


def write_segment(
    path: str | Path,
    *,
    sampler: str,
    tier: str,
    job_id: np.ndarray,
    component_id: np.ndarray,
    timestamp: np.ndarray,
    seq: np.ndarray,
    values: np.ndarray,
    metric_names: Sequence[str],
    meters: Mapping[str, str],
    raw_sources: Sequence[str] | None = None,
) -> "Segment":
    """Write one immutable segment atomically and return its reader.

    Rows may arrive in any order; they are stored sorted by ``seq`` (ingest
    order) so the delta codecs see the smoothest sequences and scans can
    re-establish legacy ordering with a single stable job sort.
    """
    job_id = np.asarray(job_id, dtype=np.int64)
    component_id = np.asarray(component_id, dtype=np.int64)
    timestamp = np.asarray(timestamp, dtype=np.float64)
    seq = np.asarray(seq, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    n = job_id.shape[0]
    if n == 0:
        raise ValueError("refusing to write an empty segment")
    if not (component_id.shape[0] == timestamp.shape[0] == seq.shape[0] == values.shape[0] == n):
        raise ValueError("segment index columns and values must have equal length")
    order = np.argsort(seq, kind="stable")
    if not np.array_equal(order, np.arange(n)):
        job_id, component_id = job_id[order], component_id[order]
        timestamp, seq, values = timestamp[order], seq[order], values[order]

    columns: list[dict] = []
    blobs: list[np.ndarray] = []

    def add(name: str, role: str, desc: dict, blob: np.ndarray) -> None:
        columns.append({"name": name, "role": role, **desc})
        blobs.append(np.ascontiguousarray(blob))

    for name, ids in (("job_id", job_id), ("component_id", component_id)):
        add(name, "index", *_encode_dictionary(ids))
    add("timestamp", "index", *encode_column(timestamp))
    add("seq", "index", *encode_column(seq))
    for m, name in enumerate(metric_names):
        kind = meters.get(name, "gauge")
        col = np.ascontiguousarray(values[:, m])
        if kind == CUMULATIVE:
            # Counter differencing: running totals become small bounded
            # per-row increments, which the integer codecs pack tightly.
            desc, blob = encode_column(col)
        else:
            desc, blob = {"codec": "raw", "dtype": col.dtype.str}, col
        add(name, "metric", desc, blob)

    offset = 0
    payload_parts: list[bytes] = []
    for colmeta, blob in zip(columns, blobs):
        pad = (-offset) % _ALIGN
        payload_parts.append(b"\x00" * pad)
        offset += pad
        raw = blob.tobytes()
        colmeta["offset"] = offset
        colmeta["nbytes"] = len(raw)
        payload_parts.append(raw)
        offset += len(raw)

    header = {
        "sampler": sampler,
        "tier": tier,
        "n_rows": int(n),
        "t_min": float(timestamp.min()),
        "t_max": float(timestamp.max()),
        "seq_min": int(seq.min()),
        "seq_max": int(seq.max()),
        "metric_names": list(metric_names),
        "meters": {name: meters.get(name, "gauge") for name in metric_names},
        "columns": columns,
    }
    if raw_sources is not None:
        # Provenance for downsampled tiers: the raw-tier segment file names
        # whose rows were aggregated into this segment.  Retention uses it to
        # decide when raw is safely represented, compaction to decide which
        # tier segments are re-derivable and which are the only copy left.
        header["raw_sources"] = sorted(raw_sources)
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    prefix = _MAGIC + np.uint64(len(header_bytes)).tobytes() + header_bytes
    pad = (-len(prefix)) % _ALIGN

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(prefix)
            fh.write(b"\x00" * pad)
            for part in payload_parts:
                fh.write(part)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        Path(tmp_name).unlink(missing_ok=True)
        raise
    return Segment(path)


# -- read ---------------------------------------------------------------------


class Segment:
    """Reader over one immutable segment file.

    Construction parses only the JSON header (zone map, codecs, offsets);
    the data region is memory-mapped lazily on the first column access and
    decoded per column on demand.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        with open(self.path, "rb") as fh:
            magic = fh.read(len(_MAGIC))
            if magic != _MAGIC:
                raise ValueError(f"{self.path}: not a segment file (bad magic {magic!r})")
            (header_len,) = np.frombuffer(fh.read(8), dtype=np.uint64)
            header = json.loads(fh.read(int(header_len)).decode())
        self._header = header
        prefix = len(_MAGIC) + 8 + int(header_len)
        self._data_start = prefix + ((-prefix) % _ALIGN)
        self._columns = {c["name"]: c for c in header["columns"]}
        self._mm: np.memmap | None = None

    # -- zone map / metadata ---------------------------------------------------

    @property
    def sampler(self) -> str:
        return self._header["sampler"]

    @property
    def tier(self) -> str:
        return self._header["tier"]

    @property
    def n_rows(self) -> int:
        return int(self._header["n_rows"])

    @property
    def t_min(self) -> float:
        return float(self._header["t_min"])

    @property
    def t_max(self) -> float:
        return float(self._header["t_max"])

    @property
    def seq_min(self) -> int:
        return int(self._header["seq_min"])

    @property
    def seq_max(self) -> int:
        return int(self._header["seq_max"])

    @property
    def raw_sources(self) -> tuple[str, ...]:
        """Raw-tier segment names this downsampled segment was derived from."""
        return tuple(self._header.get("raw_sources", ()))

    @property
    def jobs(self) -> np.ndarray:
        """Sorted job ids present (the job dictionary — exact, not a sketch)."""
        return np.asarray(self._columns["job_id"]["values"], dtype=np.int64)

    @property
    def components(self) -> np.ndarray:
        return np.asarray(self._columns["component_id"]["values"], dtype=np.int64)

    @property
    def metric_names(self) -> tuple[str, ...]:
        return tuple(self._header["metric_names"])

    @property
    def meters(self) -> dict[str, str]:
        return dict(self._header["meters"])

    @property
    def nbytes(self) -> int:
        return self.path.stat().st_size

    def codec_of(self, name: str) -> str:
        return self._columns[name]["codec"]

    def may_contain(
        self,
        *,
        job_id: int | None = None,
        component_id: int | None = None,
        t0: float | None = None,
        t1: float | None = None,
    ) -> bool:
        """Zone-map pruning: False means no row can match the filters."""
        if t0 is not None and t1 is not None and t0 > t1:
            return False  # inverted window selects nothing anywhere
        if t0 is not None and self.t_max < t0:
            return False
        if t1 is not None and self.t_min > t1:
            return False
        if job_id is not None:
            jobs = self.jobs
            i = int(np.searchsorted(jobs, job_id))
            if i >= jobs.size or jobs[i] != job_id:
                return False
        if component_id is not None:
            comps = self.components
            i = int(np.searchsorted(comps, component_id))
            if i >= comps.size or comps[i] != component_id:
                return False
        return True

    # -- column access ---------------------------------------------------------

    def _memmap(self) -> np.memmap:
        if self._mm is None:
            self._mm = np.memmap(self.path, dtype=np.uint8, mode="r")
        return self._mm

    def column(self, name: str) -> np.ndarray:
        """Decoded column; ``raw`` codecs return a zero-copy memmap view."""
        try:
            meta = self._columns[name]
        except KeyError:
            raise KeyError(
                f"segment {self.path.name} has no column {name!r}; "
                f"available: {sorted(self._columns)}"
            ) from None
        mm = self._memmap()
        start = self._data_start + meta["offset"]
        blob = mm[start : start + meta["nbytes"]].view(np.dtype(meta["dtype"]))
        return decode_column(meta, blob, self.n_rows)

    def scan(
        self,
        *,
        job_id: int | None = None,
        component_id: int | None = None,
        t0: float | None = None,
        t1: float | None = None,
        metrics: Sequence[str] | None = None,
    ) -> dict[str, np.ndarray]:
        """Filtered row gather: index arrays + a row-major ``values`` block.

        Index columns are decoded first and build the row mask; metric
        columns are only decoded (only *their* pages touched) when some row
        survives the filters.
        """
        names = tuple(metrics) if metrics is not None else self.metric_names
        mask: np.ndarray | None = None

        def narrow(m: np.ndarray) -> None:
            nonlocal mask
            mask = m if mask is None else (mask & m)

        if job_id is not None:
            narrow(self.column("job_id") == job_id)
        if component_id is not None:
            narrow(self.column("component_id") == component_id)
        if t0 is not None or t1 is not None:
            ts = self.column("timestamp")
            if t0 is not None:
                narrow(ts >= t0)
            if t1 is not None:
                narrow(ts <= t1)
        if mask is None:
            idx = slice(None)
            n_out = self.n_rows
        else:
            idx = np.flatnonzero(mask)
            n_out = int(idx.size)
        out = {
            "job_id": np.ascontiguousarray(self.column("job_id")[idx]),
            "component_id": np.ascontiguousarray(self.column("component_id")[idx]),
            "timestamp": np.ascontiguousarray(self.column("timestamp")[idx]),
            "seq": np.ascontiguousarray(self.column("seq")[idx]),
        }
        if n_out == 0:
            out["values"] = np.empty((0, len(names)))
            return out
        vals = np.empty((n_out, len(names)))
        for j, name in enumerate(names):
            vals[:, j] = self.column(name)[idx]
        out["values"] = vals
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment({self.path.name}, tier={self.tier}, rows={self.n_rows}, "
            f"t=[{self.t_min:.0f}, {self.t_max:.0f}], jobs={self.jobs.size})"
        )
