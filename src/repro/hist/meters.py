"""Typed meter model for the historical store (ceilometer taxonomy).

OpenStack Telemetry classifies every meter as one of three types, and the
same taxonomy (SNIPPETS.md) makes columnar encoding and downsampling
well-defined per metric in this store:

* ``cumulative`` — monotonically increasing over time (raw LDMS counters
  such as ``pgpgin::vmstat``).  Compresses as first value + row deltas;
  downsampling keeps the **last** observation of a bucket (the running
  total at bucket close).
* ``delta`` — per-interval change (counters after
  :func:`~repro.telemetry.preprocessing.difference_counters`, bandwidth).
  Downsampling **sums** a bucket.
* ``gauge`` — fluctuating instantaneous values (utilisation, temperature).
  Downsampling keeps the bucket **mean** plus ``::min``/``::max`` envelope
  columns.

The mapping from the schema layer is direct: a
:class:`~repro.telemetry.schema.MetricField` with ``kind="counter"``
stores raw accumulating values, so it ingests as ``cumulative``; a
``gauge`` field stays ``gauge``.  ``delta`` never arises from a schema —
it is declared explicitly (via :func:`resolve_meters` overrides) for
pre-differenced streams.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.telemetry.schema import COUNTER, MetricField, MetricSchema, SchemaRegistry

__all__ = [
    "CUMULATIVE",
    "DELTA",
    "GAUGE",
    "METER_KINDS",
    "meter_kind_of_field",
    "resolve_meters",
]

CUMULATIVE = "cumulative"
DELTA = "delta"
GAUGE = "gauge"

METER_KINDS = (CUMULATIVE, DELTA, GAUGE)


def meter_kind_of_field(field: MetricField) -> str:
    """Meter type of a schema field: counters accumulate, gauges fluctuate."""
    return CUMULATIVE if field.kind == COUNTER else GAUGE


def resolve_meters(
    metric_names: Sequence[str],
    *,
    registry: SchemaRegistry | None = None,
    schema: MetricSchema | None = None,
    overrides: Mapping[str, str] | None = None,
) -> dict[str, str]:
    """Meter kind per column of one container.

    Resolution order per column: an explicit *overrides* entry wins, then
    the *schema* (or any *registry* schema) that describes the column, then
    the ``gauge`` default — unknown columns downsample conservatively
    (mean/min/max loses no information class) and store uncompressed.
    """
    if overrides:
        for name, kind in overrides.items():
            if kind not in METER_KINDS:
                raise ValueError(
                    f"meter override {name!r}: kind must be one of "
                    f"{METER_KINDS}, got {kind!r}"
                )
    schemas: list[MetricSchema] = [schema] if schema is not None else []
    if registry is not None:
        schemas.extend(registry.get(name) for name in registry.names)
    out: dict[str, str] = {}
    for col in metric_names:
        if overrides and col in overrides:
            out[col] = overrides[col]
            continue
        kind = GAUGE
        for sch in schemas:
            try:
                kind = meter_kind_of_field(sch.field_of(col))
                break
            except KeyError:
                continue
        out[col] = kind
    return out
