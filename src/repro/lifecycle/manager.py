"""LifecycleManager: the drift -> retrain -> shadow -> promote state machine.

One object that the streaming detector (or the batch detector service)
feeds with every evaluated window.  Per observation it:

1. updates the drift monitor with the window's anomaly score and selected
   feature row (``drift`` stage timer);
2. buffers the raw window in the healthy-sample buffer when it did not
   alert;
3. on a confirmed drift episode, asks the retraining policy for a
   candidate version (trained on the buffer, registered in the registry);
4. while a candidate is in shadow, scores the window with it too
   (``shadow`` stage timer) and, when the evaluation window completes,
   promotes or rejects it through the registry — returning the newly
   active detector so the caller can hot-swap.

Every transition lands in the registry audit log, so ``prodigy lifecycle
status`` replays the full story.
"""

from __future__ import annotations

import numpy as np

from repro.core.prodigy import ProdigyDetector
from repro.lifecycle.drift import DriftEvent, DriftMonitor
from repro.lifecycle.registry import ModelRegistry
from repro.lifecycle.retraining import HealthySampleBuffer, RetrainingPolicy
from repro.lifecycle.shadow import ShadowDeployment, ShadowReport
from repro.pipeline.datapipeline import DataPipeline
from repro.runtime.instrumentation import Instrumentation, get_instrumentation
from repro.telemetry.frame import NodeSeries

__all__ = ["LifecycleManager"]


class LifecycleManager:
    """Operates one deployed detector against a registry.

    Parameters
    ----------
    registry:
        The version store; must have an active version (or ``monitor``
        must be supplied explicitly).
    pipeline:
        The fitted feature pipeline shared by active and candidate models.
    monitor:
        Drift monitor; defaults to one built from the active version's
        persisted reference profile.
    policy:
        Retraining policy; ``None`` disables automated retraining (drift
        events are still recorded).
    buffer:
        Healthy-window buffer feeding retraining jobs.
    shadow_eval_windows, max_alert_rate_increase, min_score_correlation:
        Shadow-deployment promotion criteria.
    auto_promote:
        When ``False``, completed shadow reports are recorded but the
        candidate is left for a human ``lifecycle activate``.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        pipeline: DataPipeline,
        *,
        monitor: DriftMonitor | None = None,
        policy: RetrainingPolicy | None = None,
        buffer: HealthySampleBuffer | None = None,
        shadow_eval_windows: int = 20,
        max_alert_rate_increase: float = 0.05,
        min_score_correlation: float = 0.5,
        auto_promote: bool = True,
        instrumentation: Instrumentation | None = None,
    ):
        self.registry = registry
        self.pipeline = pipeline
        self.instrumentation = instrumentation or get_instrumentation()
        if monitor is None:
            profile = registry.load_profile()
            if profile is None:
                raise ValueError(
                    "active version has no reference profile; train via "
                    "ModelTrainer.train (which persists one) or pass monitor="
                )
            monitor = DriftMonitor(profile, instrumentation=self.instrumentation)
        self.monitor = monitor
        self.policy = policy
        self.buffer = buffer if buffer is not None else HealthySampleBuffer()
        self.shadow_eval_windows = int(shadow_eval_windows)
        self.max_alert_rate_increase = float(max_alert_rate_increase)
        self.min_score_correlation = float(min_score_correlation)
        self.auto_promote = auto_promote
        self.shadow: ShadowDeployment | None = None
        self.drift_events: list[DriftEvent] = []
        self.shadow_reports: list[ShadowReport] = []
        self.windows_observed = 0
        #: when True (the fleet coordinator's mode), a promotion is parked
        #: instead of returned, so every consumer hot-swaps together at a
        #: batch boundary via :meth:`take_pending_promotion` — no mid-batch
        #: mixed-version scoring across shards.
        self.defer_promotions = False
        self._pending_promotion: ProdigyDetector | None = None
        #: callables invoked with the newly active version id the moment a
        #: promotion takes effect (after ``registry.activate``, or when a
        #: deferred promotion is consumed).  The serving gateway registers
        #: its response-cache invalidation here so a hot-swap can never
        #: leave verdicts of the demoted version servable.
        self._promotion_listeners: list = []

    def add_promotion_listener(self, listener) -> None:
        """Register ``listener(version)`` to fire when a promotion lands."""
        self._promotion_listeners.append(listener)

    def _notify_promotion(self, version: str) -> None:
        for listener in self._promotion_listeners:
            listener(version)

    # -- the per-window entry point -------------------------------------------

    def observe_window(
        self,
        series: NodeSeries | None,
        feature_row: np.ndarray,
        score: float,
        *,
        alert: bool,
        active_detector: ProdigyDetector,
    ) -> ProdigyDetector | None:
        """Process one evaluated window; returns a new detector on promotion.

        ``series`` may be ``None`` for consumers without raw-window access
        (no healthy buffering, hence no retraining from that path).
        """
        self.windows_observed += 1
        self.instrumentation.count("lifecycle_windows", 1)
        if series is not None and not alert:
            self.buffer.add(series)

        events = self.monitor.observe(score, feature_row)
        if events:
            self.drift_events.extend(events)
            self.registry.audit_event(
                "drift",
                events=[
                    {"source": e.source, "statistic": e.statistic, "value": e.value,
                     "threshold": e.threshold, "window_index": e.window_index}
                    for e in events
                ],
            )
            if self.shadow is None and self.policy is not None:
                self._maybe_retrain(events, active_detector)

        if self.shadow is not None:
            report = self.shadow.observe(feature_row, score, alert)
            if report is not None:
                promoted = self._conclude_shadow(report)
                if promoted is not None and self.defer_promotions:
                    self._pending_promotion = promoted
                    return None
                return promoted
        return None

    def take_pending_promotion(self) -> ProdigyDetector | None:
        """Pop the promotion parked by deferred mode (``None`` if idle).

        The fleet coordinator calls this once per pump cycle and fans the
        detector out to every worker atomically.
        """
        promoted, self._pending_promotion = self._pending_promotion, None
        return promoted

    # -- state transitions ----------------------------------------------------

    def _maybe_retrain(self, events: list[DriftEvent], active: ProdigyDetector) -> None:
        idx = self.monitor.windows_evaluated
        if not self.policy.should_retrain(events, self.buffer, window_index=idx):
            return
        version = self.policy.retrain(
            self.pipeline, active, self.buffer,
            trigger_events=events, window_index=idx,
        )
        self.instrumentation.count("retrainings", 1)
        _, candidate = self.registry.load(version.version)
        self.shadow = ShadowDeployment(
            version.version,
            candidate,
            eval_windows=self.shadow_eval_windows,
            max_alert_rate_increase=self.max_alert_rate_increase,
            min_score_correlation=self.min_score_correlation,
            instrumentation=self.instrumentation,
        )
        self.registry.audit_event(
            "shadow_start", candidate=version.version,
            eval_windows=self.shadow_eval_windows,
        )

    def _conclude_shadow(self, report: ShadowReport) -> ProdigyDetector | None:
        self.shadow_reports.append(report)
        candidate_version = report.candidate_version
        candidate = self.shadow.candidate
        self.shadow = None
        self.registry.audit_event("shadow_report", **report.to_dict())
        if report.decision != "promote":
            self.registry.reject(candidate_version, reason=report.reason)
            return None
        if not self.auto_promote:
            return None
        self.registry.activate(candidate_version, reason="shadow_promoted")
        self._notify_promotion(candidate_version)
        # The promoted model defines the new normal: re-arm drift monitoring
        # against its own training profile when one was persisted.
        profile = self.registry.load_profile(candidate_version)
        if profile is not None:
            self.monitor = DriftMonitor(
                profile,
                window_size=self.monitor.window_size,
                warmup_windows=self.monitor.warmup_windows,
                debounce=self.monitor.debounce,
                ks_threshold=self.monitor.ks_threshold,
                psi_threshold=self.monitor.psi_threshold,
                instrumentation=self.instrumentation,
            )
        return candidate

    # -- reporting -------------------------------------------------------------

    def status(self) -> dict:
        """JSON-ready lifecycle snapshot: registry + monitor + shadow state."""
        return {
            "registry": self.registry.status(),
            "monitor": self.monitor.summary(),
            "buffer": {"size": len(self.buffer), "capacity": self.buffer.capacity},
            "shadow": self.shadow.summary() if self.shadow is not None else None,
            "windows_observed": self.windows_observed,
            "defer_promotions": self.defer_promotions,
            "pending_promotion": self._pending_promotion is not None,
            "drift_events": len(self.drift_events),
            "retrainings": self.policy.retrain_count if self.policy else 0,
            "shadow_reports": [r.to_dict() for r in self.shadow_reports],
        }
