"""Distribution-drift monitoring for deployed detectors.

The paper's deployment assumes the trained detector stays valid, but
production telemetry shifts as applications, system software, and firmware
change (its Sec. 7; Borghesi et al.'s online-operation argument in
PAPERS.md).  This module watches the *live* anomaly-score distribution and
a handful of selected-feature distributions against a training-time
:class:`ReferenceProfile`, using two complementary statistics:

* the two-sample **Kolmogorov–Smirnov** statistic — sensitive to any shape
  change, scale-free;
* the **Population Stability Index** over reference-quantile bins — the
  standard model-monitoring measure, robust on small windows.

Windows are tumbling (``window_size`` observations each); the first
``warmup_windows`` windows never fire (streaming windows are noisier than
the run-level training distribution), and a breach must persist for
``debounce`` consecutive windows before a :class:`DriftEvent` is emitted —
the same flap suppression the streaming detector applies to alerts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.runtime.instrumentation import Instrumentation, get_instrumentation

__all__ = ["DriftEvent", "ReferenceProfile", "DriftMonitor", "ks_statistic", "psi"]

#: Cap on PSI quantile bins; small windows use fewer (see DriftMonitor).
_PSI_BINS = 10


def ks_statistic(reference: np.ndarray, sample: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic ``sup |F_ref - F_sample|``."""
    reference = np.sort(np.asarray(reference, dtype=np.float64))
    sample = np.sort(np.asarray(sample, dtype=np.float64))
    if reference.size == 0 or sample.size == 0:
        return 0.0
    grid = np.concatenate([reference, sample])
    cdf_ref = np.searchsorted(reference, grid, side="right") / reference.size
    cdf_smp = np.searchsorted(sample, grid, side="right") / sample.size
    return float(np.abs(cdf_ref - cdf_smp).max())


def psi(expected: np.ndarray, edges: np.ndarray, sample: np.ndarray) -> float:
    """Population Stability Index of *sample* against reference proportions.

    ``expected`` are the reference bin proportions for ``edges`` (outer
    edges are +-inf so every observation lands in a bin).  Proportions are
    floored to avoid log blow-ups on empty bins.
    """
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        return 0.0
    counts, _ = np.histogram(sample, bins=edges)
    actual = counts / sample.size
    floor = 1.0 / (_PSI_BINS * 100)
    e = np.clip(np.asarray(expected, dtype=np.float64), floor, None)
    a = np.clip(actual, floor, None)
    return float(np.sum((a - e) * np.log(a / e)))


def _quantile_bins(values: np.ndarray, n_bins: int) -> tuple[np.ndarray, np.ndarray]:
    """(edges, proportions) for PSI: equal-mass bins from reference quantiles."""
    qs = np.quantile(values, np.linspace(0.0, 1.0, n_bins + 1))
    edges = np.unique(qs[1:-1])
    edges = np.concatenate([[-np.inf], edges, [np.inf]])
    counts, _ = np.histogram(values, bins=edges)
    return edges, counts / max(values.size, 1)


@dataclass(frozen=True)
class DriftEvent:
    """One confirmed distribution shift.

    ``source`` is ``"score"`` for the anomaly-score stream or the feature
    name for a watched selected-feature column.
    """

    source: str
    statistic: str  # "ks" | "psi"
    value: float
    threshold: float
    window_index: int
    window_size: int


class ReferenceProfile:
    """Training-time distributions the monitors compare live windows against.

    Parameters
    ----------
    scores:
        Anomaly scores of the (healthy) training samples.
    features:
        Optional ``(N, F)`` transformed training feature matrix.
    feature_names:
        Length-``F`` names matching *features* columns.
    watch_features:
        How many feature columns to monitor online (picked by variance —
        high-variance features are where covariate shift shows first).
    max_reference:
        Cap on stored reference observations per distribution.
    """

    def __init__(
        self,
        scores: np.ndarray,
        features: np.ndarray | None = None,
        feature_names: Sequence[str] = (),
        *,
        watch_features: int = 8,
        max_reference: int = 2048,
    ):
        scores = np.asarray(scores, dtype=np.float64).ravel()
        if scores.size == 0:
            raise ValueError("reference profile needs at least one score")
        self.scores = _subsample(scores, max_reference)
        #: watched feature columns as (name, column index, reference sample)
        self.watched: list[tuple[str, int, np.ndarray]] = []
        if features is not None and len(feature_names):
            features = np.asarray(features, dtype=np.float64)
            var = features.var(axis=0)
            k = min(int(watch_features), features.shape[1])
            cols = np.sort(np.lexsort((np.arange(var.size), -var))[:k])
            for col in cols:
                ref = _subsample(features[:, col], max_reference)
                self.watched.append((str(feature_names[col]), int(col), ref))

    @classmethod
    def from_training(
        cls,
        scores: np.ndarray,
        features: np.ndarray | None = None,
        feature_names: Sequence[str] = (),
        **kwargs,
    ) -> "ReferenceProfile":
        return cls(scores, features, feature_names, **kwargs)

    # -- persistence (the ModelTrainer's "reference" artifact group) ----------

    def to_arrays(self) -> dict[str, np.ndarray]:
        out: dict[str, np.ndarray] = {
            "scores": self.scores,
            "watched_names": np.array([w[0] for w in self.watched], dtype=str),
            "watched_cols": np.array([w[1] for w in self.watched], dtype=np.int64),
        }
        for name, col, ref in self.watched:
            out[f"feature_{col}"] = ref
        return out

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "ReferenceProfile":
        """Rebuild from a persisted ``reference`` artifact group."""
        profile = cls(arrays["scores"])
        names = [str(n) for n in arrays.get("watched_names", [])]
        cols = [int(c) for c in arrays.get("watched_cols", [])]
        for name, col in zip(names, cols):
            ref = np.asarray(arrays[f"feature_{col}"], dtype=np.float64)
            profile.watched.append((name, col, ref))
        return profile


def _subsample(values: np.ndarray, cap: int) -> np.ndarray:
    if values.size <= cap:
        return values.copy()
    idx = np.linspace(0, values.size - 1, cap).round().astype(np.int64)
    return values[np.unique(idx)]


class DriftMonitor:
    """Windowed KS/PSI drift detection with warmup and debounce.

    Feed one observation per evaluated streaming window (or per scored
    sample) via :meth:`observe`; a non-empty return is a confirmed drift
    episode.  Events fire exactly once per episode: when the breach streak
    reaches ``debounce``; a quiet window ends the episode and re-arms.

    Parameters
    ----------
    profile:
        Training-time reference distributions.
    window_size:
        Observations per tumbling evaluation window.
    warmup_windows:
        Evaluated windows ignored before monitoring starts.
    debounce:
        Consecutive breaching windows required before events are emitted.
    ks_threshold, psi_threshold:
        Base breach levels (PSI 0.25 is the conventional "significant
        shift" level).  Both are corrected upward for small windows at
        construction — the null KS statistic scales like
        ``sqrt(1/window + 1/reference)`` and the null PSI mean like
        ``(bins - 1)/window`` — so the configured level expresses the
        *excess* shift beyond finite-sample noise.
    """

    def __init__(
        self,
        profile: ReferenceProfile,
        *,
        window_size: int = 32,
        warmup_windows: int = 2,
        debounce: int = 2,
        ks_threshold: float = 0.35,
        psi_threshold: float = 0.25,
        instrumentation: Instrumentation | None = None,
    ):
        if window_size < 4:
            raise ValueError("window_size must be >= 4")
        if warmup_windows < 0:
            raise ValueError("warmup_windows must be >= 0")
        if debounce < 1:
            raise ValueError("debounce must be >= 1")
        self.profile = profile
        self.window_size = int(window_size)
        self.warmup_windows = int(warmup_windows)
        self.debounce = int(debounce)
        self.instrumentation = instrumentation or get_instrumentation()
        # PSI bin count adapts to the window: equal-mass bins need several
        # observations each or the null PSI ~ (bins-1)/n swamps the signal.
        self.n_bins = int(np.clip(self.window_size // 8, 4, _PSI_BINS))
        ks_null = 1.63 * float(
            np.sqrt(1.0 / self.window_size + 1.0 / profile.scores.size)
        )
        self.ks_threshold = max(float(ks_threshold), ks_null)
        psi_null = (self.n_bins - 1) / self.window_size
        self.psi_threshold = float(psi_threshold) + 2.0 * psi_null
        self._score_bins = _quantile_bins(profile.scores, self.n_bins)
        self._feature_bins = {
            col: _quantile_bins(ref, self.n_bins) for _, col, ref in profile.watched
        }
        self._scores: list[float] = []
        self._rows: list[np.ndarray] = []
        self.windows_evaluated = 0
        self.streak = 0
        self.events: list[DriftEvent] = []
        self.last_stats: dict[str, float] = {}

    def observe(self, score: float, feature_row: np.ndarray | None = None) -> list[DriftEvent]:
        """Add one observation; returns confirmed events when a window closes."""
        self._scores.append(float(score))
        if feature_row is not None and self.profile.watched:
            self._rows.append(np.asarray(feature_row, dtype=np.float64).ravel())
        if len(self._scores) < self.window_size:
            return []
        with self.instrumentation.stage("drift", items=self.window_size):
            return self._evaluate_window()

    def _evaluate_window(self) -> list[DriftEvent]:
        scores = np.asarray(self._scores)
        rows = np.vstack(self._rows) if self._rows else None
        self._scores.clear()
        self._rows.clear()
        self.windows_evaluated += 1
        self.instrumentation.count("drift_windows", 1)

        breaches: list[DriftEvent] = []
        idx = self.windows_evaluated
        stats: dict[str, float] = {}
        ks = ks_statistic(self.profile.scores, scores)
        score_edges, score_props = self._score_bins
        p = psi(score_props, score_edges, scores)
        stats["score_ks"], stats["score_psi"] = ks, p
        if ks > self.ks_threshold:
            breaches.append(DriftEvent("score", "ks", ks, self.ks_threshold, idx, self.window_size))
        if p > self.psi_threshold:
            breaches.append(DriftEvent("score", "psi", p, self.psi_threshold, idx, self.window_size))
        if rows is not None and rows.shape[0] == scores.size:
            for name, col, ref in self.profile.watched:
                if col >= rows.shape[1]:
                    continue
                edges, props = self._feature_bins[col]
                fp = psi(props, edges, rows[:, col])
                stats[f"{name}_psi"] = fp
                if fp > self.psi_threshold:
                    breaches.append(
                        DriftEvent(name, "psi", fp, self.psi_threshold, idx, self.window_size)
                    )
        self.last_stats = stats

        if self.windows_evaluated <= self.warmup_windows:
            return []
        if not breaches:
            self.streak = 0
            return []
        self.streak += 1
        if self.streak != self.debounce:
            return []  # not yet confirmed, or already reported this episode
        self.events.extend(breaches)
        self.instrumentation.count("drift_events", len(breaches))
        return breaches

    def summary(self) -> dict:
        """JSON-ready monitor state for dashboards and the CLI."""
        return {
            "window_size": self.window_size,
            "windows_evaluated": self.windows_evaluated,
            "warmup_windows": self.warmup_windows,
            "debounce": self.debounce,
            "streak": self.streak,
            "events": len(self.events),
            "watched_features": [w[0] for w in self.profile.watched],
            "last_stats": dict(self.last_stats),
        }
