"""Model lifecycle subsystem: operating a detector fleet, not just a model.

The paper trains one detector and deploys it forever; production telemetry
drifts (Sec. 7, and Borghesi et al.'s online-operation results), so this
package adds the operations layer around the deployment pipeline:

* :class:`ModelRegistry` — immutable, versioned deployments over
  :class:`~repro.util.persistence.ArtifactBundle` with register / activate
  / rollback / gc semantics and a JSON-lines audit log;
* :class:`DriftMonitor` / :class:`ReferenceProfile` — windowed KS + PSI
  monitoring of live anomaly-score and selected-feature distributions
  against the training-time profile, with warmup and debounce;
* :class:`RetrainingPolicy` + :class:`HealthySampleBuffer` — drift events
  plus recent healthy windows become a ModelTrainer job producing a
  *candidate* version;
* :class:`ShadowDeployment` — candidate and active score the same live
  windows; alert-rate and score-correlation criteria promote or reject;
* :class:`LifecycleManager` — the drift -> retrain -> shadow -> promote
  state machine, pluggable into ``StreamingDetector`` and
  ``AnomalyDetectorService`` and surfaced by ``prodigy lifecycle``.
"""

from repro.lifecycle.drift import (
    DriftEvent,
    DriftMonitor,
    ReferenceProfile,
    ks_statistic,
    psi,
)
from repro.lifecycle.manager import LifecycleManager
from repro.lifecycle.registry import ModelRegistry, ModelVersion
from repro.lifecycle.retraining import (
    HealthySampleBuffer,
    RetrainingPolicy,
    clone_detector,
)
from repro.lifecycle.shadow import ShadowDeployment, ShadowReport

__all__ = [
    "DriftEvent",
    "DriftMonitor",
    "HealthySampleBuffer",
    "LifecycleManager",
    "ModelRegistry",
    "ModelVersion",
    "ReferenceProfile",
    "RetrainingPolicy",
    "ShadowDeployment",
    "ShadowReport",
    "clone_detector",
    "ks_statistic",
    "psi",
]
