"""Shadow deployment: score live traffic with active + candidate side by side.

A retrained candidate must earn promotion.  The shadow harness scores every
evaluated window with both detectors on the *same* feature row (extraction
is shared, so the candidate adds only one more forward pass), accumulates
alert decisions and score pairs over an evaluation window, and then decides:

* **promote** when the candidate's alert rate does not exceed the active
  one by more than ``max_alert_rate_increase`` *and* the two score streams
  correlate at least ``min_score_correlation`` (the candidate agrees on
  what looks unusual, it just re-centers "normal");
* **reject** otherwise.

The decision, rates, and correlation form a :class:`ShadowReport` that the
lifecycle manager writes into the registry audit log.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.prodigy import ProdigyDetector
from repro.runtime.instrumentation import Instrumentation, get_instrumentation

__all__ = ["ShadowReport", "ShadowDeployment"]


@dataclass(frozen=True)
class ShadowReport:
    """Outcome of one completed shadow evaluation."""

    candidate_version: str
    windows: int
    active_alert_rate: float
    candidate_alert_rate: float
    score_correlation: float
    decision: str  # "promote" | "reject"
    reason: str

    def to_dict(self) -> dict:
        return {
            "candidate_version": self.candidate_version,
            "windows": self.windows,
            "active_alert_rate": self.active_alert_rate,
            "candidate_alert_rate": self.candidate_alert_rate,
            "score_correlation": self.score_correlation,
            "decision": self.decision,
            "reason": self.reason,
        }


class ShadowDeployment:
    """Side-by-side evaluation of a candidate against the active detector.

    Parameters
    ----------
    candidate_version:
        Registry version id of the candidate (for the audit trail).
    candidate:
        The fitted candidate detector (scores the same feature rows).
    eval_windows:
        Windows to observe before deciding.
    max_alert_rate_increase:
        Promotion tolerance on ``candidate_rate - active_rate``.
    min_score_correlation:
        Minimum Pearson correlation between the two score streams.
    """

    def __init__(
        self,
        candidate_version: str,
        candidate: ProdigyDetector,
        *,
        eval_windows: int = 20,
        max_alert_rate_increase: float = 0.05,
        min_score_correlation: float = 0.5,
        instrumentation: Instrumentation | None = None,
    ):
        if eval_windows < 2:
            raise ValueError("eval_windows must be >= 2")
        self.candidate_version = candidate_version
        self.candidate = candidate
        self.eval_windows = int(eval_windows)
        self.max_alert_rate_increase = float(max_alert_rate_increase)
        self.min_score_correlation = float(min_score_correlation)
        self.instrumentation = instrumentation or get_instrumentation()
        self._active_scores: list[float] = []
        self._candidate_scores: list[float] = []
        self._active_alerts: list[bool] = []
        self._candidate_alerts: list[bool] = []

    @property
    def windows_observed(self) -> int:
        return len(self._active_scores)

    def observe(
        self, feature_row: np.ndarray, active_score: float, active_alert: bool
    ) -> ShadowReport | None:
        """Score one window with the candidate; decide when the window fills."""
        with self.instrumentation.stage("shadow", items=1):
            row = np.atleast_2d(np.asarray(feature_row, dtype=np.float64))
            candidate_score = float(self.candidate.anomaly_score(row)[0])
        self._active_scores.append(float(active_score))
        self._candidate_scores.append(candidate_score)
        self._active_alerts.append(bool(active_alert))
        self._candidate_alerts.append(candidate_score > float(self.candidate.threshold_))
        if self.windows_observed < self.eval_windows:
            return None
        return self.evaluate()

    def evaluate(self) -> ShadowReport:
        """Compare the accumulated streams and render the verdict."""
        active = np.asarray(self._active_scores)
        cand = np.asarray(self._candidate_scores)
        active_rate = float(np.mean(self._active_alerts))
        cand_rate = float(np.mean(self._candidate_alerts))
        corr = _safe_correlation(active, cand)
        reasons = []
        if cand_rate > active_rate + self.max_alert_rate_increase:
            reasons.append(
                f"alert rate {cand_rate:.2f} exceeds active {active_rate:.2f} "
                f"by more than {self.max_alert_rate_increase:.2f}"
            )
        if corr < self.min_score_correlation:
            reasons.append(
                f"score correlation {corr:.2f} below {self.min_score_correlation:.2f}"
            )
        decision = "reject" if reasons else "promote"
        self.instrumentation.count(f"shadow_{decision}", 1)
        return ShadowReport(
            candidate_version=self.candidate_version,
            windows=self.windows_observed,
            active_alert_rate=active_rate,
            candidate_alert_rate=cand_rate,
            score_correlation=corr,
            decision=decision,
            reason="; ".join(reasons) if reasons else "within promotion criteria",
        )

    def summary(self) -> dict:
        """JSON-ready in-flight state for dashboards."""
        return {
            "candidate_version": self.candidate_version,
            "windows_observed": self.windows_observed,
            "eval_windows": self.eval_windows,
            "active_alert_rate": float(np.mean(self._active_alerts)) if self._active_alerts else 0.0,
            "candidate_alert_rate": float(np.mean(self._candidate_alerts)) if self._candidate_alerts else 0.0,
        }


def _safe_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation; degenerate (constant) streams count as agreement
    when both are constant, disagreement when only one is."""
    if a.size < 2:
        return 0.0
    sa, sb = float(a.std()), float(b.std())
    if sa < 1e-12 and sb < 1e-12:
        return 1.0
    if sa < 1e-12 or sb < 1e-12:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])
