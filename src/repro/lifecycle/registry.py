"""Versioned model registry: immutable deployments with an audit trail.

The paper's ModelTrainer writes one artifact directory and the online
detector loads it forever.  A production fleet needs more: every trained
deployment becomes an immutable *version* (``v0001``, ``v0002``, ...) in a
registry directory, exactly one version is *active* at a time, candidates
from retraining wait in shadow, and every transition — register, activate,
rollback, reject, gc — is appended to a JSON-lines audit log so "what was
scoring traffic last Tuesday" is always answerable.

Layout under ``root``::

    <root>/
      registry.json      # versions, statuses, active pointer, id counter
      audit.jsonl        # append-only transition log
      v0001/             # one immutable ArtifactBundle per version
        metadata.json    #   (weights.npz, scaler.npz, reference.npz)
      v0002/
      ...

Version directories are written once at registration and never mutated;
state transitions live only in ``registry.json`` / ``audit.jsonl``.
"""

from __future__ import annotations

import json
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.lifecycle.drift import ReferenceProfile
from repro.pipeline.modeltrainer import ModelTrainer, load_detector
from repro.util.persistence import ArtifactBundle, load_json, save_json

__all__ = ["ModelVersion", "ModelRegistry"]

#: Version lifecycle states (drift -> retrain -> shadow -> promote machine).
STATUSES = ("registered", "candidate", "active", "retired", "rejected")


@dataclass
class ModelVersion:
    """One immutable registry entry."""

    version: str
    status: str
    created_at: float
    source: str = "manual"
    note: str = ""
    lineage: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "status": self.status,
            "created_at": self.created_at,
            "source": self.source,
            "note": self.note,
            "lineage": dict(self.lineage),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ModelVersion":
        return cls(
            version=payload["version"],
            status=payload["status"],
            created_at=float(payload["created_at"]),
            source=payload.get("source", "manual"),
            note=payload.get("note", ""),
            lineage=dict(payload.get("lineage", {})),
        )


class ModelRegistry:
    """Versioned store of detector deployments with activation semantics."""

    STATE_FILE = "registry.json"
    AUDIT_FILE = "audit.jsonl"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        state_path = self.root / self.STATE_FILE
        if state_path.exists():
            self._state = load_json(state_path)
        else:
            self._state = {"next_id": 1, "active": None, "history": [], "versions": {}}

    # -- write path ----------------------------------------------------------

    def register(
        self,
        pipeline,
        detector,
        *,
        status: str = "registered",
        source: str = "manual",
        note: str = "",
        reference: ReferenceProfile | None = None,
    ) -> ModelVersion:
        """Persist a fitted (pipeline, detector) pair as a new version.

        ``reference`` (training-time score/feature distributions) enables
        drift monitoring against this version; ``ModelTrainer.train`` saves
        one automatically, so :meth:`register_artifacts` is the richer path.
        """
        self._check_status(status)
        version, vdir = self._allocate()
        ModelTrainer(pipeline, detector, vdir).save()
        if reference is not None:
            ArtifactBundle(vdir).save_group("reference", reference.to_arrays())
        return self._commit(version, vdir, status=status, source=source, note=note)

    def register_artifacts(
        self,
        artifact_dir: str | Path,
        *,
        status: str = "registered",
        source: str = "import",
        note: str = "",
        move: bool = False,
    ) -> ModelVersion:
        """Import an existing ModelTrainer artifact directory as a version.

        The bundle is validated (loadable metadata, supported format) and
        copied — or moved, for retraining staging dirs — into the version
        slot wholesale, so extra groups (``reference.npz``) travel along.
        """
        self._check_status(status)
        artifact_dir = Path(artifact_dir)
        load_detector(artifact_dir)  # raises on missing/corrupt/unsupported
        version, vdir = self._allocate()
        if move:
            shutil.move(str(artifact_dir), str(vdir))
        else:
            shutil.copytree(artifact_dir, vdir)
        return self._commit(version, vdir, status=status, source=source, note=note)

    def activate(self, version: str, *, reason: str = "manual") -> ModelVersion:
        """Make *version* the one that scores traffic; retire the previous."""
        record = self.get(version)
        if record.status == "rejected":
            raise ValueError(f"cannot activate rejected version {version}")
        previous = self._state["active"]
        if previous and previous != version:
            self._state["versions"][previous]["status"] = "retired"
        record.status = "active"
        self._state["versions"][version] = record.to_dict()
        self._state["active"] = version
        self._state["history"].append(version)
        self._save_state()
        self._audit("activate", version=version, previous=previous, reason=reason)
        return record

    def rollback(self, *, reason: str = "manual") -> ModelVersion:
        """Re-activate the previously active version."""
        history = self._state["history"]
        previous = next(
            (v for v in reversed(history[:-1]) if v != self._state["active"]), None
        )
        if previous is None:
            raise ValueError("no previous activation to roll back to")
        self._audit("rollback", from_version=self._state["active"], to_version=previous,
                    reason=reason)
        return self.activate(previous, reason=f"rollback: {reason}")

    def reject(self, version: str, *, reason: str = "") -> ModelVersion:
        """Mark a candidate as rejected (it can never be activated)."""
        record = self.get(version)
        if record.status == "active":
            raise ValueError(f"cannot reject the active version {version}")
        record.status = "rejected"
        self._state["versions"][version] = record.to_dict()
        self._save_state()
        self._audit("reject", version=version, reason=reason)
        return record

    def gc(self, *, keep: int = 3) -> list[str]:
        """Delete old non-active version directories beyond the newest *keep*.

        The active version and live candidates are never collected.
        """
        if keep < 0:
            raise ValueError("keep must be >= 0")
        collectable = [
            v for v in sorted(self._state["versions"])
            if self._state["versions"][v]["status"] in ("registered", "retired", "rejected")
            and v != self._state["active"]
        ]
        doomed = collectable[: max(0, len(collectable) - keep)]
        for version in doomed:
            shutil.rmtree(self.root / version, ignore_errors=True)
            del self._state["versions"][version]
            self._state["history"] = [v for v in self._state["history"] if v != version]
        if doomed:
            self._save_state()
            self._audit("gc", removed=doomed, keep=keep)
        return doomed

    # -- read path -----------------------------------------------------------

    @property
    def active_version(self) -> str | None:
        return self._state["active"]

    def get(self, version: str) -> ModelVersion:
        try:
            return ModelVersion.from_dict(self._state["versions"][version])
        except KeyError:
            raise KeyError(
                f"version {version!r} not in registry {self.root} "
                f"(known: {sorted(self._state['versions'])})"
            ) from None

    def list_versions(self) -> list[ModelVersion]:
        return [
            ModelVersion.from_dict(self._state["versions"][v])
            for v in sorted(self._state["versions"])
        ]

    def load(self, version: str | None = None):
        """(fitted pipeline, fitted detector) of *version* (default: active)."""
        version = self._resolve(version)
        return load_detector(self.root / version)

    def load_profile(self, version: str | None = None) -> ReferenceProfile | None:
        """The version's training-time reference profile, if persisted."""
        version = self._resolve(version)
        bundle = ArtifactBundle(self.root / version)
        if not bundle.has_group("reference"):
            return None
        arrays = bundle.load_group("reference")
        if "features" in arrays:  # ModelTrainer's raw (scores, features) form
            names = bundle.load_metadata()["pipeline"]["selected_features"]
            return ReferenceProfile.from_training(
                arrays["scores"], arrays["features"], names
            )
        return ReferenceProfile.from_arrays(arrays)

    def audit_event(self, event: str, **details) -> None:
        """Append an externally observed lifecycle event (drift, shadow)."""
        self._audit(event, **details)

    def audit_log(self, *, limit: int | None = None) -> list[dict]:
        path = self.root / self.AUDIT_FILE
        if not path.exists():
            return []
        entries = [json.loads(line) for line in path.read_text().splitlines() if line]
        return entries[-limit:] if limit else entries

    def status(self) -> dict:
        """JSON-ready registry snapshot (the ``lifecycle status`` payload)."""
        return {
            "root": str(self.root),
            "active": self._state["active"],
            "versions": [v.to_dict() for v in self.list_versions()],
            "history": list(self._state["history"]),
            "audit_tail": self.audit_log(limit=10),
        }

    # -- internals -----------------------------------------------------------

    def _allocate(self) -> tuple[str, Path]:
        version = f"v{self._state['next_id']:04d}"
        vdir = self.root / version
        if vdir.exists():
            raise FileExistsError(f"version slot {vdir} already exists")
        return version, vdir

    def _commit(
        self, version: str, vdir: Path, *, status: str, source: str, note: str
    ) -> ModelVersion:
        meta = ArtifactBundle(vdir).load_metadata()
        record = ModelVersion(
            version=version,
            status=status,
            created_at=time.time(),
            source=source,
            note=note,
            lineage={
                "fingerprint": meta.get("fingerprint"),
                "format_version": meta.get("format_version"),
            },
        )
        self._state["next_id"] += 1
        self._state["versions"][version] = record.to_dict()
        self._save_state()
        self._audit("register", version=version, status=status, source=source,
                    note=note, lineage=record.lineage)
        return record

    @staticmethod
    def _check_status(status: str) -> None:
        if status not in ("registered", "candidate"):
            raise ValueError(
                f"new versions must be 'registered' or 'candidate', got {status!r}"
            )

    def _resolve(self, version: str | None) -> str:
        if version is None:
            version = self._state["active"]
            if version is None:
                raise ValueError(f"registry {self.root} has no active version")
        if version not in self._state["versions"]:
            raise KeyError(
                f"version {version!r} not in registry {self.root} "
                f"(known: {sorted(self._state['versions'])})"
            )
        return version

    def _save_state(self) -> None:
        save_json(self.root / self.STATE_FILE, self._state)

    def _audit(self, event: str, **details) -> None:
        entry = {"ts": time.time(), "event": event, **details}
        with (self.root / self.AUDIT_FILE).open("a") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
