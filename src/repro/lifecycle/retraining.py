"""Automated retraining: drift events + healthy buffer -> candidate version.

When the drift monitor confirms that live telemetry no longer matches the
training distribution, the correct response (absent an incident) is to
treat the new distribution as the new normal: retrain the detector on
recently observed *healthy* windows and stage the result as a shadow
candidate — never swap blindly.  :class:`HealthySampleBuffer` collects the
raw windows (only those that did not alert), and :class:`RetrainingPolicy`
decides when enough evidence and data exist, runs the job through
:class:`~repro.pipeline.modeltrainer.ModelTrainer`, and registers the
result as a ``candidate`` in the :class:`~repro.lifecycle.registry.ModelRegistry`.
"""

from __future__ import annotations

import shutil
import uuid
from collections import deque
from typing import Callable, Sequence

from repro.core.prodigy import ProdigyDetector
from repro.lifecycle.drift import DriftEvent
from repro.lifecycle.registry import ModelRegistry, ModelVersion
from repro.pipeline.datapipeline import DataPipeline
from repro.pipeline.modeltrainer import ModelTrainer
from repro.telemetry.frame import NodeSeries

__all__ = ["HealthySampleBuffer", "RetrainingPolicy", "clone_detector"]


def clone_detector(detector: ProdigyDetector, *, seed: int | None = 0) -> ProdigyDetector:
    """An unfitted detector with the same architecture/schedule as *detector*."""
    return ProdigyDetector(
        hidden_dims=detector.hidden_dims,
        latent_dim=detector.latent_dim,
        beta=detector.beta,
        epochs=detector.epochs,
        batch_size=detector.batch_size,
        learning_rate=detector.learning_rate,
        threshold_percentile=detector.threshold_percentile,
        validation_fraction=detector.validation_fraction,
        patience=detector.patience,
        seed=seed,
    )


class HealthySampleBuffer:
    """Bounded ring buffer of recent non-alerting telemetry windows."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._buffer: deque[NodeSeries] = deque(maxlen=self.capacity)

    def add(self, series: NodeSeries) -> None:
        self._buffer.append(series)

    def series(self) -> list[NodeSeries]:
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


class RetrainingPolicy:
    """Decides when drift triggers a retraining job, and runs it.

    Parameters
    ----------
    registry:
        Target registry for candidate versions.
    min_samples:
        Healthy windows required before a retrain may start.
    cooldown_windows:
        Evaluated drift-windows to wait after a retrain before another may
        trigger (prevents retrain storms while a candidate is in shadow).
    detector_factory:
        ``(active_detector) -> unfitted detector``; defaults to an
        architecture clone of the active one.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        min_samples: int = 32,
        cooldown_windows: int = 4,
        detector_factory: Callable[[ProdigyDetector], ProdigyDetector] | None = None,
    ):
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        self.registry = registry
        self.min_samples = int(min_samples)
        self.cooldown_windows = int(cooldown_windows)
        self.detector_factory = detector_factory or (lambda d: clone_detector(d))
        self._cooldown_until = -1
        self.retrain_count = 0

    def should_retrain(
        self,
        events: Sequence[DriftEvent],
        buffer: HealthySampleBuffer,
        *,
        window_index: int,
    ) -> bool:
        if not events or len(buffer) < self.min_samples:
            return False
        return window_index >= self._cooldown_until

    def retrain(
        self,
        pipeline: DataPipeline,
        active_detector: ProdigyDetector,
        buffer: HealthySampleBuffer,
        *,
        trigger_events: Sequence[DriftEvent] = (),
        window_index: int = 0,
    ) -> ModelVersion:
        """Fit a fresh detector on the buffered windows -> candidate version.

        The fitted pipeline (selection + scaling) is reused unchanged — the
        candidate differs only in detector weights and threshold, which is
        what score-distribution drift invalidates.  Training goes through
        ModelTrainer into a staging directory, so the candidate's artifact
        bundle carries the fingerprint and reference profile of its *own*
        training data; the bundle is then moved into the registry slot.
        """
        if len(buffer) < 2:
            raise ValueError("healthy buffer too small to retrain on")
        samples = pipeline.engine.extract(buffer.series())
        detector = self.detector_factory(active_detector)
        staging = self.registry.root / ".staging" / uuid.uuid4().hex
        try:
            ModelTrainer(pipeline, detector, staging).train(samples)
            note = "; ".join(
                f"{e.source}:{e.statistic}={e.value:.3f}" for e in trigger_events
            )
            version = self.registry.register_artifacts(
                staging,
                status="candidate",
                source="drift_retraining",
                note=note,
                move=True,
            )
        finally:
            shutil.rmtree(staging, ignore_errors=True)
            parent = staging.parent
            if parent.exists() and not any(parent.iterdir()):
                parent.rmdir()
        self._cooldown_until = window_index + self.cooldown_windows
        self.retrain_count += 1
        return version
