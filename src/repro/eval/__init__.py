"""Evaluation: metrics, stratified splits, cross-validation."""

from repro.eval.crossval import CrossValResult, FoldResult, cross_validate
from repro.eval.curves import (
    RocCurve,
    average_precision,
    precision_recall_curve,
    roc_auc,
    roc_curve,
)
from repro.eval.metrics import (
    ClassificationReport,
    accuracy,
    classification_report,
    confusion_matrix,
    f1_score_macro,
    precision_recall_f1,
)
from repro.eval.splits import (
    StratifiedKFold,
    cap_anomaly_ratio,
    paper_split,
    stratified_split_indices,
    train_test_split,
)

__all__ = [
    "ClassificationReport",
    "CrossValResult",
    "FoldResult",
    "StratifiedKFold",
    "RocCurve",
    "accuracy",
    "average_precision",
    "cap_anomaly_ratio",
    "classification_report",
    "confusion_matrix",
    "cross_validate",
    "f1_score_macro",
    "paper_split",
    "precision_recall_curve",
    "precision_recall_f1",
    "roc_auc",
    "roc_curve",
    "stratified_split_indices",
    "train_test_split",
]
