"""Threshold-free detector evaluation: ROC and precision-recall curves.

The paper reports thresholded F1 only, but score-based detectors are more
completely characterised by their full operating curve — these utilities
back the ablation benches (e.g. comparing AE vs VAE scores independently of
any threshold choice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_labels, check_vector

__all__ = ["RocCurve", "roc_curve", "roc_auc", "precision_recall_curve", "average_precision"]


@dataclass(frozen=True)
class RocCurve:
    """Operating points sorted by descending threshold."""

    thresholds: np.ndarray
    fpr: np.ndarray
    tpr: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve by trapezoidal rule."""
        return float(np.trapezoid(self.tpr, self.fpr))


def _sorted_scores(scores: np.ndarray, labels: np.ndarray):
    s = check_vector(scores, name="scores")
    y = check_labels(labels, n_samples=s.shape[0])
    if len(set(np.unique(y))) < 2:
        raise ValueError("ROC needs both classes present")
    order = np.argsort(-s, kind="stable")
    return s[order], y[order]


def roc_curve(scores: np.ndarray, labels: np.ndarray) -> RocCurve:
    """ROC operating points (higher score = more anomalous = positive)."""
    s, y = _sorted_scores(scores, labels)
    tps = np.cumsum(y == 1)
    fps = np.cumsum(y == 0)
    # Keep the last point of each tied-score run.
    distinct = np.append(np.diff(s) != 0, True)
    tps, fps, thr = tps[distinct], fps[distinct], s[distinct]
    tpr = tps / tps[-1]
    fpr = fps / fps[-1]
    return RocCurve(
        thresholds=np.concatenate(([np.inf], thr)),
        fpr=np.concatenate(([0.0], fpr)),
        tpr=np.concatenate(([0.0], tpr)),
    )


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (0.5 = chance, 1.0 = perfect ranking)."""
    return roc_curve(scores, labels).auc


def precision_recall_curve(
    scores: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(precision, recall, thresholds), sorted by descending threshold."""
    s, y = _sorted_scores(scores, labels)
    tps = np.cumsum(y == 1)
    fps = np.cumsum(y == 0)
    distinct = np.append(np.diff(s) != 0, True)
    tps, fps, thr = tps[distinct], fps[distinct], s[distinct]
    precision = tps / (tps + fps)
    recall = tps / tps[-1]
    return precision, recall, thr


def average_precision(scores: np.ndarray, labels: np.ndarray) -> float:
    """Step-wise area under the precision-recall curve (AP)."""
    precision, recall, _ = precision_recall_curve(scores, labels)
    recall = np.concatenate(([0.0], recall))
    return float(np.sum(np.diff(recall) * precision))
