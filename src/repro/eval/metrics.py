"""Classification metrics.

The paper reports the macro-average F1-score — the unweighted mean of the
per-class F1s — because the test sets are heavily imbalanced in opposite
directions (Eclipse ~90 % anomalous, Volta ~10 %).  All metrics here follow
the scikit-learn zero-division=0 convention for degenerate classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_labels

__all__ = [
    "confusion_matrix",
    "accuracy",
    "precision_recall_f1",
    "f1_score_macro",
    "ClassificationReport",
    "classification_report",
]


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 matrix ``C[i, j]`` = samples with true class i predicted as j."""
    yt = check_labels(y_true, name="y_true")
    yp = check_labels(y_pred, name="y_pred", n_samples=yt.shape[0])
    out = np.zeros((2, 2), dtype=np.int64)
    np.add.at(out, (yt, yp), 1)
    return out


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    yt = check_labels(y_true, name="y_true")
    yp = check_labels(y_pred, name="y_pred", n_samples=yt.shape[0])
    return float(np.mean(yt == yp))


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1
) -> tuple[float, float, float]:
    """Precision, recall, F1 for one class (zero when undefined)."""
    cm = confusion_matrix(y_true, y_pred)
    p = 1 if positive == 1 else 0
    tp = cm[p, p]
    fp = cm[1 - p, p]
    fn = cm[p, 1 - p]
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return float(precision), float(recall), float(f1)


def f1_score_macro(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Unweighted mean of healthy-class and anomalous-class F1."""
    _, _, f1_pos = precision_recall_f1(y_true, y_pred, positive=1)
    _, _, f1_neg = precision_recall_f1(y_true, y_pred, positive=0)
    return 0.5 * (f1_pos + f1_neg)


@dataclass(frozen=True)
class ClassificationReport:
    """Bundle of everything the experiment tables print."""

    accuracy: float
    f1_macro: float
    precision_anomalous: float
    recall_anomalous: float
    f1_anomalous: float
    precision_healthy: float
    recall_healthy: float
    f1_healthy: float
    confusion: np.ndarray

    def row(self) -> dict[str, float]:
        """Flat dict for table assembly."""
        return {
            "accuracy": self.accuracy,
            "f1_macro": self.f1_macro,
            "precision_anomalous": self.precision_anomalous,
            "recall_anomalous": self.recall_anomalous,
            "f1_anomalous": self.f1_anomalous,
        }


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> ClassificationReport:
    p1, r1, f1 = precision_recall_f1(y_true, y_pred, positive=1)
    p0, r0, f0 = precision_recall_f1(y_true, y_pred, positive=0)
    return ClassificationReport(
        accuracy=accuracy(y_true, y_pred),
        f1_macro=0.5 * (f1 + f0),
        precision_anomalous=p1,
        recall_anomalous=r1,
        f1_anomalous=f1,
        precision_healthy=p0,
        recall_healthy=r0,
        f1_healthy=f0,
        confusion=confusion_matrix(y_true, y_pred),
    )
