"""Dataset splitting utilities (paper Sec. 5.4.2).

The paper's protocol: split 20 % train / 80 % test while preserving the
healthy/anomalous distribution, then *cap the training anomaly ratio at
10 %* (chosen from the 2-7 % outlier-run rate observed on Eclipse).  Models
that train on healthy data only (Prodigy, USAD) additionally drop the
anomalous training samples and carve an 80/20 train/validation split.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.sampleset import ANOMALOUS, HEALTHY, SampleSet
from repro.util.rng import ensure_rng
from repro.util.validation import check_labels

__all__ = [
    "stratified_split_indices",
    "train_test_split",
    "paper_split",
    "cap_anomaly_ratio",
    "StratifiedKFold",
]


def stratified_split_indices(
    labels: np.ndarray,
    train_fraction: float,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-class random split; returns (train_idx, test_idx)."""
    y = check_labels(labels)
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0,1), got {train_fraction}")
    rng = ensure_rng(seed)
    train_parts, test_parts = [], []
    for cls in np.unique(y):
        idx = np.flatnonzero(y == cls)
        rng.shuffle(idx)
        n_train = int(round(train_fraction * idx.size))
        # Keep at least one sample per class on each side when possible.
        n_train = min(max(n_train, 1), idx.size - 1) if idx.size > 1 else n_train
        train_parts.append(idx[:n_train])
        test_parts.append(idx[n_train:])
    return np.sort(np.concatenate(train_parts)), np.sort(np.concatenate(test_parts))


def train_test_split(
    samples: SampleSet,
    train_fraction: float = 0.2,
    seed: int | np.random.Generator | None = None,
) -> tuple[SampleSet, SampleSet]:
    """The paper's stratified 20-80 split over a labeled SampleSet."""
    train_idx, test_idx = stratified_split_indices(samples.labels, train_fraction, seed)
    return samples.subset(train_idx), samples.subset(test_idx)


def paper_split(
    samples: SampleSet,
    train_fraction: float = 0.2,
    max_train_anomaly_ratio: float = 0.10,
    seed: int | np.random.Generator | None = None,
) -> tuple[SampleSet, SampleSet]:
    """The paper's composition-constrained 20-80 split (Sec. 5.4.2).

    The training side takes ``train_fraction`` of all samples but is
    *composed* to contain at most ``max_train_anomaly_ratio`` anomalous
    samples — the rest of its quota is filled with healthy samples.  On the
    Eclipse collection (~75 % anomalous) this reproduces the paper's
    situation exactly: a healthy-rich training set and a ~90 %-anomalous
    test set.  At least one sample of each class always remains in the test
    side.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0,1), got {train_fraction}")
    if not 0.0 <= max_train_anomaly_ratio < 1.0:
        raise ValueError("max_train_anomaly_ratio must be in [0,1)")
    y = check_labels(samples.labels)
    rng = ensure_rng(seed)
    healthy_idx = np.flatnonzero(y == HEALTHY)
    anom_idx = np.flatnonzero(y == ANOMALOUS)
    if healthy_idx.size < 2 or anom_idx.size < 1:
        raise ValueError("need at least 2 healthy and 1 anomalous samples")

    n_train = int(round(train_fraction * y.size))
    n_train = max(2, min(n_train, y.size - 2))
    n_anom_train = min(int(np.floor(max_train_anomaly_ratio * n_train)), anom_idx.size - 1)
    n_healthy_train = min(n_train - n_anom_train, healthy_idx.size - 1)

    rng.shuffle(healthy_idx)
    rng.shuffle(anom_idx)
    train_idx = np.sort(
        np.concatenate([healthy_idx[:n_healthy_train], anom_idx[:n_anom_train]])
    )
    test_idx = np.sort(
        np.concatenate([healthy_idx[n_healthy_train:], anom_idx[n_anom_train:]])
    )
    return samples.subset(train_idx), samples.subset(test_idx)


def cap_anomaly_ratio(
    samples: SampleSet,
    max_ratio: float = 0.10,
    seed: int | np.random.Generator | None = None,
) -> SampleSet:
    """Discard anomalous samples until their ratio is at most *max_ratio*.

    Matches the paper's 10 % training-contamination cap.  Healthy samples
    are never dropped; if the set is already under the cap it is returned
    unchanged.
    """
    if not 0.0 <= max_ratio < 1.0:
        raise ValueError(f"max_ratio must be in [0,1), got {max_ratio}")
    n_healthy = samples.n_healthy
    n_anom = samples.n_anomalous
    if n_healthy == 0:
        raise ValueError("cannot cap: no healthy samples present")
    max_anom = int(np.floor(max_ratio / (1.0 - max_ratio) * n_healthy))
    if n_anom <= max_anom:
        return samples
    rng = ensure_rng(seed)
    anom_idx = np.flatnonzero(samples.labels == ANOMALOUS)
    keep_anom = rng.choice(anom_idx, size=max_anom, replace=False) if max_anom else np.empty(0, int)
    keep = np.sort(np.concatenate([np.flatnonzero(samples.labels == HEALTHY), keep_anom.astype(int)]))
    return samples.subset(keep)


class StratifiedKFold:
    """K-fold cross-validation preserving class ratios per fold."""

    def __init__(self, n_splits: int = 5, *, seed: int | np.random.Generator | None = None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self._seed = seed

    def split(self, labels: np.ndarray):
        """Yield ``(train_idx, test_idx)`` pairs."""
        y = check_labels(labels)
        rng = ensure_rng(self._seed)
        fold_of = np.empty(y.shape[0], dtype=np.int64)
        for cls in np.unique(y):
            idx = np.flatnonzero(y == cls)
            if idx.size < self.n_splits:
                raise ValueError(
                    f"class {cls} has {idx.size} samples < {self.n_splits} folds"
                )
            rng.shuffle(idx)
            fold_of[idx] = np.arange(idx.size) % self.n_splits
        for k in range(self.n_splits):
            test = np.flatnonzero(fold_of == k)
            train = np.flatnonzero(fold_of != k)
            yield np.sort(train), np.sort(test)
