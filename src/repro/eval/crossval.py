"""Cross-validation harness.

The paper's Fig. 5 reports macro-F1 averaged over 5-fold cross-validation.
:func:`cross_validate` is experiment-shaped rather than model-shaped: the
caller supplies ``run_fold(train, test) -> ClassificationReport`` and this
module only owns fold construction and aggregation, so the same harness
drives Prodigy, the deep baseline, and the traditional baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.eval.metrics import ClassificationReport
from repro.eval.splits import StratifiedKFold
from repro.telemetry.sampleset import SampleSet

__all__ = ["FoldResult", "CrossValResult", "cross_validate"]


@dataclass(frozen=True)
class FoldResult:
    fold: int
    report: ClassificationReport


@dataclass(frozen=True)
class CrossValResult:
    """Aggregated cross-validation outcome."""

    folds: tuple[FoldResult, ...]

    @property
    def f1_macro_mean(self) -> float:
        return float(np.mean([f.report.f1_macro for f in self.folds]))

    @property
    def f1_macro_std(self) -> float:
        return float(np.std([f.report.f1_macro for f in self.folds]))

    @property
    def accuracy_mean(self) -> float:
        return float(np.mean([f.report.accuracy for f in self.folds]))

    def summary(self) -> dict[str, float]:
        return {
            "f1_macro_mean": self.f1_macro_mean,
            "f1_macro_std": self.f1_macro_std,
            "accuracy_mean": self.accuracy_mean,
            "n_folds": float(len(self.folds)),
        }


def cross_validate(
    run_fold: Callable[[SampleSet, SampleSet], ClassificationReport],
    samples: SampleSet,
    *,
    n_splits: int = 5,
    seed: int | np.random.Generator | None = None,
) -> CrossValResult:
    """Stratified k-fold evaluation of an experiment callable."""
    kfold = StratifiedKFold(n_splits=n_splits, seed=seed)
    folds = []
    for k, (train_idx, test_idx) in enumerate(kfold.split(samples.labels)):
        report = run_fold(samples.subset(train_idx), samples.subset(test_idx))
        folds.append(FoldResult(fold=k, report=report))
    return CrossValResult(folds=tuple(folds))
