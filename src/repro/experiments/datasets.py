"""Dataset builders for the paper's experimental campaigns (Sec. 5.2/5.4).

A *campaign* runs applications with and without HPAS-style anomalies and
yields one labeled sample per (job, node).  Builders bypass the DSOS store
for memory efficiency (raw telemetry of thousands of runs would not fit;
per-job generate-preprocess-discard keeps the peak at one job) but apply
the same collection-fault model and preprocessing chain as the deployed
pipeline, so samples are statistically identical to the store path.

Scaled-down sizes: the paper collects 24,566 (Eclipse) / 20,915 (Volta)
samples; the default presets generate ~1/10th with the same **class ratios**
(Eclipse test ~90 % anomalous, Volta ~11 %), node counts, and anomaly
configurations (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.anomalies.base import AnomalyInjector
from repro.anomalies.suite import TABLE2_INJECTORS
from repro.features.extraction import FeatureExtractor
from repro.runtime.parallel import ParallelExtractor
from repro.monitoring.faults import FaultModel
from repro.telemetry.frame import NodeSeries
from repro.telemetry.preprocessing import standard_preprocess
from repro.telemetry.sampleset import SampleSet
from repro.util.rng import derive_seed, ensure_rng
from repro.workloads.base import ApplicationSignature
from repro.workloads.catalog import ECLIPSE_APPS, VOLTA_APPS
from repro.workloads.cluster import Cluster, ECLIPSE, JobRunner, JobSpec, VOLTA
from repro.workloads.metrics import default_catalog

__all__ = [
    "LabeledRun",
    "CampaignSpec",
    "run_campaign",
    "extract_dataset",
    "eclipse_campaign",
    "volta_campaign",
    "build_eclipse_dataset",
    "build_volta_dataset",
]


@dataclass(frozen=True)
class LabeledRun:
    """One node's preprocessed run with ground truth."""

    series: NodeSeries
    label: int
    app: str
    anomaly: str


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a data-collection campaign."""

    name: str
    cluster: Cluster
    apps: Mapping[str, ApplicationSignature]
    #: factories so every anomalous job gets a fresh injector instance
    injector_factories: Sequence[Callable[[], AnomalyInjector]]
    healthy_jobs_per_app: int
    anomalous_jobs_per_app_config: int
    nodes_per_job: int = 4
    duration_s: int = 420
    trim_seconds: float = 30.0
    #: fraction of an anomalous job's nodes that get the injector
    anomalous_node_fraction: float = 1.0
    faults: FaultModel = field(default_factory=FaultModel)

    def n_expected_samples(self) -> tuple[int, int]:
        """(healthy, anomalous) sample counts the spec will produce."""
        n_apps = len(self.apps)
        n_anom_jobs = n_apps * len(self.injector_factories) * self.anomalous_jobs_per_app_config
        anom_nodes = max(1, int(round(self.anomalous_node_fraction * self.nodes_per_job)))
        healthy = (
            n_apps * self.healthy_jobs_per_app * self.nodes_per_job
            + n_anom_jobs * (self.nodes_per_job - anom_nodes)
        )
        return healthy, n_anom_jobs * anom_nodes


def run_campaign(spec: CampaignSpec, *, seed: int | np.random.Generator | None = None) -> list[LabeledRun]:
    """Execute a campaign: generate, fault-inject, preprocess, label."""
    rng = ensure_rng(seed)
    catalog = default_catalog()
    runner = JobRunner(spec.cluster, catalog=catalog, seed=derive_seed(rng))
    fault_rng = ensure_rng(derive_seed(rng))
    runs: list[LabeledRun] = []
    job_id = 0
    anom_nodes = max(1, int(round(spec.anomalous_node_fraction * spec.nodes_per_job)))

    def execute(app_name: str, injector: AnomalyInjector | None, duration: int) -> None:
        nonlocal job_id
        job_id += 1
        anomalies = {} if injector is None else {i: injector for i in range(anom_nodes)}
        result = runner.run(
            JobSpec(
                job_id=job_id,
                app=spec.apps[app_name],
                n_nodes=spec.nodes_per_job,
                duration_s=duration,
                anomalies=anomalies,
            )
        )
        for comp in result.component_ids:
            raw = result.frame.node_series(job_id, comp)
            degraded = spec.faults.apply(raw, derive_seed(fault_rng))
            clean = standard_preprocess(degraded, catalog.counter_names, trim_seconds=spec.trim_seconds)
            anomaly = result.node_anomalies[comp]
            runs.append(
                LabeledRun(
                    series=clean,
                    label=result.node_label(comp),
                    app=app_name,
                    anomaly=anomaly,
                )
            )

    for app_name in spec.apps:
        for _ in range(spec.healthy_jobs_per_app):
            execute(app_name, None, spec.duration_s)
        for factory in spec.injector_factories:
            for _ in range(spec.anomalous_jobs_per_app_config):
                execute(app_name, factory(), spec.duration_s)
    return runs


def extract_dataset(
    runs: Sequence[LabeledRun],
    extractor: FeatureExtractor | None = None,
    *,
    engine: ParallelExtractor | None = None,
) -> SampleSet:
    """Feature-extract a campaign into a labeled SampleSet.

    Extraction routes through the runtime layer: pass an *engine* to share
    a worker pool / feature cache across campaigns (re-runs over shared
    datasets hit the cache), otherwise one is built from the process-wide
    :class:`~repro.runtime.config.ExecutionConfig`.
    """
    if engine is None:
        engine = ParallelExtractor(extractor)
    return engine.extract(
        [r.series for r in runs],
        [r.label for r in runs],
        app_names=[r.app for r in runs],
        anomaly_names=[r.anomaly for r in runs],
    )


def _scaled(count: int, scale: float) -> int:
    return max(1, int(round(count * scale)))


def eclipse_campaign(scale: float = 1.0) -> CampaignSpec:
    """The Eclipse controlled experiment (6 apps, Table 2 anomalies).

    At scale 1.0: 6 apps x 10 healthy jobs x 4 nodes = 240 healthy samples
    and 6 x 10 configs x 3 jobs x 4 nodes = 720 anomalous — 75 % anomalous
    overall, matching the paper's collection ratio (6,325 healthy of
    24,566); the composition-constrained 20-80 split then yields the
    paper's ~90 %-anomalous test set.
    """
    return CampaignSpec(
        name="eclipse",
        cluster=ECLIPSE,
        apps=ECLIPSE_APPS,
        injector_factories=_table2_factories(),
        healthy_jobs_per_app=_scaled(10, scale),
        anomalous_jobs_per_app_config=_scaled(3, scale),
        nodes_per_job=4,
        duration_s=420,
        anomalous_node_fraction=1.0,
    )


def volta_campaign(scale: float = 1.0) -> CampaignSpec:
    """The Volta testbed experiment (11 apps, ~11 % anomalous samples).

    At scale 1.0: 11 apps x 12 healthy jobs x 4 nodes plus 110 anomalous
    jobs with one injected node each — 858 healthy / 110 anomalous
    (~11 % anomalous), matching the paper's Volta collection (18,980
    healthy of 20,915).
    """
    return CampaignSpec(
        name="volta",
        cluster=VOLTA,
        apps=VOLTA_APPS,
        injector_factories=_table2_factories(),
        healthy_jobs_per_app=_scaled(12, scale),
        anomalous_jobs_per_app_config=_scaled(1, scale),
        nodes_per_job=4,
        duration_s=420,
        anomalous_node_fraction=0.25,
    )


def _table2_factories() -> list[Callable[[], AnomalyInjector]]:
    """One factory per Table 2 configuration."""
    prototypes = TABLE2_INJECTORS()

    def make_factory(proto: AnomalyInjector) -> Callable[[], AnomalyInjector]:
        cls = type(proto)
        kwargs = _injector_kwargs(proto)
        return lambda: cls(**kwargs)

    return [make_factory(p) for p in prototypes]


def _injector_kwargs(inj: AnomalyInjector) -> dict:
    """Constructor kwargs to clone a Table 2 injector."""
    from repro.anomalies.suite import CacheCopy, CpuOccupy, MemBandwidth, MemLeak

    if isinstance(inj, MemLeak):
        return {"size_mb": inj.size_mb, "period_s": inj.period_s}
    if isinstance(inj, MemBandwidth):
        return {"stride": inj.stride}
    if isinstance(inj, CpuOccupy):
        return {"utilization": inj.utilization}
    if isinstance(inj, CacheCopy):
        return {"level": inj.level, "multiplier": inj.multiplier}
    raise TypeError(f"unknown injector type {type(inj).__name__}")


def build_eclipse_dataset(
    scale: float = 1.0,
    *,
    seed: int | np.random.Generator | None = 0,
    extractor: FeatureExtractor | None = None,
) -> SampleSet:
    """End-to-end Eclipse dataset (campaign + extraction)."""
    return extract_dataset(run_campaign(eclipse_campaign(scale), seed=seed), extractor)


def build_volta_dataset(
    scale: float = 1.0,
    *,
    seed: int | np.random.Generator | None = 0,
    extractor: FeatureExtractor | None = None,
) -> SampleSet:
    """End-to-end Volta dataset (campaign + extraction)."""
    return extract_dataset(run_campaign(volta_campaign(scale), seed=seed), extractor)
