"""Figure 6: F1 vs number of healthy training samples (Eclipse, memleak).

Paper protocol (Sec. 6.2): LAMMPS, sw4, sw4lite, ExaMiniMD run 5x healthy
and 5x with memleak on 4 nodes (160 samples: 80 healthy / 80 anomalous).
For each healthy-budget in {4, 8, 16, 32, 48, 64}, train Prodigy on that
many healthy samples (selection repeated 10x) and test on all anomalous
plus the remaining healthy samples.  Paper curve: 0.58 F1 at 4 samples,
~0.9 at 16, 0.96 near 60.

The Chi-square selection stage is fitted once on the full collection (the
paper reuses the controlled-experiment feature set when deploying with
little data) and held fixed across repetitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomalies.suite import MemLeak
from repro.core.prodigy import ProdigyDetector
from repro.eval.metrics import f1_score_macro
from repro.experiments.datasets import CampaignSpec, extract_dataset, run_campaign
from repro.experiments.protocol import ProtocolConfig
from repro.features.scaling import make_scaler
from repro.features.selection import ChiSquareSelector
from repro.serving.dashboard import render_table
from repro.telemetry.sampleset import SampleSet
from repro.util.rng import derive_seed, ensure_rng
from repro.workloads.catalog import ECLIPSE_APPS
from repro.workloads.cluster import ECLIPSE

__all__ = ["Fig6Point", "limited_data_campaign", "run_fig6", "render_fig6"]

#: the four applications of the production experiment
FIG6_APPS = ("lammps", "sw4", "sw4lite", "examinimd")

#: paper's reported curve for comparison
PAPER_CURVE = {4: 0.58, 16: 0.90, 64: 0.96}


@dataclass(frozen=True)
class Fig6Point:
    n_healthy: int
    f1_mean: float
    f1_std: float
    paper_f1: float | None


def limited_data_campaign(*, jobs_per_app: int = 5) -> CampaignSpec:
    """5 healthy + 5 memleak jobs per app on 4 nodes (the paper's 160 samples)."""
    return CampaignSpec(
        name="limited_data",
        cluster=ECLIPSE,
        apps={name: ECLIPSE_APPS[name] for name in FIG6_APPS},
        injector_factories=[lambda: MemLeak(10.0, 1.0)],
        healthy_jobs_per_app=jobs_per_app,
        anomalous_jobs_per_app_config=jobs_per_app,
        nodes_per_job=4,
        duration_s=420,
        anomalous_node_fraction=1.0,
    )


def run_fig6(
    *,
    budgets: tuple[int, ...] = (4, 8, 16, 32, 48, 64),
    repetitions: int = 10,
    config: ProtocolConfig | None = None,
    seed: int = 0,
    samples: SampleSet | None = None,
) -> list[Fig6Point]:
    """Sweep the healthy-training-budget curve."""
    config = config if config is not None else ProtocolConfig()
    rng = ensure_rng(seed)
    if samples is None:
        samples = extract_dataset(run_campaign(limited_data_campaign(), seed=derive_seed(rng)))

    # Feature selection fitted once on the full labeled collection.
    selector = ChiSquareSelector(k=config.n_features).fit(samples)
    selected = selector.transform(samples)
    healthy_idx = np.flatnonzero(selected.labels == 0)
    test_anom_idx = np.flatnonzero(selected.labels == 1)

    points: list[Fig6Point] = []
    for n_healthy in budgets:
        if n_healthy >= healthy_idx.size:
            raise ValueError(
                f"budget {n_healthy} needs more healthy samples than the "
                f"dataset's {healthy_idx.size} (leave some for testing)"
            )
        f1s = []
        for _ in range(repetitions):
            rep_rng = ensure_rng(derive_seed(rng))
            chosen = rep_rng.choice(healthy_idx, size=n_healthy, replace=False)
            rest = np.setdiff1d(healthy_idx, chosen)
            test_idx = np.sort(np.concatenate([rest, test_anom_idx]))

            scaler = make_scaler(config.scaler_kind).fit(selected.features[chosen])
            x_train = scaler.transform(selected.features[chosen])
            x_test = scaler.transform(selected.features[test_idx])
            y_test = selected.labels[test_idx]

            detector = ProdigyDetector(
                hidden_dims=config.prodigy_hidden,
                latent_dim=config.prodigy_latent,
                epochs=config.prodigy_epochs,
                batch_size=min(64, max(2, n_healthy)),
                threshold_percentile=99.0,
                validation_fraction=0.0 if n_healthy < 10 else 0.2,
                seed=derive_seed(rep_rng),
            )
            detector.fit(x_train)
            f1s.append(f1_score_macro(y_test, detector.predict(x_test)))
        points.append(
            Fig6Point(
                n_healthy=n_healthy,
                f1_mean=float(np.mean(f1s)),
                f1_std=float(np.std(f1s)),
                paper_f1=PAPER_CURVE.get(n_healthy),
            )
        )
    return points


def render_fig6(points: list[Fig6Point]) -> str:
    return render_table(
        ["healthy samples", "macro-F1 (mean)", "std", "paper"],
        [
            [p.n_healthy, p.f1_mean, p.f1_std, "-" if p.paper_f1 is None else f"{p.paper_f1:.2f}"]
            for p in points
        ],
    )
