"""Experiment builders and runners for every paper table and figure."""

from repro.experiments.datasets import (
    CampaignSpec,
    LabeledRun,
    build_eclipse_dataset,
    build_volta_dataset,
    eclipse_campaign,
    extract_dataset,
    run_campaign,
    volta_campaign,
)
from repro.experiments.empire import EmpireResult, run_empire_experiment
from repro.experiments.fig5 import Fig5Row, render_fig5, run_fig5
from repro.experiments.fig6 import Fig6Point, limited_data_campaign, render_fig6, run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.gridsearch import (
    PRODIGY_GRID,
    USAD_GRID,
    GridResult,
    render_grid,
    run_gridsearch,
)
from repro.experiments.protocol import (
    MODEL_NAMES,
    ProtocolConfig,
    evaluate_model,
    fold_runner,
    prepare_features,
)
from repro.experiments.timing import TimingResult, measure_inference_time

__all__ = [
    "CampaignSpec",
    "EmpireResult",
    "Fig5Row",
    "Fig6Point",
    "Fig7Result",
    "GridResult",
    "LabeledRun",
    "MODEL_NAMES",
    "PRODIGY_GRID",
    "ProtocolConfig",
    "TimingResult",
    "USAD_GRID",
    "build_eclipse_dataset",
    "build_volta_dataset",
    "eclipse_campaign",
    "evaluate_model",
    "extract_dataset",
    "fold_runner",
    "limited_data_campaign",
    "measure_inference_time",
    "prepare_features",
    "render_fig5",
    "render_fig6",
    "render_grid",
    "run_campaign",
    "run_empire_experiment",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_gridsearch",
    "volta_campaign",
]
