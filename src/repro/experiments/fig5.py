"""Figure 5: Prodigy vs baselines on Eclipse and Volta (5-fold CV macro-F1).

Paper reference values (macro-F1): Prodigy 0.95 / 0.88, USAD 0.68 / 0.84,
IF 0.31 / 0.86, LOF 0.15 (Eclipse), Random 0.39 (Volta), Majority ~0.47
(Volta).  Expected reproduction shape: Prodigy ahead on both systems; IF
collapsing on Eclipse (90 % anomalous test vs its 10 % contamination
assumption) but strong on Volta; heuristics at chance level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.splits import paper_split
from repro.experiments.datasets import build_eclipse_dataset, build_volta_dataset
from repro.experiments.protocol import (
    MODEL_NAMES,
    ProtocolConfig,
    carve_selection_set,
    evaluate_model,
)
from repro.serving.dashboard import render_table
from repro.telemetry.sampleset import SampleSet
from repro.util.rng import derive_seed, ensure_rng

__all__ = ["Fig5Row", "run_fig5", "render_fig5"]

#: macro-F1 from the paper's Figure 5 for comparison columns
PAPER_F1 = {
    ("prodigy", "eclipse"): 0.95,
    ("prodigy", "volta"): 0.88,
    ("usad", "eclipse"): 0.68,
    ("usad", "volta"): 0.84,
    ("isolation_forest", "eclipse"): 0.31,
    ("isolation_forest", "volta"): 0.86,
    ("lof", "eclipse"): 0.15,
    ("random", "volta"): 0.39,
    ("majority", "volta"): 0.47,
}


@dataclass(frozen=True)
class Fig5Row:
    model: str
    dataset: str
    f1_mean: float
    f1_std: float
    paper_f1: float | None


def run_fig5(
    *,
    scale: float = 0.6,
    n_splits: int = 5,
    models: tuple[str, ...] = MODEL_NAMES,
    config: ProtocolConfig | None = None,
    seed: int = 0,
    datasets: dict[str, SampleSet] | None = None,
) -> list[Fig5Row]:
    """Run the full comparison; returns one row per (model, dataset).

    The paper's "5-fold cross-validation" is realised as ``n_splits``
    repetitions of the composition-constrained 20-80 split (stratified
    folds cannot reproduce the healthy-rich-train / 90 %-anomalous-test
    geometry the paper reports; see :func:`repro.eval.paper_split`).
    """
    rng = ensure_rng(seed)
    if datasets is None:
        datasets = {
            "eclipse": build_eclipse_dataset(scale, seed=derive_seed(rng)),
            "volta": build_volta_dataset(scale, seed=derive_seed(rng)),
        }
    rows: list[Fig5Row] = []
    for ds_name, samples in datasets.items():
        # The paper's dedicated feature-selection set: 24 anomalous samples
        # on Eclipse, 55 on Volta (Sec. 5.4.3), disjoint from train/test.
        n_sel_anom = 55 if ds_name == "volta" else 24
        selection_set, rest = carve_selection_set(
            samples, n_anomalous=n_sel_anom, n_healthy=n_sel_anom, seed=derive_seed(rng)
        )
        split_seeds = [derive_seed(rng) for _ in range(n_splits)]
        for model in models:
            f1s = []
            for split_seed in split_seeds:
                train, test = paper_split(rest, 0.2, seed=split_seed)
                report = evaluate_model(
                    model,
                    train,
                    test,
                    config=config,
                    seed=derive_seed(rng),
                    selection_set=selection_set,
                )
                f1s.append(report.f1_macro)
            rows.append(
                Fig5Row(
                    model=model,
                    dataset=ds_name,
                    f1_mean=float(np.mean(f1s)),
                    f1_std=float(np.std(f1s)),
                    paper_f1=PAPER_F1.get((model, ds_name)),
                )
            )
    return rows


def render_fig5(rows: list[Fig5Row]) -> str:
    return render_table(
        ["model", "dataset", "macro-F1 (mean)", "std", "paper"],
        [
            [
                r.model,
                r.dataset,
                r.f1_mean,
                r.f1_std,
                "-" if r.paper_f1 is None else f"{r.paper_f1:.2f}",
            ]
            for r in rows
        ],
    )
