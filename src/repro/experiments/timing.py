"""Inference-time measurement (Sec. 6.2, last paragraph).

The paper reports average end-to-end prediction latency over the test
sets: 18,947 Eclipse samples in 3.28 s and 14,589 Volta samples in 2.5 s,
averaged over ten runs.  This harness measures the same quantity — batch
anomaly-scoring plus thresholding over pre-extracted features — and
normalises to per-sample microseconds so numbers are comparable across
sample counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.prodigy import ProdigyDetector
from repro.util.rng import ensure_rng

__all__ = ["TimingResult", "measure_inference_time"]


@dataclass(frozen=True)
class TimingResult:
    n_samples: int
    n_features: int
    mean_seconds: float
    std_seconds: float
    per_sample_us: float

    #: paper reference points (samples, seconds)
    PAPER_ECLIPSE = (18947, 3.28)
    PAPER_VOLTA = (14589, 2.5)


def measure_inference_time(
    detector: ProdigyDetector | None = None,
    *,
    n_samples: int = 18947,
    n_features: int = 256,
    repeats: int = 10,
    seed: int = 0,
) -> TimingResult:
    """Time batched prediction over a synthetic test matrix.

    With no fitted detector supplied, a small one is trained on random
    healthy-like data first (training time is excluded, as in the paper).
    """
    rng = ensure_rng(seed)
    if detector is None:
        x_train = rng.random((256, n_features)) * 0.3 + 0.35
        detector = ProdigyDetector(
            hidden_dims=(128, 64), latent_dim=16, epochs=30, seed=1
        ).fit(x_train)
    x_test = rng.random((n_samples, detector.vae_.input_dim))
    durations = []
    detector.predict(x_test)  # warm-up (allocator, caches)
    for _ in range(repeats):
        t0 = time.perf_counter()
        detector.predict(x_test)
        durations.append(time.perf_counter() - t0)
    mean_s = float(np.mean(durations))
    return TimingResult(
        n_samples=n_samples,
        n_features=detector.vae_.input_dim,
        mean_seconds=mean_s,
        std_seconds=float(np.std(durations)),
        per_sample_us=mean_s / n_samples * 1e6,
    )
