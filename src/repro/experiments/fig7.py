"""Figure 7: CoMTE explanations for a memleak job.

The paper trains Prodigy, predicts the nodes of a memleak-injected Empire
job, and asks CoMTE why the anomalous nodes were flagged — the top metrics
returned are ``MemFree::meminfo`` and ``pgrotated::vmstat``, i.e. memory
metrics consistent with a leak.  This experiment reproduces the full chain:
deployment pipeline, per-node predictions, counterfactual search, and the
identity of the explanation metrics (expected: dominated by memory/
reclaim metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomalies.suite import MemLeak
from repro.core.prodigy import ProdigyDetector
from repro.experiments.datasets import CampaignSpec, extract_dataset, run_campaign
from repro.experiments.protocol import ProtocolConfig
from repro.explain.comte import BruteForceSearch, OptimizedSearch
from repro.explain.evaluators import FeatureSpaceEvaluator
from repro.explain.explanation import Counterfactual
from repro.pipeline.datapipeline import DataPipeline
from repro.features.extraction import FeatureExtractor
from repro.telemetry.frame import NodeSeries
from repro.util.rng import derive_seed, ensure_rng
from repro.workloads.catalog import ECLIPSE_APPS
from repro.workloads.cluster import ECLIPSE

__all__ = ["Fig7Result", "run_fig7", "MEMORY_METRIC_HINTS"]

#: metric-name fragments that indicate a memory-related explanation
MEMORY_METRIC_HINTS = (
    "MemFree",
    "MemAvailable",
    "AnonPages",
    "Active",
    "Committed_AS",
    "nr_free_pages",
    "nr_anon_pages",
    "nr_active_anon",
    "nr_inactive_anon",
    "pgrotated",
    "pswp",
    "pgsteal",
    "pgscan",
    "pgfault",
    "pgalloc",
    "pgfree",
    "Mapped",
    "PageTables",
    "pgrefill",
    "slabs_scanned",
    "numa",
    "thp_fault_alloc",
    "pgactivate",
    "pgdeactivate",
    "Bounce",
    "Slab",
    "Shmem",
    "nr_mapped",
    "nr_page_table",
    "Committed",
    "kswapd",
    "pginodesteal",
    "allocstall",
    "pageoutrun",
)


@dataclass(frozen=True)
class Fig7Result:
    """Explanations for the anomalous nodes of the chosen job."""

    explanations: tuple[Counterfactual, ...]
    predictions: dict[int, int]  # component_id -> prediction
    labels: dict[int, int]  # component_id -> ground truth

    @property
    def explanation_metrics(self) -> tuple[str, ...]:
        out: list[str] = []
        for e in self.explanations:
            out.extend(e.metrics)
        return tuple(dict.fromkeys(out))

    def memory_metric_fraction(self) -> float:
        """Fraction of explanation metrics that are memory-related."""
        metrics = self.explanation_metrics
        if not metrics:
            return 0.0
        hits = sum(any(h in m for h in MEMORY_METRIC_HINTS) for m in metrics)
        return hits / len(metrics)


def _fig7_campaign(jobs_per_app: int) -> CampaignSpec:
    return CampaignSpec(
        name="fig7",
        cluster=ECLIPSE,
        apps={"lammps": ECLIPSE_APPS["lammps"], "sw4": ECLIPSE_APPS["sw4"]},
        injector_factories=[lambda: MemLeak(10.0, 1.0)],
        healthy_jobs_per_app=jobs_per_app,
        anomalous_jobs_per_app_config=2,
        nodes_per_job=4,
        duration_s=420,
        # one anomalous node per job, like the paper's Figure 7 job view
        anomalous_node_fraction=0.25,
    )


def run_fig7(
    *,
    jobs_per_app: int = 6,
    search: str = "optimized",
    config: ProtocolConfig | None = None,
    seed: int = 0,
    max_explanations: int = 2,
) -> Fig7Result:
    """Train a deployment and explain the anomalous nodes of a memleak job."""
    config = config if config is not None else ProtocolConfig()
    rng = ensure_rng(seed)
    runs = run_campaign(_fig7_campaign(jobs_per_app), seed=derive_seed(rng))
    samples = extract_dataset(runs)

    pipeline = DataPipeline(FeatureExtractor(), n_features=config.n_features)
    pipeline.fit(samples)
    transformed = pipeline.transform_samples(samples)
    detector = ProdigyDetector(
        hidden_dims=config.prodigy_hidden,
        latent_dim=config.prodigy_latent,
        epochs=config.prodigy_epochs,
        seed=derive_seed(rng),
    )
    detector.fit(transformed.features, transformed.labels)

    evaluator = FeatureSpaceEvaluator(pipeline, detector)
    healthy_refs = [r.series for r in runs if r.label == 0][:20]
    anomalous_runs = [r for r in runs if r.label == 1]
    if not anomalous_runs:
        raise RuntimeError("campaign produced no anomalous runs")

    search_cls = {"optimized": OptimizedSearch, "brute_force": BruteForceSearch}[search]
    searcher = search_cls(evaluator, healthy_refs, max_metrics=5)

    explanations = []
    predictions: dict[int, int] = {}
    labels: dict[int, int] = {}
    for run in anomalous_runs[:max_explanations]:
        x = pipeline.transform_single(run.series)
        pred = int(detector.predict(x)[0])
        predictions[run.series.component_id] = pred
        labels[run.series.component_id] = run.label
        if pred == 1:
            explanations.append(searcher.explain(run.series))
    return Fig7Result(
        explanations=tuple(explanations), predictions=predictions, labels=labels
    )
