"""Production experiment 2 (Sec. 6.2): anomalies "in the wild".

An Empire (plasma physics) user reported runs occasionally degrading: 7
jobs completed in ~60 min (healthy), 2 took 10-30 % longer (anomalous) due
to backend Lustre I/O issues.  The paper trains Prodigy on the 28 healthy
node-samples and detects 7 of the 8 anomalous node-samples (88 % accuracy).

Reproduced here with the Empire signature and the :class:`IoDelay`
injector (which also stretches the run duration by the reported 10-30 %).
Training is fully unsupervised: no anomalous samples exist at fit time, so
Chi-square selection is impossible and the detector keeps the *full*
extracted feature set (the paper reuses its production feature list here;
keeping everything is the label-free equivalent).  Near-constant healthy
features matter in this regime — they are trivially reconstructed during
training, so any anomaly-induced shift in them produces a large error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anomalies.suite import IoDelay
from repro.core.prodigy import ProdigyDetector
from repro.experiments.protocol import ProtocolConfig
from repro.features.extraction import FeatureExtractor
from repro.runtime.parallel import ParallelExtractor
from repro.features.scaling import make_scaler
from repro.telemetry.preprocessing import standard_preprocess
from repro.util.rng import derive_seed, ensure_rng
from repro.workloads.catalog import EMPIRE
from repro.workloads.cluster import ECLIPSE, JobRunner, JobSpec
from repro.workloads.metrics import default_catalog

__all__ = ["EmpireResult", "run_empire_experiment"]


@dataclass(frozen=True)
class EmpireResult:
    """Outcome of the in-the-wild experiment."""

    n_train_samples: int
    n_test_samples: int
    n_detected: int
    accuracy: float
    scores: np.ndarray
    threshold: float

    #: paper's outcome for comparison: 7 of 8 detected, 88 % accuracy
    PAPER_DETECTED = 7
    PAPER_TOTAL = 8


def run_empire_experiment(
    *,
    n_healthy_jobs: int = 7,
    n_anomalous_jobs: int = 2,
    nodes_per_job: int = 4,
    duration_s: int = 420,
    severity: float = 0.6,
    config: ProtocolConfig | None = None,
    seed: int = 0,
) -> EmpireResult:
    """Train on healthy Empire jobs, test on I/O-degraded ones."""
    config = config if config is not None else ProtocolConfig()
    rng = ensure_rng(seed)
    catalog = default_catalog()
    runner = JobRunner(ECLIPSE, catalog=catalog, seed=derive_seed(rng))
    stretch_rng = ensure_rng(derive_seed(rng))

    train_series, test_series = [], []
    job_id = 0
    for _ in range(n_healthy_jobs):
        job_id += 1
        result = runner.run(
            JobSpec(job_id=job_id, app=EMPIRE, n_nodes=nodes_per_job, duration_s=duration_s)
        )
        for comp in result.component_ids:
            train_series.append(
                standard_preprocess(
                    result.frame.node_series(job_id, comp), catalog.counter_names, trim_seconds=30.0
                )
            )
    for _ in range(n_anomalous_jobs):
        job_id += 1
        # Degraded jobs run 10-30 % longer (the paper's observation).
        stretched = int(duration_s * stretch_rng.uniform(1.1, 1.3))
        injector = IoDelay(severity=severity)
        result = runner.run(
            JobSpec(
                job_id=job_id,
                app=EMPIRE,
                n_nodes=nodes_per_job,
                duration_s=stretched,
                anomalies={i: injector for i in range(nodes_per_job)},
            )
        )
        for comp in result.component_ids:
            test_series.append(
                standard_preprocess(
                    result.frame.node_series(job_id, comp), catalog.counter_names, trim_seconds=30.0
                )
            )

    engine = ParallelExtractor(FeatureExtractor())
    x_train_full, _ = engine.extract_matrix(train_series)
    x_test_full, _ = engine.extract_matrix(test_series)

    # No labels at deployment -> no Chi-square stage; keep all features.
    scaler = make_scaler(config.scaler_kind).fit(x_train_full)
    x_train = scaler.transform(x_train_full)
    x_test = scaler.transform(x_test_full)

    detector = ProdigyDetector(
        hidden_dims=config.prodigy_hidden,
        latent_dim=config.prodigy_latent,
        epochs=max(config.prodigy_epochs, 300),
        batch_size=32,
        learning_rate=1e-3,
        threshold_percentile=99.0,
        seed=derive_seed(rng),
    )
    detector.fit(x_train)
    preds = detector.predict(x_test)
    n_detected = int(preds.sum())
    return EmpireResult(
        n_train_samples=x_train.shape[0],
        n_test_samples=x_test.shape[0],
        n_detected=n_detected,
        accuracy=n_detected / x_test.shape[0],
        scores=detector.anomaly_score(x_test),
        threshold=float(detector.threshold_),
    )
