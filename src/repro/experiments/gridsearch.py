"""Table 3: hyperparameter grid search for Prodigy and USAD.

The paper grid-searches learning rate / batch size / epochs for Prodigy and
batch size / epochs / hidden size / alpha-beta for USAD, starring the best
combination.  This harness reruns the search on a (scaled) dataset and
reports macro-F1 per combination, so the starred neighbourhood can be
compared against the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any, Mapping, Sequence

from repro.core.prodigy import ProdigyDetector
from repro.eval.metrics import f1_score_macro
from repro.experiments.protocol import ProtocolConfig, prepare_features
from repro.eval.splits import train_test_split
from repro.models.usad import USAD
from repro.serving.dashboard import render_table
from repro.telemetry.sampleset import SampleSet
from repro.util.rng import derive_seed, ensure_rng

__all__ = [
    "GridResult",
    "PRODIGY_GRID",
    "USAD_GRID",
    "PAPER_OPTIMAL",
    "run_gridsearch",
    "render_grid",
]

#: Table 3 search spaces (epoch values scaled ~10x down with the datasets)
PRODIGY_GRID: dict[str, Sequence[Any]] = {
    "learning_rate": (1e-5, 1e-4, 1e-3, 1e-2),
    "batch_size": (32, 64, 128, 256),
    "epochs": (40, 80, 120, 240),
}
USAD_GRID: dict[str, Sequence[Any]] = {
    "batch_size": (32, 64, 128, 256),
    "epochs": (15, 30, 60),
    "hidden_size": (100, 200, 400),
    "alpha_beta": ((0.1, 0.9), (0.5, 0.5), (1.0, 1.0)),
}

#: the paper's starred values (epochs noted at paper scale)
PAPER_OPTIMAL = {
    "prodigy": {"learning_rate": 1e-4, "batch_size": 256, "epochs": 2400},
    "usad": {"batch_size": 256, "epochs": 100, "hidden_size": 200, "alpha_beta": (0.5, 0.5)},
}


@dataclass(frozen=True)
class GridResult:
    model: str
    params: Mapping[str, Any]
    f1_macro: float


def _combinations(grid: Mapping[str, Sequence[Any]]):
    keys = list(grid)
    for values in product(*(grid[k] for k in keys)):
        yield dict(zip(keys, values))


def run_gridsearch(
    model: str,
    samples: SampleSet,
    *,
    grid: Mapping[str, Sequence[Any]] | None = None,
    config: ProtocolConfig | None = None,
    seed: int = 0,
) -> list[GridResult]:
    """Evaluate every grid combination on one stratified 20-80 split."""
    if model not in ("prodigy", "usad"):
        raise KeyError(f"grid search supports prodigy|usad, got {model!r}")
    config = config if config is not None else ProtocolConfig()
    grid = grid if grid is not None else (PRODIGY_GRID if model == "prodigy" else USAD_GRID)
    rng = ensure_rng(seed)
    train, test = train_test_split(samples, 0.2, seed=derive_seed(rng))
    train_p, test_p = prepare_features(train, test, config, derive_seed(rng))

    results: list[GridResult] = []
    for params in _combinations(grid):
        if model == "prodigy":
            det = ProdigyDetector(
                hidden_dims=config.prodigy_hidden,
                latent_dim=config.prodigy_latent,
                learning_rate=params["learning_rate"],
                batch_size=params["batch_size"],
                epochs=params["epochs"],
                seed=derive_seed(rng),
            )
        else:
            alpha, beta = params["alpha_beta"]
            det = USAD(
                hidden_size=params["hidden_size"],
                latent_dim=config.usad_latent,
                alpha=alpha,
                beta=beta,
                batch_size=params["batch_size"],
                epochs=params["epochs"],
                seed=derive_seed(rng),
            )
        det.fit(train_p.features, train_p.labels)
        det.calibrate_threshold(test_p.features, test_p.labels)
        f1 = f1_score_macro(test_p.labels, det.predict(test_p.features))
        results.append(GridResult(model=model, params=params, f1_macro=f1))
    results.sort(key=lambda r: -r.f1_macro)
    return results


def render_grid(results: list[GridResult], top: int = 10) -> str:
    if not results:
        return "(no results)"
    keys = list(results[0].params)
    return render_table(
        ["rank", *keys, "macro-F1"],
        [
            [i + 1, *[str(r.params[k]) for k in keys], r.f1_macro]
            for i, r in enumerate(results[:top])
        ],
    )
