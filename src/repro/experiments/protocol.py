"""Evaluation protocol shared by the controlled experiments (Sec. 5.4.4).

Encodes, per model, exactly how the paper trains and thresholds:

* training anomaly ratio capped at 10 %;
* Chi-square feature selection fitted on the (small) labeled training
  portion, min-max scaling fitted on the training features;
* Prodigy & USAD drop anomalous training samples and calibrate their
  threshold by the 0-to-1 F1 sweep (the paper applies the sweep against the
  test scores; reproduced faithfully, flag-controlled);
* IF & LOF train on the contaminated training set with contamination 10 %;
* Majority Label Prediction is fitted on the *test* labels (the paper's
  definition) and Random Prediction needs no training signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.prodigy import ProdigyDetector
from repro.eval.metrics import ClassificationReport, classification_report
from repro.eval.splits import cap_anomaly_ratio
from repro.features.scaling import make_scaler
from repro.features.selection import ChiSquareSelector
from repro.models.heuristics import MajorityLabelPrediction, RandomPrediction
from repro.models.iforest import IsolationForest
from repro.models.kmeans import KMeansDetector
from repro.models.lof import LocalOutlierFactor
from repro.models.usad import USAD
from repro.telemetry.sampleset import SampleSet
from repro.util.rng import derive_seed, ensure_rng

__all__ = [
    "ProtocolConfig",
    "MODEL_NAMES",
    "carve_selection_set",
    "evaluate_model",
    "prepare_features",
]

MODEL_NAMES = ("prodigy", "usad", "isolation_forest", "lof", "kmeans", "random", "majority")


@dataclass(frozen=True)
class ProtocolConfig:
    """Knobs of the shared protocol."""

    #: the paper sweeps 250/500/1000/2000 and settles on 2000; the same
    #: sweep on the synthetic datasets also peaks at the largest setting
    n_features: int = 2048
    max_train_anomaly_ratio: float = 0.10
    contamination: float = 0.10
    #: 'sweep' = paper's F1 sweep on test scores; 'percentile' = Sec. 3.3 default
    threshold_strategy: str = "sweep"
    scaler_kind: str = "minmax"
    #: smaller budgets / larger steps than Table 3's starred values because
    #: the datasets are ~1/10 scale (fewer gradient steps per epoch)
    prodigy_epochs: int = 300
    prodigy_learning_rate: float = 1e-3
    prodigy_batch_size: int = 64
    usad_epochs: int = 60
    usad_learning_rate: float = 1e-3
    usad_batch_size: int = 64
    prodigy_hidden: tuple[int, ...] = (128, 64)
    prodigy_latent: int = 16
    usad_hidden: int = 200
    usad_latent: int = 32


def carve_selection_set(
    samples: SampleSet,
    *,
    n_anomalous: int = 24,
    n_healthy: int = 24,
    seed: int | np.random.Generator | None = None,
) -> tuple[SampleSet, SampleSet]:
    """Split off the paper's dedicated feature-selection set (Sec. 5.4.3).

    The paper fits Chi-square selection on a small labeled set separate
    from the train/test protocol — 24 (Eclipse) / 55 (Volta) anomalous
    samples plus healthy ones.  Anomalous picks are stratified over anomaly
    configurations so every Table 2 signature contributes.  Returns
    ``(selection_set, rest)``.
    """
    rng = ensure_rng(seed)
    anom_idx = np.flatnonzero(samples.labels == 1)
    healthy_idx = np.flatnonzero(samples.labels == 0)
    if anom_idx.size < 2 or healthy_idx.size < 2:
        raise ValueError("need at least 2 samples of each class to carve a selection set")
    n_anomalous = min(n_anomalous, anom_idx.size // 2)
    n_healthy = min(n_healthy, healthy_idx.size // 2)

    # Round-robin over anomaly types until the budget is filled.
    by_type: dict[str, list[int]] = {}
    for i in anom_idx:
        by_type.setdefault(str(samples.anomaly_names[i]), []).append(int(i))
    for pool in by_type.values():
        rng.shuffle(pool)
    chosen_anom: list[int] = []
    while len(chosen_anom) < n_anomalous:
        progressed = False
        for pool in by_type.values():
            if pool and len(chosen_anom) < n_anomalous:
                chosen_anom.append(pool.pop())
                progressed = True
        if not progressed:
            break
    chosen_healthy = rng.choice(healthy_idx, size=n_healthy, replace=False)
    sel_idx = np.sort(np.concatenate([chosen_anom, chosen_healthy]).astype(np.int64))
    rest_idx = np.setdiff1d(np.arange(samples.n_samples), sel_idx)
    return samples.subset(sel_idx), samples.subset(rest_idx)


def prepare_features(
    train: SampleSet,
    test: SampleSet,
    config: ProtocolConfig,
    seed: int | np.random.Generator | None,
    *,
    selection_set: SampleSet | None = None,
) -> tuple[SampleSet, SampleSet]:
    """Cap contamination, select features, scale both splits.

    ``selection_set``, when given, is the paper's dedicated labeled
    selection dataset; otherwise selection falls back to the (capped)
    training split.
    """
    rng = ensure_rng(seed)
    train = cap_anomaly_ratio(train, config.max_train_anomaly_ratio, seed=derive_seed(rng))
    selection_source = selection_set if selection_set is not None else train
    if selection_source.n_anomalous > 0 and selection_source.n_healthy > 0:
        selector = ChiSquareSelector(k=config.n_features).fit(selection_source)
        train_sel = selector.transform(train)
        test_sel = selector.transform(test)
    else:
        # Degenerate fold (no anomalous training samples): fall back to the
        # highest-variance features — selection must not touch test labels.
        var = train.features.var(axis=0)
        order = np.lexsort((np.arange(var.size), -var))
        names = [train.feature_names[i] for i in np.sort(order[: config.n_features])]
        train_sel = train.select_features(names)
        test_sel = test.select_features(names)
    # Fit the scaler on *healthy* training rows: min-max ranges stretched by
    # anomalous extremes would compress the healthy manifold and erase the
    # reconstruction-error contrast every detector here relies on.
    scaler_source = train_sel.healthy() if train_sel.n_healthy else train_sel
    scaler = make_scaler(config.scaler_kind).fit(scaler_source.features)
    return (
        train_sel.with_features(scaler.transform(train_sel.features), train_sel.feature_names),
        test_sel.with_features(scaler.transform(test_sel.features), test_sel.feature_names),
    )


def evaluate_model(
    model_name: str,
    train: SampleSet,
    test: SampleSet,
    *,
    config: ProtocolConfig | None = None,
    seed: int | np.random.Generator | None = None,
    selection_set: SampleSet | None = None,
) -> ClassificationReport:
    """Run one train/test evaluation of *model_name* under the protocol."""
    if model_name not in MODEL_NAMES:
        raise KeyError(f"unknown model {model_name!r}; known: {MODEL_NAMES}")
    config = config if config is not None else ProtocolConfig()
    rng = ensure_rng(seed)
    train_p, test_p = prepare_features(
        train, test, config, derive_seed(rng), selection_set=selection_set
    )
    x_train, y_train = train_p.features, train_p.labels
    x_test, y_test = test_p.features, test_p.labels

    if model_name == "prodigy":
        model = ProdigyDetector(
            hidden_dims=config.prodigy_hidden,
            latent_dim=config.prodigy_latent,
            epochs=config.prodigy_epochs,
            learning_rate=config.prodigy_learning_rate,
            batch_size=config.prodigy_batch_size,
            seed=derive_seed(rng),
        )
        model.fit(x_train, y_train)
        if config.threshold_strategy == "sweep":
            model.calibrate_threshold(x_test, y_test)
    elif model_name == "usad":
        model = USAD(
            hidden_size=config.usad_hidden,
            latent_dim=config.usad_latent,
            epochs=config.usad_epochs,
            learning_rate=config.usad_learning_rate,
            batch_size=config.usad_batch_size,
            seed=derive_seed(rng),
        )
        model.fit(x_train, y_train)
        if config.threshold_strategy == "sweep":
            model.calibrate_threshold(x_test, y_test)
    elif model_name == "isolation_forest":
        model = IsolationForest(contamination=config.contamination, seed=derive_seed(rng))
        model.fit(x_train)
    elif model_name == "lof":
        model = LocalOutlierFactor(contamination=config.contamination)
        model.fit(x_train)
    elif model_name == "kmeans":
        model = KMeansDetector(contamination=config.contamination, seed=derive_seed(rng))
        model.fit(x_train)
    elif model_name == "random":
        model = RandomPrediction(seed=derive_seed(rng))
        model.fit(x_train)
    else:  # majority
        model = MajorityLabelPrediction()
        model.fit(x_test, y_test)  # the paper's test-majority definition

    return classification_report(y_test, model.predict(x_test))


def fold_runner(
    model_name: str,
    *,
    config: ProtocolConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> Callable[[SampleSet, SampleSet], ClassificationReport]:
    """Adapter for :func:`repro.eval.cross_validate`."""
    rng = ensure_rng(seed)

    def run(train: SampleSet, test: SampleSet) -> ClassificationReport:
        return evaluate_model(model_name, train, test, config=config, seed=derive_seed(rng))

    return run
