"""Named fleet scenarios: node-class composition + campaign synthesis.

A *scenario* describes the fleet an operator points the pipeline at: which
node classes exist (each with its metric catalog, application mix, cluster
sizing, and anomaly suite) and how a labeled data-collection campaign is
scheduled across them.  Two scenarios ship:

* ``hpc-node``    — the paper's homogeneous CPU fleet (Eclipse catalog,
  Table-2 injectors).  Single node class; telemetry is dense.
* ``gpu-cluster`` — a mixed fleet: the same CPU partition plus a GPU
  partition whose nodes run an additional per-card ``gpu`` sampler
  (omnistat-style) and attract GPU-specific anomalies (VRAM leak, thermal
  throttle, power cap, ECC storm).

Mixed campaigns serialise to one CSV over the *union* of all class columns;
a node's absent metrics are NaN in its rows.  :func:`load_scenario_series`
reverses that: per node it drops the all-NaN columns, recognises the node
class by its surviving column set, applies that catalog's counter
differencing, and re-attaches the class schema so downstream grouping by
schema digest sees the heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.anomalies import GPU_INJECTORS, TABLE2_INJECTORS
from repro.telemetry.frame import NodeSeries, TelemetryFrame
from repro.telemetry.preprocessing import standard_preprocess
from repro.util.rng import derive_seed, ensure_rng
from repro.workloads import (
    ECLIPSE,
    ECLIPSE_APPS,
    GPU_APPS,
    VOLTA,
    JobRunner,
    JobSpec,
    default_catalog,
    gpu_catalog,
)
from repro.workloads.base import ApplicationSignature
from repro.workloads.cluster import Cluster, DriverInjector
from repro.workloads.metrics import MetricCatalog

__all__ = [
    "NodeClassSpec",
    "Scenario",
    "ScenarioRun",
    "available_scenarios",
    "get_scenario",
    "simulate_scenario",
    "load_scenario_series",
]


@dataclass(frozen=True)
class NodeClassSpec:
    """One node class of a fleet: hardware, metric surface, workload mix."""

    name: str
    cluster: Cluster
    catalog: MetricCatalog
    apps: tuple[ApplicationSignature, ...]
    injectors: tuple[DriverInjector, ...]
    #: added to every component id of this class so ids never collide with
    #: another class's partition (real fleets number partitions disjointly)
    component_offset: int = 0

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError(f"node class {self.name!r} needs at least one app")
        if not self.injectors:
            raise ValueError(f"node class {self.name!r} needs at least one injector")


@dataclass(frozen=True)
class Scenario:
    """A named fleet composition the CLI can simulate, train on, and score."""

    name: str
    description: str
    classes: tuple[NodeClassSpec, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError(f"scenario {self.name!r} needs at least one node class")

    @property
    def union_metric_names(self) -> tuple[str, ...]:
        """All class columns, first-appearance ordered (the CSV layout)."""
        seen: dict[str, None] = {}
        for cls in self.classes:
            for name in cls.catalog.metric_names:
                seen.setdefault(name, None)
        return tuple(seen)

    @property
    def is_mixed(self) -> bool:
        return len({cls.catalog.schema().digest for cls in self.classes}) > 1

    def class_of_metric_names(self, metric_names) -> NodeClassSpec | None:
        """The node class whose catalog matches this column set, if any."""
        names = frozenset(metric_names)
        for cls in self.classes:
            if names == frozenset(cls.catalog.metric_names):
                return cls
        return None


@dataclass(frozen=True)
class ScenarioRun:
    """A simulated campaign: union-column telemetry plus ground truth."""

    scenario: str
    frame: TelemetryFrame
    #: ``"job:component"`` -> 0/1 node label
    labels: dict[str, int] = field(repr=False)
    #: ``"job:component"`` -> injector name for anomalous node-runs
    anomaly_names: dict[str, str] = field(repr=False)
    #: ``job_id`` -> node-class name
    job_classes: dict[int, str] = field(repr=False)

    @property
    def n_jobs(self) -> int:
        return len(self.job_classes)


def _build_hpc_node() -> Scenario:
    return Scenario(
        name="hpc-node",
        description="homogeneous CPU fleet (Eclipse catalog, Table-2 anomalies)",
        classes=(
            NodeClassSpec(
                name="cpu",
                cluster=ECLIPSE,
                catalog=default_catalog(),
                apps=tuple(ECLIPSE_APPS.values()),
                injectors=tuple(TABLE2_INJECTORS()),
            ),
        ),
    )


def _build_gpu_cluster() -> Scenario:
    return Scenario(
        name="gpu-cluster",
        description="mixed fleet: CPU partition + GPU partition with "
                    "per-card gpu sampler and GPU anomaly suite",
        classes=(
            NodeClassSpec(
                name="cpu",
                cluster=ECLIPSE,
                catalog=default_catalog(),
                apps=tuple(ECLIPSE_APPS.values()),
                injectors=tuple(TABLE2_INJECTORS()),
            ),
            NodeClassSpec(
                name="gpu",
                cluster=VOLTA,
                catalog=gpu_catalog(2),
                apps=tuple(GPU_APPS.values()),
                injectors=tuple(GPU_INJECTORS()),
                component_offset=2000,
            ),
        ),
    )


_SCENARIO_BUILDERS = {
    "hpc-node": _build_hpc_node,
    "gpu-cluster": _build_gpu_cluster,
}


def available_scenarios() -> tuple[str, ...]:
    return tuple(sorted(_SCENARIO_BUILDERS))


def get_scenario(name: str) -> Scenario:
    """Resolve a scenario by name (fresh instance per call)."""
    builder = _SCENARIO_BUILDERS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown scenario {name!r} (available: "
            f"{', '.join(available_scenarios())})"
        )
    return builder()


def _expand_to_union(
    frame: TelemetryFrame, union: tuple[str, ...]
) -> TelemetryFrame:
    """Reindex a class frame onto the union columns, NaN where absent."""
    if frame.metric_names == union:
        return frame
    pos = {n: j for j, n in enumerate(frame.metric_names)}
    values = np.full((frame.n_rows, len(union)), np.nan)
    dst = [j for j, n in enumerate(union) if n in pos]
    src = [pos[union[j]] for j in dst]
    values[:, dst] = frame.values[:, src]
    return TelemetryFrame(
        frame.job_id, frame.component_id, frame.timestamp, values, union
    )


def _offset_components(frame: TelemetryFrame, offset: int) -> TelemetryFrame:
    if offset == 0:
        return frame
    return TelemetryFrame(
        frame.job_id, frame.component_id + offset, frame.timestamp,
        frame.values, frame.metric_names,
    )


def simulate_scenario(
    scenario: Scenario,
    *,
    jobs: int = 12,
    anomalous_jobs: int = 4,
    nodes: int = 4,
    duration_s: int = 300,
    seed: int | np.random.Generator | None = 0,
) -> ScenarioRun:
    """Run a labeled campaign across the scenario's node classes.

    Jobs round-robin over the classes; each job draws its application from
    its class's mix.  The last *anomalous_jobs* jobs carry an injector on
    node rank 0, cycling through the class's anomaly suite in order so a
    modest campaign still covers every injector of every class.
    """
    if jobs < len(scenario.classes):
        raise ValueError(
            f"scenario {scenario.name!r} has {len(scenario.classes)} node "
            f"classes; need at least that many healthy jobs, got {jobs}"
        )
    rng = ensure_rng(seed)
    runners = [
        JobRunner(cls.cluster, catalog=cls.catalog, seed=derive_seed(rng))
        for cls in scenario.classes
    ]
    union = scenario.union_metric_names
    frames: list[TelemetryFrame] = []
    labels: dict[str, int] = {}
    anomaly_names: dict[str, str] = {}
    job_classes: dict[int, str] = {}
    anomalous_seen = [0] * len(scenario.classes)
    for i in range(jobs + anomalous_jobs):
        job_id = i + 1
        ci = i % len(scenario.classes)
        cls = scenario.classes[ci]
        app = cls.apps[(i // len(scenario.classes)) % len(cls.apps)]
        anomalies: dict[int, DriverInjector] = {}
        if i >= jobs:
            inj = cls.injectors[anomalous_seen[ci] % len(cls.injectors)]
            anomalous_seen[ci] += 1
            anomalies = {0: inj}
        result = runners[ci].run(
            JobSpec(job_id=job_id, app=app, n_nodes=nodes,
                    duration_s=duration_s, anomalies=anomalies)
        )
        frames.append(
            _expand_to_union(
                _offset_components(result.frame, cls.component_offset), union
            )
        )
        job_classes[job_id] = cls.name
        for comp in result.component_ids:
            key = f"{job_id}:{comp + cls.component_offset}"
            labels[key] = result.node_label(comp)
            name = result.node_anomalies[comp]
            if name != "none":
                anomaly_names[key] = name
    return ScenarioRun(
        scenario=scenario.name,
        frame=TelemetryFrame.concat(frames),
        labels=labels,
        anomaly_names=anomaly_names,
        job_classes=job_classes,
    )


def load_scenario_series(
    frame: TelemetryFrame,
    scenario: Scenario,
    *,
    trim_seconds: float = 30.0,
) -> list[NodeSeries]:
    """Union-column telemetry -> preprocessed, schema-tagged node series.

    Per node: drop the columns its rows never observed (all-NaN — the union
    placeholder for metrics another class carries), recognise the node class
    from the surviving column set, difference that catalog's counters, and
    attach the class schema.  Nodes matching no registered class fall back
    to generic preprocessing (union counters, digest from the column names).
    """
    union_counters = {
        c for cls in scenario.classes for c in cls.catalog.counter_names
    }
    out: list[NodeSeries] = []
    for s in frame.iter_node_series():
        absent = np.isnan(s.values).all(axis=0)
        if absent.any():
            keep = [n for n, dead in zip(s.metric_names, absent) if not dead]
            s = s.select_metrics(keep)
        cls = scenario.class_of_metric_names(s.metric_names)
        if cls is None:
            counters = [c for c in s.metric_names if c in union_counters]
            out.append(standard_preprocess(s, counters, trim_seconds=trim_seconds))
            continue
        catalog = cls.catalog
        if s.metric_names != catalog.metric_names:
            s = s.select_metrics(list(catalog.metric_names))
        clean = standard_preprocess(
            s, catalog.counter_names, trim_seconds=trim_seconds
        )
        schema = catalog.schema()
        if clean.metric_names == schema.flat_metric_names:
            clean = NodeSeries(
                clean.job_id, clean.component_id, clean.timestamps,
                clean.values, clean.metric_names, schema=schema,
            )
        out.append(clean)
    return out
