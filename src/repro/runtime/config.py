"""Execution configuration for the shared extraction/inference runtime.

One small frozen object carries every knob of the runtime layer — worker
count, task granularity, cache capacity, instrumentation on/off — and is
resolvable from three sources with a fixed precedence:

    explicit argument  >  ``PRODIGY_*`` environment  >  process default

so a CLI ``--workers 4``, a ``PRODIGY_WORKERS=4`` deployment environment,
and a programmatic :func:`set_execution_config` all reach the same engine
the same way.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Mapping

__all__ = [
    "ExecutionConfig",
    "FLEET_TRANSPORTS",
    "STREAMING_MODES",
    "get_execution_config",
    "set_execution_config",
]

ENV_WORKERS = "PRODIGY_WORKERS"
ENV_CHUNK_SIZE = "PRODIGY_CHUNK_SIZE"
ENV_CACHE_SIZE = "PRODIGY_CACHE_SIZE"
ENV_INSTRUMENT = "PRODIGY_INSTRUMENT"
ENV_FLEET_TRANSPORT = "PRODIGY_FLEET_TRANSPORT"
ENV_GATEWAY_CACHE = "PRODIGY_GATEWAY_CACHE"
ENV_STREAMING_MODE = "PRODIGY_STREAMING_MODE"

#: Valid values of :attr:`ExecutionConfig.fleet_transport`.
FLEET_TRANSPORTS = ("inline", "process")

#: Valid values of :attr:`ExecutionConfig.streaming_mode`.
STREAMING_MODES = ("batch", "rolling")

_FALSY = {"0", "false", "no", "off", ""}


def _env_int(env: Mapping[str, str], key: str) -> int | None:
    raw = env.get(key)
    if raw is None or raw.strip() == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{key} must be an integer, got {raw!r}") from None


@dataclass(frozen=True)
class ExecutionConfig:
    """Runtime knobs shared by every extraction/inference consumer.

    Parameters
    ----------
    n_workers:
        Worker processes for feature extraction.  ``1`` means the serial
        in-process path (no pool is ever created).
    chunk_size:
        Metrics per parallel work unit; ``0`` picks a chunk that yields
        roughly two tasks per worker.
    cache_size:
        Feature-row entries kept by the LRU :class:`FeatureCache`;
        ``0`` disables caching entirely.
    instrument:
        Record per-stage timers/counters in the global
        :class:`~repro.runtime.instrumentation.Instrumentation` registry.
    fleet_transport:
        How the fleet coordinator runs its scoring workers: ``"inline"``
        (cooperatively scheduled on the coordinator thread — the parity
        oracle) or ``"process"`` (one OS process per worker fed over
        shared-memory rings; falls back to inline where ``fork`` is
        unavailable).
    gateway_cache_size:
        Response-cache entries kept by the serving gateway
        (:class:`~repro.serving.gateway.ResponseCache`); ``0`` disables
        response caching.
    streaming_mode:
        How :class:`~repro.monitoring.streaming.StreamingDetector`
        computes evaluation-window features: ``"batch"`` (recompute every
        calculator on the materialised window — the parity oracle) or
        ``"rolling"`` (O(1) sliding-update kernels over the per-node ring
        buffer, with per-calculator fallback to the batch kernels).
    """

    n_workers: int = 1
    chunk_size: int = 0
    cache_size: int = 512
    instrument: bool = True
    fleet_transport: str = "inline"
    gateway_cache_size: int = 256
    streaming_mode: str = "batch"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.chunk_size < 0:
            raise ValueError(f"chunk_size must be >= 0, got {self.chunk_size}")
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.gateway_cache_size < 0:
            raise ValueError(
                f"gateway_cache_size must be >= 0, got {self.gateway_cache_size}"
            )
        if self.fleet_transport not in FLEET_TRANSPORTS:
            raise ValueError(
                f"fleet_transport must be one of {FLEET_TRANSPORTS}, "
                f"got {self.fleet_transport!r}"
            )
        if self.streaming_mode not in STREAMING_MODES:
            raise ValueError(
                f"streaming_mode must be one of {STREAMING_MODES}, "
                f"got {self.streaming_mode!r}"
            )

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "ExecutionConfig":
        """Config from ``PRODIGY_*`` variables over the built-in defaults."""
        env = os.environ if env is None else env
        kwargs = {}
        for key, field_name in (
            (ENV_WORKERS, "n_workers"),
            (ENV_CHUNK_SIZE, "chunk_size"),
            (ENV_CACHE_SIZE, "cache_size"),
            (ENV_GATEWAY_CACHE, "gateway_cache_size"),
        ):
            value = _env_int(env, key)
            if value is not None:
                kwargs[field_name] = value
        raw_instrument = env.get(ENV_INSTRUMENT)
        if raw_instrument is not None:
            kwargs["instrument"] = raw_instrument.strip().lower() not in _FALSY
        raw_transport = env.get(ENV_FLEET_TRANSPORT)
        if raw_transport is not None and raw_transport.strip() != "":
            kwargs["fleet_transport"] = raw_transport.strip().lower()
        raw_mode = env.get(ENV_STREAMING_MODE)
        if raw_mode is not None and raw_mode.strip() != "":
            kwargs["streaming_mode"] = raw_mode.strip().lower()
        return cls(**kwargs)

    @classmethod
    def resolve(
        cls,
        *,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        cache_size: int | None = None,
        instrument: bool | None = None,
        fleet_transport: str | None = None,
        gateway_cache_size: int | None = None,
        streaming_mode: str | None = None,
        env: Mapping[str, str] | None = None,
    ) -> "ExecutionConfig":
        """Merge explicit arguments over the environment over the defaults."""
        config = cls.from_env(env)
        overrides = {
            name: value
            for name, value in (
                ("n_workers", n_workers),
                ("chunk_size", chunk_size),
                ("cache_size", cache_size),
                ("instrument", instrument),
                ("fleet_transport", fleet_transport),
                ("gateway_cache_size", gateway_cache_size),
                ("streaming_mode", streaming_mode),
            )
            if value is not None
        }
        return replace(config, **overrides) if overrides else config


_process_config: ExecutionConfig | None = None


def get_execution_config() -> ExecutionConfig:
    """The process-wide config: the last :func:`set_execution_config`, else env."""
    if _process_config is not None:
        return _process_config
    return ExecutionConfig.from_env()


def set_execution_config(config: ExecutionConfig | None) -> None:
    """Install *config* as the process-wide default (``None`` reverts to env).

    Also flips the global instrumentation registry to match
    ``config.instrument`` so stage timers outside engine objects (score,
    explain) honour the same switch.
    """
    global _process_config
    _process_config = config
    from repro.runtime.instrumentation import get_instrumentation

    get_instrumentation().enabled = config.instrument if config is not None else True
