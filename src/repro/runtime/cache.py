"""Content-hash-keyed LRU cache of extracted feature rows.

Feature extraction is the most expensive stage of the pipeline and its
inputs recur constantly: streaming evaluation replays calibration windows,
CoMTE's search scores the same sample and distractor blocks hundreds of
times, and experiment re-runs extract identical shared datasets.  Caching
one ``(F,)`` feature row per *series content* (not object identity) turns
all of those into dictionary lookups.

Keys are ``blake2b`` digests over the extractor's signature (calculator-set
content digest including the kernel version, resample grid, metric subset)
concatenated with the series identity
and raw samples, so any change to either the data or the extraction
configuration misses.  A cached row is the exact bytes the original
extraction produced; note that *recomputing* a row in a different batch
composition can drift by one ulp (numpy reduction order varies with batch
shape), so cache reuse is if anything more reproducible than recomputation.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.features.calculators import calculator_set_digest
from repro.telemetry.frame import NodeSeries

__all__ = ["FeatureCache", "series_fingerprint", "extractor_signature"]


def series_fingerprint(series: NodeSeries) -> bytes:
    """16-byte digest of a series' identity, sampling grid, and values."""
    h = hashlib.blake2b(digest_size=16)
    h.update(np.int64(series.job_id).tobytes())
    h.update(np.int64(series.component_id).tobytes())
    h.update(series.timestamps.tobytes())
    h.update(np.ascontiguousarray(series.values).tobytes())
    for name in series.metric_names:
        h.update(name.encode())
        h.update(b"\x00")
    return h.digest()


def extractor_signature(extractor) -> bytes:
    """16-byte digest of everything that shapes an extractor's output row.

    Includes the calculator-set content digest (kernel generation, names,
    column layout, cost tiers), so a vectorised-kernel change bumps every
    key and can never serve rows cached by older kernels.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(calculator_set_digest(extractor.calculators))
    h.update(repr(extractor.resample_points).encode())
    h.update(repr(extractor.metrics).encode())
    return h.digest()


class FeatureCache:
    """Bounded LRU mapping content keys to read-only feature rows."""

    def __init__(self, max_entries: int = 512):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._rows: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: bytes) -> np.ndarray | None:
        row = self._rows.get(key)
        if row is None:
            self.misses += 1
            return None
        self._rows.move_to_end(key)
        self.hits += 1
        return row

    def put(self, key: bytes, row: np.ndarray) -> None:
        stored = np.array(row, dtype=np.float64, copy=True)
        stored.flags.writeable = False
        self._rows[key] = stored
        self._rows.move_to_end(key)
        while len(self._rows) > self.max_entries:
            self._rows.popitem(last=False)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: bytes) -> bool:
        return key in self._rows

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return 0.0 if total == 0 else self.hits / total

    def clear(self) -> None:
        self._rows.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {
            "entries": len(self._rows),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }
