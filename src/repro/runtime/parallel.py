"""ParallelExtractor — the shared feature-extraction engine.

Wraps a :class:`~repro.features.extraction.FeatureExtractor` with the three
runtime services every consumer needs:

* **fan-out** — the ``(N, T, M)`` block is split into cost-weighted work
  units (a metric range crossed with one calculator cost tier, sized by the
  tiers' :data:`~repro.features.calculators.COST_WEIGHTS`) and computed on
  a process pool (``n_workers > 1``); per-metric columns depend only on
  their own slab, so scatter-assembled output is bit-identical to the
  serial path.  The engine runs serial whenever parallelism cannot pay:
  ``n_workers=1``, a single-CPU host (``os.cpu_count() == 1``), or a plan
  with too few units to amortise pool startup;
* **memoisation** — per-series feature rows are cached in a content-hashed
  LRU (:class:`~repro.runtime.cache.FeatureCache`), so streaming window
  replays, CoMTE's repeated evaluator calls, and experiment re-runs over
  shared datasets skip extraction entirely;
* **instrumentation** — the ``extract`` stage timer and cache hit/miss
  counters feed the global registry surfaced by ``runtime stats``.

Worker processes rebuild calculators from a factory spec (the default
calculator set closes over lambdas and cannot be pickled); truly custom
calculator lists fall back to pickling, and unpicklable ones degrade to the
serial path rather than failing.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from typing import NamedTuple, Sequence

import numpy as np

from repro.features.calculators import (
    Calculator,
    calculator_cost_weight,
    default_calculators,
    full_calculators,
)
from repro.features.extraction import (
    FeatureExtractor,
    calculator_offsets,
    compute_block,
    compute_block_columns,
    validate_aligned,
)
from repro.runtime.cache import FeatureCache, extractor_signature, series_fingerprint
from repro.runtime.config import ExecutionConfig, get_execution_config
from repro.runtime.instrumentation import Instrumentation, get_instrumentation
from repro.telemetry.frame import NodeSeries
from repro.telemetry.sampleset import SampleSet

__all__ = ["ParallelExtractor", "WorkUnit", "plan_chunks"]


# -- worker-side plumbing ------------------------------------------------------

_WORKER_CALCULATORS: list[Calculator] | None = None

_FACTORIES = {"default": default_calculators, "full": full_calculators}


def _calculator_spec(calculators: Sequence[Calculator]):
    """A picklable recipe for rebuilding *calculators* in a worker process.

    Returns ``("factory", name, calc_names)`` when every calculator comes
    from a known registry factory, ``("pickle", bytes)`` when the list
    pickles directly, and ``None`` when neither works (serial only).
    """
    names = tuple(c.name for c in calculators)
    for factory_name, factory in _FACTORIES.items():
        registry = {c.name for c in factory()}
        if all(n in registry for n in names):
            return ("factory", factory_name, names)
    try:
        return ("pickle", pickle.dumps(list(calculators)))
    except Exception:
        return None


def _calculators_from_spec(spec) -> list[Calculator]:
    if spec[0] == "factory":
        _, factory_name, names = spec
        by_name = {c.name: c for c in _FACTORIES[factory_name]()}
        return [by_name[n] for n in names]
    return pickle.loads(spec[1])


def _init_worker(spec) -> None:
    global _WORKER_CALCULATORS
    _WORKER_CALCULATORS = _calculators_from_spec(spec)


def _compute_chunk(block_chunk: np.ndarray) -> np.ndarray:
    return compute_block(_WORKER_CALCULATORS, block_chunk)


def _compute_chunk_cols(block_chunk: np.ndarray, calc_indices: tuple[int, ...]) -> np.ndarray:
    return compute_block_columns(_WORKER_CALCULATORS, block_chunk, calc_indices)


# -- cost-aware chunk planning -------------------------------------------------


class WorkUnit(NamedTuple):
    """One schedulable unit: a metric range crossed with a calculator subset."""

    metric_lo: int
    metric_hi: int
    calc_indices: tuple[int, ...]
    weight: float


def plan_chunks(
    calculators: Sequence[Calculator],
    n_metrics: int,
    n_workers: int,
    chunk_size: int = 0,
) -> list[WorkUnit]:
    """Split an extraction into cost-balanced work units.

    Calculators are grouped by cost tier and each tier's metric axis is
    split so every unit carries roughly ``total_weight / (n_workers * 2)``
    of work — the expensive tier shatters into fine metric spans while the
    cheap tier stays in a few coarse ones, instead of every uniform K-chunk
    dragging the full expensive tier along.  An explicit ``chunk_size``
    pins uniform K-axis spans carrying all calculators (the legacy knob).
    Units come back heaviest-first so pool submission order aids balance.
    """
    if n_metrics < 1:
        return []
    if chunk_size:
        all_idx = tuple(range(len(calculators)))
        per_metric = sum(calculator_cost_weight(c) for c in calculators)
        units = [
            WorkUnit(lo, min(lo + chunk_size, n_metrics), all_idx,
                     per_metric * (min(lo + chunk_size, n_metrics) - lo))
            for lo in range(0, n_metrics, chunk_size)
        ]
        return sorted(units, key=lambda u: -u.weight)
    tiers: dict[str, list[int]] = {}
    for i, calc in enumerate(calculators):
        tiers.setdefault(calc.cost, []).append(i)
    tier_weight = {
        tier: sum(calculator_cost_weight(calculators[i]) for i in idx)
        for tier, idx in tiers.items()
    }
    target = n_metrics * sum(tier_weight.values()) / max(1, n_workers * 2)
    units: list[WorkUnit] = []
    for tier, idx in tiers.items():
        w = tier_weight[tier]
        span = max(1, int(target // w)) if w > 0 else n_metrics
        for lo in range(0, n_metrics, span):
            hi = min(lo + span, n_metrics)
            units.append(WorkUnit(lo, hi, tuple(idx), w * (hi - lo)))
    return sorted(units, key=lambda u: -u.weight)


# -- the engine ----------------------------------------------------------------


class ParallelExtractor:
    """Cached, optionally parallel drop-in for ``FeatureExtractor`` extraction.

    Parameters
    ----------
    extractor:
        The wrapped extractor (defaults to a fresh ``FeatureExtractor()``).
        Its configuration — calculators, resample grid, metric subset — is
        part of every cache key.
    config:
        Runtime knobs; defaults to the process-wide
        :func:`~repro.runtime.config.get_execution_config`.
    cache:
        Share a :class:`FeatureCache` across engines (e.g. CoMTE's
        per-metric engines); by default each engine owns one sized by
        ``config.cache_size`` (0 disables).
    instrumentation:
        Stage-timer registry; defaults to the global one.
    """

    def __init__(
        self,
        extractor: FeatureExtractor | None = None,
        *,
        config: ExecutionConfig | None = None,
        cache: FeatureCache | None = None,
        instrumentation: Instrumentation | None = None,
    ):
        self.extractor = extractor if extractor is not None else FeatureExtractor()
        self.config = config if config is not None else get_execution_config()
        if cache is not None:
            self.cache = cache
        else:
            self.cache = FeatureCache(self.config.cache_size) if self.config.cache_size else None
        self.instrumentation = (
            instrumentation if instrumentation is not None else get_instrumentation()
        )
        self._signature = extractor_signature(self.extractor)
        self._pool: ProcessPoolExecutor | None = None
        self._spec_resolved = False
        self._spec = None
        self._last_plan: dict | None = None

    # -- passthrough introspection --------------------------------------------

    @property
    def n_features_per_metric(self) -> int:
        return self.extractor.n_features_per_metric

    def feature_names(self, metric_names: Sequence[str]) -> tuple[str, ...]:
        return self.extractor.feature_names(metric_names)

    # -- extraction ------------------------------------------------------------

    def extract_matrix(
        self, series: Sequence[NodeSeries]
    ) -> tuple[np.ndarray, tuple[str, ...]]:
        """Extract the raw ``(N, F_total)`` matrix — cached, fanned out."""
        series = list(series)
        if not series:
            raise ValueError("need at least one NodeSeries")
        metric_names = self._batch_metric_names(series)
        with self._stage("extract", items=len(series)):
            if self.cache is None:
                matrix = self._compute_rows(series)
            else:
                matrix = self._cached_rows(series)
        return matrix, self.extractor.feature_names(metric_names)

    def extract(
        self,
        series: Sequence[NodeSeries],
        labels: np.ndarray | Sequence[int] | None = None,
        *,
        app_names: Sequence[str] | None = None,
        anomaly_names: Sequence[str] | None = None,
    ) -> SampleSet:
        """Engine-routed equivalent of :meth:`FeatureExtractor.extract`."""
        series = list(series)
        validate_aligned(
            len(series), labels=labels, app_names=app_names, anomaly_names=anomaly_names
        )
        features, names = self.extract_matrix(series)
        return self.extractor.package(
            series, features, names, labels,
            app_names=app_names, anomaly_names=anomaly_names,
        )

    def extract_single(self, series: NodeSeries) -> np.ndarray:
        """Feature row ``(1, F)`` for one run — the online-inference path."""
        features, _ = self.extract_matrix([series])
        return features

    # -- internals -------------------------------------------------------------

    def _stage(self, name: str, *, items: int = 0):
        if not self.config.instrument:
            return nullcontext()
        return self.instrumentation.stage(name, items=items)

    def _count(self, name: str, n: int) -> None:
        if self.config.instrument and n:
            self.instrumentation.count(name, n)

    def _batch_metric_names(self, series: Sequence[NodeSeries]) -> tuple[str, ...]:
        """The effective metric layout, with the cross-series consistency check.

        Mirrors :meth:`FeatureExtractor.stack` so cached rows can never be
        mixed across incompatible layouts: every series of a batch must share
        metric names (or the extractor pins an explicit subset).
        """
        if self.extractor.metrics is not None:
            return tuple(self.extractor.metrics)
        metric_names = series[0].metric_names
        for s in series[1:]:
            if s.metric_names != metric_names:
                raise ValueError("all series must share metric names (or pass metrics=...)")
        return tuple(metric_names)

    def _cached_rows(self, series: list[NodeSeries]) -> np.ndarray:
        keys = [self._signature + series_fingerprint(s) for s in series]
        rows: list[np.ndarray | None] = [self.cache.get(k) for k in keys]
        miss_idx = [i for i, row in enumerate(rows) if row is None]
        self._count("extract_cache_hits", len(series) - len(miss_idx))
        self._count("extract_cache_misses", len(miss_idx))
        if miss_idx:
            computed = self._compute_rows([series[i] for i in miss_idx])
            for j, i in enumerate(miss_idx):
                self.cache.put(keys[i], computed[j])
                rows[i] = computed[j]
        return np.stack(rows, axis=0)

    @property
    def effective_workers(self) -> int:
        """Configured workers clamped to the host's CPU count."""
        return min(self.config.n_workers, os.cpu_count() or 1)

    def _record_plan(self, mode: str, reason: str, units: list[WorkUnit] | None = None) -> None:
        plan: dict = {
            "mode": mode,
            "reason": reason,
            "configured_workers": self.config.n_workers,
            "effective_workers": self.effective_workers,
            "cpu_count": os.cpu_count() or 1,
        }
        if units:
            weights = [u.weight for u in units]
            plan["n_units"] = len(units)
            plan["unit_weight_min"] = min(weights)
            plan["unit_weight_max"] = max(weights)
        self._last_plan = plan

    def _compute_rows(self, series: list[NodeSeries]) -> np.ndarray:
        """Raw extraction of *series*, parallel when configured and worthwhile."""
        workers = self.effective_workers
        if workers <= 1:
            reason = (
                "configured_serial" if self.config.n_workers <= 1 else "single_cpu_fallback"
            )
            self._record_plan("serial", reason)
            return self.extractor.extract_matrix(series)[0]
        block, _ = self.extractor.stack(series)
        calcs = self.extractor.calculators
        units = plan_chunks(calcs, block.shape[2], workers, self.config.chunk_size)
        if len(units) <= 1:
            self._record_plan("serial", "single_unit", units)
            return compute_block(calcs, block)
        pool = self._ensure_pool()
        if pool is None:  # unpicklable custom calculators: stay serial
            self._record_plan("serial", "unpicklable_calculators", units)
            return compute_block(calcs, block)
        self._record_plan("parallel", "cost_aware_plan", units)
        futures = [
            (
                unit,
                pool.submit(
                    _compute_chunk_cols,
                    np.ascontiguousarray(block[:, :, unit.metric_lo : unit.metric_hi]),
                    unit.calc_indices,
                ),
            )
            for unit in units
        ]
        # Scatter-assemble the partial columns into the metric-major layout.
        offsets = calculator_offsets(calcs)
        f_per = sum(width for _, width in offsets)
        out = np.empty((block.shape[0], block.shape[2] * f_per))
        for unit, future in futures:
            partial = future.result()
            f_sub = partial.shape[1] // (unit.metric_hi - unit.metric_lo)
            for m in range(unit.metric_lo, unit.metric_hi):
                src = (m - unit.metric_lo) * f_sub
                base = m * f_per
                for ci in unit.calc_indices:
                    off, width = offsets[ci]
                    out[:, base + off : base + off + width] = partial[:, src : src + width]
                    src += width
        return out

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool is not None:
            return self._pool
        if not self._spec_resolved:
            self._spec = _calculator_spec(self.extractor.calculators)
            self._spec_resolved = True
        if self._spec is None:
            return None
        if "fork" in mp.get_all_start_methods():
            ctx = mp.get_context("fork")
        else:  # pragma: no cover - non-POSIX platforms
            ctx = mp.get_context()
        self._pool = ProcessPoolExecutor(
            max_workers=self.effective_workers,
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(self._spec,),
        )
        return self._pool

    # -- lifecycle / observability ----------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (idempotent; the engine stays usable)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelExtractor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """JSON-ready runtime snapshot: config, cache, and stage timings."""
        return {
            "config": {
                "n_workers": self.config.n_workers,
                "chunk_size": self.config.chunk_size,
                "cache_size": self.config.cache_size,
                "instrument": self.config.instrument,
                "fleet_transport": self.config.fleet_transport,
                "streaming_mode": self.config.streaming_mode,
            },
            "scheduler": self._last_plan,
            "cache": self.cache.stats() if self.cache is not None else None,
            "instrumentation": self.instrumentation.snapshot(),
        }
