"""Shared extraction/inference runtime layer.

One engine, one config object, one metrics surface for every consumer of
feature extraction — ``Prodigy.fit``, ``DataPipeline``, the streaming
detector, the detector service, CoMTE's evaluators, the experiment
runners, the CLI, and the benchmarks:

* :class:`ExecutionConfig` — worker/chunk/cache/instrumentation knobs,
  resolvable from ``PRODIGY_*`` environment variables and CLI flags;
* :class:`ParallelExtractor` — process-pool fan-out over per-metric chunks
  with a guaranteed bit-identical serial fallback;
* :class:`FeatureCache` — content-hash-keyed LRU memoisation of feature
  rows;
* :class:`Instrumentation` — per-stage timers/counters (extract, select,
  scale, score, explain) surfaced by ``repro-prodigy runtime stats``.
"""

from repro.runtime.cache import FeatureCache, extractor_signature, series_fingerprint
from repro.runtime.config import (
    ExecutionConfig,
    get_execution_config,
    set_execution_config,
)
from repro.runtime.instrumentation import (
    STAGES,
    Instrumentation,
    StageStats,
    get_instrumentation,
)
from repro.runtime.parallel import ParallelExtractor

__all__ = [
    "STAGES",
    "ExecutionConfig",
    "FeatureCache",
    "Instrumentation",
    "ParallelExtractor",
    "StageStats",
    "extractor_signature",
    "get_execution_config",
    "get_instrumentation",
    "series_fingerprint",
    "set_execution_config",
]
