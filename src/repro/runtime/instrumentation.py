"""Per-stage timers and counters for the runtime layer.

Every hot-path stage — ``extract``, ``select``, ``scale``, ``score``,
``explain`` — records wall-clock time, call count, and items processed into
one process-wide registry, so "where does inference time go" is answerable
from any consumer (the ``repro-prodigy runtime stats`` subcommand, the
benchmarks, a service health endpoint) without profiling runs.

The registry is deliberately tiny: a dict guarded by a lock, microseconds
of overhead per stage, and a global kill switch (``enabled``) for
latency-critical deployments.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["STAGES", "StageStats", "Instrumentation", "get_instrumentation"]

#: The canonical pipeline stages, in data-flow order.  ``train_epoch`` is
#: the model trainers' per-epoch loop (VAE/USAD fast path); ``drift`` and
#: ``shadow`` are the lifecycle layer's per-window monitors; ``rollup``
#: is the fleet layer's cluster aggregation.  The fleet also records one
#: extra stage per shard (``shard:<worker_id>`` — the micro-batch drain)
#: and, under the process transport, per-direction IPC stages
#: (``ipc:push`` — staged chunks into shared-memory rings; ``ipc:collect``
#: — verdict records back out), all listed after the canonical stages.
#: The serving gateway records ``gateway:serve`` (dashboard render time)
#: plus per-tenant SLO stages ``slo:<tenant>:wait`` (admission-queue wait)
#: and ``slo:<tenant>:service``, so the queue-wait vs service-time split is
#: readable from the same registry as every other stage.
STAGES = (
    "extract",
    "select",
    "scale",
    "score",
    "train_epoch",
    "explain",
    "drift",
    "shadow",
    "rollup",
)


@dataclass
class StageStats:
    """Accumulated timings of one stage."""

    calls: int = 0
    seconds: float = 0.0
    items: int = 0

    @property
    def mean_ms(self) -> float:
        return 0.0 if self.calls == 0 else self.seconds / self.calls * 1e3

    @property
    def items_per_second(self) -> float:
        return 0.0 if self.seconds <= 0 else self.items / self.seconds


class Instrumentation:
    """Thread-safe registry of stage timers and named counters."""

    def __init__(self, *, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._stages: dict[str, StageStats] = {}
        self._counters: dict[str, int] = {}

    # -- recording -----------------------------------------------------------

    @contextmanager
    def stage(self, name: str, *, items: int = 0):
        """Time a block as one call of stage *name* covering *items* items."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start, items=items)

    def record(self, name: str, seconds: float, *, items: int = 0) -> None:
        if not self.enabled:
            return
        with self._lock:
            stats = self._stages.setdefault(name, StageStats())
            stats.calls += 1
            stats.seconds += seconds
            stats.items += items

    def count(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    # -- reading -------------------------------------------------------------

    def stage_stats(self, name: str) -> StageStats:
        with self._lock:
            return self._stages.get(name, StageStats())

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def prefixed_stages(self, prefix: str) -> dict[str, StageStats]:
        """Copies of every stage whose name starts with *prefix*.

        The fleet layer uses this to pull the per-shard drain timings
        (``prefix="shard:"``) into its status payload.
        """
        with self._lock:
            return {
                name: StageStats(s.calls, s.seconds, s.items)
                for name, s in sorted(self._stages.items())
                if name.startswith(prefix)
            }

    def snapshot(self) -> dict:
        """JSON-ready view: per-stage timings plus raw counters."""
        with self._lock:
            return {
                "stages": {
                    name: {
                        "calls": s.calls,
                        "seconds": s.seconds,
                        "items": s.items,
                        "mean_ms": s.mean_ms,
                        "items_per_second": s.items_per_second,
                    }
                    for name, s in sorted(self._stages.items())
                },
                "counters": dict(sorted(self._counters.items())),
            }

    def reset(self) -> None:
        with self._lock:
            self._stages.clear()
            self._counters.clear()

    def report(self) -> str:
        """Aligned text table of every recorded stage and counter."""
        snap = self.snapshot()
        lines = [f"{'stage':<12} {'calls':>7} {'total s':>9} {'mean ms':>9} {'items/s':>11}"]
        known = [s for s in STAGES if s in snap["stages"]]
        extra = [s for s in snap["stages"] if s not in STAGES]
        for name in known + extra:
            s = snap["stages"][name]
            lines.append(
                f"{name:<12} {s['calls']:>7} {s['seconds']:>9.3f} "
                f"{s['mean_ms']:>9.3f} {s['items_per_second']:>11.1f}"
            )
        if snap["counters"]:
            lines.append("")
            for name, value in snap["counters"].items():
                lines.append(f"{name:<24} {value}")
        return "\n".join(lines)


_GLOBAL = Instrumentation()


def get_instrumentation() -> Instrumentation:
    """The process-wide instrumentation registry."""
    return _GLOBAL
