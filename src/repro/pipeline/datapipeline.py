"""DataPipeline (paper Fig. 3): feature extraction + selection + scaling.

The pipeline is fitted once offline — Chi-square selection needs the small
labeled set, the scaler is fitted on training features — and then applied
unchanged online.  Its fitted state (selected feature names, scaler
parameters, extractor configuration) is exactly the "deployment metadata"
the ModelTrainer persists.

Extraction routes through the shared runtime layer: the pipeline owns a
:class:`~repro.runtime.parallel.ParallelExtractor` engine built from the
process-wide :class:`~repro.runtime.config.ExecutionConfig`, so worker
fan-out, feature-row memoisation, and per-stage timers apply to every
consumer that transforms series through a pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.features.extraction import FeatureExtractor
from repro.features.scaling import MinMaxScaler, Scaler, make_scaler, scaler_from_state
from repro.features.selection import ChiSquareSelector
from repro.runtime.config import ExecutionConfig
from repro.runtime.parallel import ParallelExtractor
from repro.telemetry.frame import NodeSeries
from repro.telemetry.sampleset import SampleSet
from repro.util.validation import check_fitted

__all__ = ["DataPipeline"]


class DataPipeline:
    """Fitted transform: raw node series -> scaled, selected feature rows.

    Parameters
    ----------
    extractor:
        The statistical feature extractor, or an already-built
        :class:`ParallelExtractor` engine to adopt as-is.
    n_features:
        Features kept by Chi-square selection.
    scaler_kind:
        ``minmax`` (paper default), ``standard``, or ``robust``.
    execution:
        Runtime knobs for the extraction engine; defaults to the
        process-wide configuration (``PRODIGY_WORKERS`` etc.).
    """

    def __init__(
        self,
        extractor: FeatureExtractor | ParallelExtractor | None = None,
        *,
        n_features: int = 256,
        scaler_kind: str = "minmax",
        execution: ExecutionConfig | None = None,
    ):
        if isinstance(extractor, ParallelExtractor):
            self.engine = extractor
            self.extractor = extractor.extractor
        else:
            self.extractor = extractor if extractor is not None else FeatureExtractor()
            self.engine = ParallelExtractor(self.extractor, config=execution)
        self.n_features = n_features
        self.scaler_kind = scaler_kind
        self.selector_: ChiSquareSelector | None = None
        self.scaler_: Scaler | None = None
        self.selected_names_: tuple[str, ...] | None = None

    # -- offline -------------------------------------------------------------

    def fit(self, samples: SampleSet) -> "DataPipeline":
        """Fit selection on the labeled SampleSet, then the scaler on it.

        Mixed-schema SampleSets (carrying a presence mask) fit mask-aware:
        selection scores each column over its observed cells and the min-max
        scaler learns per-column ranges from observations only.
        """
        self.selector_ = ChiSquareSelector(k=self.n_features).fit(samples)
        selected = self.selector_.transform(samples)
        self.selected_names_ = selected.feature_names
        scaler = make_scaler(self.scaler_kind)
        if selected.present is None:
            scaler.fit(selected.features)
        elif isinstance(scaler, MinMaxScaler):
            scaler.fit(selected.features, present=selected.present)
        else:
            raise ValueError(
                f"mixed-schema samples need a mask-aware scaler; "
                f"{self.scaler_kind!r} cannot fit under a presence mask"
            )
        self.scaler_ = scaler
        return self

    def fit_from_series(
        self,
        series: Sequence[NodeSeries],
        labels: np.ndarray,
        **extract_kwargs,
    ) -> tuple["DataPipeline", SampleSet]:
        """Extract + fit in one step; returns (self, transformed SampleSet).

        A homogeneous fleet takes the parallel dense path unchanged; a fleet
        spanning several metric schemas is partitioned by schema digest and
        aligned onto the union feature axis with a presence mask.
        """
        series = list(series)
        if len({s.schema_digest for s in series}) > 1:
            samples = self.extractor.extract_mixed(series, labels, **extract_kwargs)
        else:
            samples = self.engine.extract(series, labels, **extract_kwargs)
        self.fit(samples)
        return self, self.transform_samples(samples)

    # -- online ---------------------------------------------------------------

    def transform_samples(self, samples: SampleSet) -> SampleSet:
        """Apply selection + scaling to an already-extracted SampleSet."""
        check_fitted(self, ["selector_", "scaler_"])
        inst = self.engine.instrumentation
        with inst.stage("select", items=samples.n_samples):
            selected = samples.select_features(self.selected_names_)
        with inst.stage("scale", items=samples.n_samples):
            scaled = self.scaler_.transform(selected.features)
            if selected.present is not None:
                # Absent cells are placeholders, not measurements; pin them
                # to 0 so the scaler's offset cannot fabricate a value.
                scaled = np.where(selected.present, scaled, 0.0)
        return selected.with_features(
            scaled, selected.feature_names, present=selected.present
        )

    def transform_series(self, series: Sequence[NodeSeries]) -> np.ndarray:
        """Raw series -> scaled feature matrix ``(N, n_features)``."""
        check_fitted(self, ["selector_", "scaler_"])
        series = list(series)
        if len({s.schema_digest for s in series}) > 1:
            scaled, _ = self.transform_series_masked(series)
            return scaled
        features, names = self.engine.extract_matrix(series)
        inst = self.engine.instrumentation
        with inst.stage("select", items=len(series)):
            pos = {n: i for i, n in enumerate(names)}
            try:
                idx = [pos[n] for n in self.selected_names_]
            except KeyError as e:
                raise KeyError(
                    f"selected feature {e.args[0]!r} missing from extraction layout; "
                    "extractor configuration must match the fitted pipeline"
                ) from None
            selected = features[:, idx]
        with inst.stage("scale", items=len(series)):
            return self.scaler_.transform(selected)

    def transform_series_masked(
        self, series: Sequence[NodeSeries]
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Like :meth:`transform_series` but returns the presence mask too.

        Homogeneous input returns ``(scaled, None)`` via the dense path.
        Mixed input is schema-partitioned; selected features a node's
        schema does not produce come back 0-filled with a False mask cell
        (including features missing from the union layout entirely).
        """
        check_fitted(self, ["selector_", "scaler_"])
        series = list(series)
        if len({s.schema_digest for s in series}) <= 1:
            # Dense fast path only when the single layout covers every
            # selected feature — a schema-partial batch (e.g. CPU nodes
            # under a mixed-trained pipeline) must go through the mask.
            metric_names = (
                self.extractor.metrics
                if self.extractor.metrics is not None
                else series[0].metric_names
            )
            layout = set(self.extractor.feature_names(metric_names))
            if all(n in layout for n in self.selected_names_):
                return self.transform_series(series), None
        table = self.extractor.extract_table(series)
        inst = self.engine.instrumentation
        n, f = len(series), len(self.selected_names_)
        with inst.stage("select", items=n):
            pos = {name: i for i, name in enumerate(table.feature_names)}
            features = np.zeros((n, f))
            present = np.zeros((n, f), dtype=bool)
            for j, name in enumerate(self.selected_names_):
                i = pos.get(name)
                if i is not None:
                    features[:, j] = table.features[:, i]
                    present[:, j] = table.present[:, i]
        with inst.stage("scale", items=n):
            scaled = np.where(present, self.scaler_.transform(features), 0.0)
        return scaled, present

    def transform_single(self, series: NodeSeries) -> np.ndarray:
        """One node run -> one scaled feature row (CoMTE's evaluation path)."""
        scaled, _ = self.transform_series_masked([series])
        return scaled

    # -- persistence --------------------------------------------------------------

    def state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """(metadata, scaler arrays) for the artifact bundle."""
        check_fitted(self, ["selector_", "scaler_"])
        meta = {
            "selected_features": list(self.selected_names_),
            "scaler_kind": self.scaler_kind,
            "n_features": self.n_features,
            "resample_points": self.extractor.resample_points,
            "metrics": list(self.extractor.metrics) if self.extractor.metrics else None,
        }
        return meta, self.scaler_.state()

    @classmethod
    def from_state(
        cls,
        meta: dict,
        scaler_state: dict[str, np.ndarray],
        *,
        extractor: FeatureExtractor | None = None,
        execution: ExecutionConfig | None = None,
    ) -> "DataPipeline":
        """Rebuild a fitted pipeline from persisted deployment metadata."""
        if extractor is None:
            extractor = FeatureExtractor(
                resample_points=meta["resample_points"],
                metrics=meta["metrics"],
            )
        pipe = cls(
            extractor,
            n_features=int(meta["n_features"]),
            scaler_kind=str(meta["scaler_kind"]),
            execution=execution,
        )
        pipe.selected_names_ = tuple(meta["selected_features"])
        pipe.scaler_ = scaler_from_state(pipe.scaler_kind, scaler_state)
        # Selector itself is not needed online; mark fitted via sentinel.
        pipe.selector_ = ChiSquareSelector.sentinel(
            pipe.selected_names_,
            np.zeros(len(pipe.selected_names_)),
            k=pipe.n_features,
        )
        return pipe
