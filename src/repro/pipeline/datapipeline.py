"""DataPipeline (paper Fig. 3): feature extraction + selection + scaling.

The pipeline is fitted once offline — Chi-square selection needs the small
labeled set, the scaler is fitted on training features — and then applied
unchanged online.  Its fitted state (selected feature names, scaler
parameters, extractor configuration) is exactly the "deployment metadata"
the ModelTrainer persists.

Extraction routes through the shared runtime layer: the pipeline owns a
:class:`~repro.runtime.parallel.ParallelExtractor` engine built from the
process-wide :class:`~repro.runtime.config.ExecutionConfig`, so worker
fan-out, feature-row memoisation, and per-stage timers apply to every
consumer that transforms series through a pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.features.extraction import FeatureExtractor
from repro.features.scaling import Scaler, make_scaler, scaler_from_state
from repro.features.selection import ChiSquareSelector
from repro.runtime.config import ExecutionConfig
from repro.runtime.parallel import ParallelExtractor
from repro.telemetry.frame import NodeSeries
from repro.telemetry.sampleset import SampleSet
from repro.util.validation import check_fitted

__all__ = ["DataPipeline"]


class DataPipeline:
    """Fitted transform: raw node series -> scaled, selected feature rows.

    Parameters
    ----------
    extractor:
        The statistical feature extractor, or an already-built
        :class:`ParallelExtractor` engine to adopt as-is.
    n_features:
        Features kept by Chi-square selection.
    scaler_kind:
        ``minmax`` (paper default), ``standard``, or ``robust``.
    execution:
        Runtime knobs for the extraction engine; defaults to the
        process-wide configuration (``PRODIGY_WORKERS`` etc.).
    """

    def __init__(
        self,
        extractor: FeatureExtractor | ParallelExtractor | None = None,
        *,
        n_features: int = 256,
        scaler_kind: str = "minmax",
        execution: ExecutionConfig | None = None,
    ):
        if isinstance(extractor, ParallelExtractor):
            self.engine = extractor
            self.extractor = extractor.extractor
        else:
            self.extractor = extractor if extractor is not None else FeatureExtractor()
            self.engine = ParallelExtractor(self.extractor, config=execution)
        self.n_features = n_features
        self.scaler_kind = scaler_kind
        self.selector_: ChiSquareSelector | None = None
        self.scaler_: Scaler | None = None
        self.selected_names_: tuple[str, ...] | None = None

    # -- offline -------------------------------------------------------------

    def fit(self, samples: SampleSet) -> "DataPipeline":
        """Fit selection on the labeled SampleSet, then the scaler on it."""
        self.selector_ = ChiSquareSelector(k=self.n_features).fit(samples)
        selected = self.selector_.transform(samples)
        self.selected_names_ = selected.feature_names
        self.scaler_ = make_scaler(self.scaler_kind).fit(selected.features)
        return self

    def fit_from_series(
        self,
        series: Sequence[NodeSeries],
        labels: np.ndarray,
        **extract_kwargs,
    ) -> tuple["DataPipeline", SampleSet]:
        """Extract + fit in one step; returns (self, transformed SampleSet)."""
        samples = self.engine.extract(series, labels, **extract_kwargs)
        self.fit(samples)
        return self, self.transform_samples(samples)

    # -- online ---------------------------------------------------------------

    def transform_samples(self, samples: SampleSet) -> SampleSet:
        """Apply selection + scaling to an already-extracted SampleSet."""
        check_fitted(self, ["selector_", "scaler_"])
        inst = self.engine.instrumentation
        with inst.stage("select", items=samples.n_samples):
            selected = samples.select_features(self.selected_names_)
        with inst.stage("scale", items=samples.n_samples):
            scaled = self.scaler_.transform(selected.features)
        return selected.with_features(scaled, selected.feature_names)

    def transform_series(self, series: Sequence[NodeSeries]) -> np.ndarray:
        """Raw series -> scaled feature matrix ``(N, n_features)``."""
        check_fitted(self, ["selector_", "scaler_"])
        series = list(series)
        features, names = self.engine.extract_matrix(series)
        inst = self.engine.instrumentation
        with inst.stage("select", items=len(series)):
            pos = {n: i for i, n in enumerate(names)}
            try:
                idx = [pos[n] for n in self.selected_names_]
            except KeyError as e:
                raise KeyError(
                    f"selected feature {e.args[0]!r} missing from extraction layout; "
                    "extractor configuration must match the fitted pipeline"
                ) from None
            selected = features[:, idx]
        with inst.stage("scale", items=len(series)):
            return self.scaler_.transform(selected)

    def transform_single(self, series: NodeSeries) -> np.ndarray:
        """One node run -> one scaled feature row (CoMTE's evaluation path)."""
        return self.transform_series([series])

    # -- persistence --------------------------------------------------------------

    def state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """(metadata, scaler arrays) for the artifact bundle."""
        check_fitted(self, ["selector_", "scaler_"])
        meta = {
            "selected_features": list(self.selected_names_),
            "scaler_kind": self.scaler_kind,
            "n_features": self.n_features,
            "resample_points": self.extractor.resample_points,
            "metrics": list(self.extractor.metrics) if self.extractor.metrics else None,
        }
        return meta, self.scaler_.state()

    @classmethod
    def from_state(
        cls,
        meta: dict,
        scaler_state: dict[str, np.ndarray],
        *,
        extractor: FeatureExtractor | None = None,
        execution: ExecutionConfig | None = None,
    ) -> "DataPipeline":
        """Rebuild a fitted pipeline from persisted deployment metadata."""
        if extractor is None:
            extractor = FeatureExtractor(
                resample_points=meta["resample_points"],
                metrics=meta["metrics"],
            )
        pipe = cls(
            extractor,
            n_features=int(meta["n_features"]),
            scaler_kind=str(meta["scaler_kind"]),
            execution=execution,
        )
        pipe.selected_names_ = tuple(meta["selected_features"])
        pipe.scaler_ = scaler_from_state(pipe.scaler_kind, scaler_state)
        # Selector itself is not needed online; mark fitted via sentinel.
        pipe.selector_ = ChiSquareSelector.sentinel(
            pipe.selected_names_,
            np.zeros(len(pipe.selected_names_)),
            k=pipe.n_features,
        )
        return pipe
