"""Online anomaly detection (paper Fig. 4's AnomalyDetector module).

Given a job id, the service pulls sampler data through the DataGenerator,
transforms each node's series with the fitted DataPipeline, and emits a
binary prediction per compute node.  It also exposes the raw-series
``predict_proba`` interface CoMTE needs.

All extraction goes through the pipeline's runtime engine, so repeated
scoring of the same job (dashboard refreshes, CoMTE follow-ups) hits the
feature cache, and :meth:`AnomalyDetectorService.runtime_stats` exposes the
per-stage timers for service health monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.prodigy import ProdigyDetector
from repro.pipeline.datagenerator import DataGenerator
from repro.pipeline.datapipeline import DataPipeline
from repro.telemetry.frame import NodeSeries

__all__ = ["NodePrediction", "AnomalyDetectorService"]


@dataclass(frozen=True)
class NodePrediction:
    """Per-node detection result for a job dashboard."""

    job_id: int
    component_id: int
    prediction: int  # 1 anomalous, 0 healthy
    anomaly_score: float
    threshold: float

    @property
    def is_anomalous(self) -> bool:
        return self.prediction == 1


class AnomalyDetectorService:
    """End-to-end online detector over the monitoring database.

    With a :class:`~repro.lifecycle.manager.LifecycleManager` attached,
    every scored node-run also feeds the drift monitor (and, when the run
    was not flagged, the healthy-sample buffer), and a candidate promoted
    out of shadow hot-swaps the served detector.
    """

    def __init__(
        self,
        data_generator: DataGenerator,
        pipeline: DataPipeline,
        detector: ProdigyDetector,
        *,
        lifecycle=None,
    ):
        self.data_generator = data_generator
        self.pipeline = pipeline
        self.detector = detector
        self.lifecycle = lifecycle

    def attach_lifecycle(self, manager) -> None:
        """Attach a LifecycleManager after construction."""
        self.lifecycle = manager

    def as_fleet(self, **fleet_kwargs):
        """A :class:`~repro.fleet.coordinator.FleetCoordinator` over this
        deployment — the scale-out path from one served detector to a
        sharded worker pool.  The service's pipeline, detector, and
        lifecycle manager carry over; ``fleet_kwargs`` are forwarded
        (``n_workers``, ``queue_capacity``, ``stream_kwargs``, ...).
        """
        from repro.fleet.coordinator import FleetCoordinator

        fleet_kwargs.setdefault("lifecycle", self.lifecycle)
        return FleetCoordinator(self.pipeline, self.detector, **fleet_kwargs)

    def runtime_stats(self) -> dict:
        """Engine/cache/stage snapshot of the service's extraction runtime."""
        stats = self.pipeline.engine.stats()
        if self.lifecycle is not None:
            stats["lifecycle"] = {
                "monitor": self.lifecycle.monitor.summary(),
                "drift_events": len(self.lifecycle.drift_events),
            }
        return stats

    def predict_job(self, job_id: int) -> list[NodePrediction]:
        """Binary prediction per compute node of *job_id*."""
        series = self.data_generator.job_series(job_id)
        inst = self.pipeline.engine.instrumentation
        inst.count("service_jobs", 1)
        inst.count("service_nodes", len(series))
        features = self.pipeline.transform_series(series)
        scores = self.detector.anomaly_score(features)
        preds = self.detector.predict(features)
        if self.lifecycle is not None:
            for s, row, sc, p in zip(series, features, scores, preds):
                promoted = self.lifecycle.observe_window(
                    s, row, float(sc), alert=bool(p),
                    active_detector=self.detector,
                )
                if promoted is not None:
                    self.detector = promoted
        return [
            NodePrediction(
                job_id=job_id,
                component_id=s.component_id,
                prediction=int(p),
                anomaly_score=float(sc),
                threshold=float(self.detector.threshold_),
            )
            for s, p, sc in zip(series, preds, scores)
        ]

    def predict_series_batch(self, series: list[NodeSeries]) -> list[NodePrediction]:
        """Predictions for several node series in one engine dispatch.

        The micro-batch companion of :meth:`predict_series`: callers holding
        multiple concurrently-pending runs (stream drains, dashboard fan-in)
        get one block extraction instead of N single-row ones.
        """
        if not series:
            return []
        features = self.pipeline.transform_series(series)
        scores = self.detector.anomaly_score(features)
        preds = self.detector.predict(features)
        return [
            NodePrediction(
                job_id=s.job_id,
                component_id=s.component_id,
                prediction=int(p),
                anomaly_score=float(sc),
                threshold=float(self.detector.threshold_),
            )
            for s, p, sc in zip(series, preds, scores)
        ]

    def predict_series(self, series: NodeSeries) -> NodePrediction:
        """Prediction for one already-preprocessed node series."""
        features = self.pipeline.transform_single(series)
        score = float(self.detector.anomaly_score(features)[0])
        pred = int(self.detector.predict(features)[0])
        return NodePrediction(
            job_id=series.job_id,
            component_id=series.component_id,
            prediction=pred,
            anomaly_score=score,
            threshold=float(self.detector.threshold_),
        )

    def predict_proba_series(self, series: NodeSeries) -> np.ndarray:
        """``[P(healthy), P(anomalous)]`` for a raw series (CoMTE's hook)."""
        features = self.pipeline.transform_single(series)
        return self.detector.predict_proba(features)[0]

    def predict_proba_series_batch(self, series: list[NodeSeries]) -> np.ndarray:
        """``(n, 2)`` probabilities for several raw series in one dispatch.

        The batched CoMTE search hands a whole round of candidate
        substituted series here: one micro-batched extraction plus one
        detector forward instead of N single-series round trips.
        """
        if not series:
            return np.empty((0, 2))
        features = self.pipeline.transform_series(series)
        return self.detector.predict_proba(features)

    def as_series_classifier(self):
        """A :data:`~repro.explain.comte.SeriesClassifier` over this service.

        The returned callable scores one series; its ``classify_batch``
        attribute scores a list in one dispatch, which
        :class:`~repro.explain.evaluators.ClassifierEvaluator` picks up to
        batch candidate evaluation.
        """

        def classify(series: NodeSeries) -> np.ndarray:
            return self.predict_proba_series(series)

        classify.classify_batch = self.predict_proba_series_batch
        return classify
