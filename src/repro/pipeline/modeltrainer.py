"""ModelTrainer (paper Fig. 3): offline training + artifact persistence.

Trains a detector on a fitted :class:`DataPipeline`'s output and writes
everything the online AnomalyDetector needs into an artifact directory:
model weights, model architecture/config, the fitted scaler, and deployment
metadata (selected features, extractor configuration) — the paper's "save
to Shirley's local storage" step.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.prodigy import ProdigyDetector
from repro.pipeline.datapipeline import DataPipeline
from repro.telemetry.sampleset import SampleSet
from repro.util.persistence import ArtifactBundle

__all__ = ["ModelTrainer", "load_detector"]

_FORMAT_VERSION = 1


class ModelTrainer:
    """Trains and persists a Prodigy deployment.

    Parameters
    ----------
    pipeline:
        A *fitted* DataPipeline.
    detector:
        An unfitted :class:`ProdigyDetector` (or compatible model exposing
        ``fit``/``get_state``).
    output_dir:
        Artifact directory.
    """

    def __init__(self, pipeline: DataPipeline, detector: ProdigyDetector, output_dir: str | Path):
        self.pipeline = pipeline
        self.detector = detector
        self.bundle = ArtifactBundle(output_dir)

    def train(self, samples: SampleSet) -> ProdigyDetector:
        """Fit the detector on pipeline-transformed samples and persist.

        ``samples`` is the raw extracted SampleSet (labels included so
        healthy-only training can drop anomalous rows).
        """
        transformed = self.pipeline.transform_samples(samples)
        labels = None if np.all(transformed.labels == -1) else transformed.labels
        self.detector.fit(transformed.features, labels)
        self.save()
        return self.detector

    def save(self) -> Path:
        weights, model_config = self.detector.get_state()
        pipe_meta, scaler_state = self.pipeline.state()
        self.bundle.save_group("weights", weights)
        self.bundle.save_group("scaler", scaler_state)
        return self.bundle.save_metadata(
            {
                "format_version": _FORMAT_VERSION,
                "model": model_config,
                "pipeline": pipe_meta,
            }
        )


def load_detector(artifact_dir: str | Path) -> tuple[DataPipeline, ProdigyDetector]:
    """Reload a persisted deployment: (fitted pipeline, fitted detector)."""
    bundle = ArtifactBundle(artifact_dir)
    if not bundle.exists():
        raise FileNotFoundError(f"no deployment artifacts under {artifact_dir}")
    meta = bundle.load_metadata()
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"artifact format {meta.get('format_version')} unsupported "
            f"(expected {_FORMAT_VERSION})"
        )
    pipeline = DataPipeline.from_state(meta["pipeline"], bundle.load_group("scaler"))
    detector = ProdigyDetector.from_state(bundle.load_group("weights"), meta["model"])
    return pipeline, detector
