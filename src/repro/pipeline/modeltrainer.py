"""ModelTrainer (paper Fig. 3): offline training + artifact persistence.

Trains a detector on a fitted :class:`DataPipeline`'s output and writes
everything the online AnomalyDetector needs into an artifact directory:
model weights, model architecture/config, the fitted scaler, and deployment
metadata (selected features, extractor configuration) — the paper's "save
to Shirley's local storage" step.

Beyond the paper, the trainer also records what the model lifecycle layer
needs: a **training-data fingerprint** (row count, metric-names hash) in
the metadata for registry lineage, and a **reference profile** artifact
group (training anomaly-score sample + a subsample of the transformed
feature matrix) that drift monitors compare live traffic against.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from repro.core.prodigy import ProdigyDetector
from repro.pipeline.datapipeline import DataPipeline
from repro.telemetry.sampleset import SampleSet
from repro.util.persistence import ArtifactBundle

__all__ = ["ModelTrainer", "load_detector", "training_fingerprint", "reference_arrays"]

_FORMAT_VERSION = 1
_SUPPORTED_VERSIONS = (1,)
#: Max transformed-feature rows kept in the persisted reference profile.
_REFERENCE_ROWS = 512


def training_fingerprint(samples: SampleSet) -> dict:
    """Lineage record of a training set: row count + metric-names hash.

    Feature names follow the ``<metric>|<calculator>`` layout, so the
    distinct metric set is recoverable and hashed; two deployments trained
    on the same telemetry schema and row count fingerprint identically.
    """
    metric_names = sorted({str(n).split("|", 1)[0] for n in samples.feature_names})
    digest = hashlib.blake2b(
        "\n".join(metric_names).encode(), digest_size=8
    ).hexdigest()
    return {
        "n_rows": int(samples.n_samples),
        "n_features": int(samples.features.shape[1]),
        "n_metrics": len(metric_names),
        "metric_names_hash": digest,
    }


def reference_arrays(
    detector: ProdigyDetector, features: np.ndarray, labels: np.ndarray | None
) -> dict[str, np.ndarray]:
    """Healthy training scores + feature subsample for drift monitoring."""
    healthy = features if labels is None else features[np.asarray(labels) == 0]
    if healthy.shape[0] == 0:
        healthy = features
    scores = detector.anomaly_score(healthy)
    if healthy.shape[0] > _REFERENCE_ROWS:
        idx = np.unique(
            np.linspace(0, healthy.shape[0] - 1, _REFERENCE_ROWS).round().astype(np.int64)
        )
        healthy = healthy[idx]
    return {"scores": np.asarray(scores, dtype=np.float64), "features": healthy}


class ModelTrainer:
    """Trains and persists a Prodigy deployment.

    Parameters
    ----------
    pipeline:
        A *fitted* DataPipeline.
    detector:
        An unfitted :class:`ProdigyDetector` (or compatible model exposing
        ``fit``/``get_state``).
    output_dir:
        Artifact directory.
    """

    def __init__(self, pipeline: DataPipeline, detector: ProdigyDetector, output_dir: str | Path):
        self.pipeline = pipeline
        self.detector = detector
        self.bundle = ArtifactBundle(output_dir)
        self.fingerprint_: dict | None = None
        self.reference_: dict[str, np.ndarray] | None = None

    def train(self, samples: SampleSet) -> ProdigyDetector:
        """Fit the detector on pipeline-transformed samples and persist.

        ``samples`` is the raw extracted SampleSet (labels included so
        healthy-only training can drop anomalous rows).
        """
        transformed = self.pipeline.transform_samples(samples)
        labels = None if np.all(transformed.labels == -1) else transformed.labels
        self.detector.fit(transformed.features, labels)
        self.fingerprint_ = training_fingerprint(samples)
        self.reference_ = reference_arrays(self.detector, transformed.features, labels)
        self.save()
        return self.detector

    def save(self) -> Path:
        weights, model_config = self.detector.get_state()
        pipe_meta, scaler_state = self.pipeline.state()
        self.bundle.save_group("weights", weights)
        self.bundle.save_group("scaler", scaler_state)
        if self.reference_ is not None:
            self.bundle.save_group("reference", self.reference_)
        metadata = {
            "format_version": _FORMAT_VERSION,
            "model": model_config,
            "pipeline": pipe_meta,
        }
        if self.fingerprint_ is not None:
            metadata["fingerprint"] = self.fingerprint_
        return self.bundle.save_metadata(metadata)


def load_detector(artifact_dir: str | Path) -> tuple[DataPipeline, ProdigyDetector]:
    """Reload a persisted deployment: (fitted pipeline, fitted detector)."""
    bundle = ArtifactBundle(artifact_dir)
    if not bundle.exists():
        raise FileNotFoundError(f"no deployment artifacts under {artifact_dir}")
    meta = bundle.load_metadata()
    if meta.get("format_version") not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"artifact format {meta.get('format_version')!r} in {Path(artifact_dir)} "
            f"unsupported (supported versions: {list(_SUPPORTED_VERSIONS)})"
        )
    pipeline = DataPipeline.from_state(meta["pipeline"], bundle.load_group("scaler"))
    detector = ProdigyDetector.from_state(bundle.load_group("weights"), meta["model"])
    return pipeline, detector
