"""Deployment pipeline: DataGenerator, DataPipeline, ModelTrainer, online detection."""

from repro.pipeline.datagenerator import DataGenerator
from repro.pipeline.datapipeline import DataPipeline
from repro.pipeline.detector_service import AnomalyDetectorService, NodePrediction
from repro.pipeline.modeltrainer import ModelTrainer, load_detector

__all__ = [
    "AnomalyDetectorService",
    "DataGenerator",
    "DataPipeline",
    "ModelTrainer",
    "NodePrediction",
    "load_detector",
]
