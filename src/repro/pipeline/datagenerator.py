"""DataGenerator (paper Sec. 4.2.1, Fig. 3).

Queries raw sampler data from the DSOS store for a job, then applies the
preprocessing the paper describes: join the samplers on common timestamps,
linear-interpolate missing values, difference the accumulating counters,
and trim initialisation/termination transients.  Output is one clean
:class:`NodeSeries` per compute node of the job — the input shape of the
feature pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.dsos.store import DsosStore
from repro.telemetry.frame import NodeSeries
from repro.telemetry.preprocessing import (
    align_common_timestamps,
    difference_counters,
    interpolate_missing,
    trim_edges,
)
from repro.workloads.metrics import MetricCatalog

__all__ = ["DataGenerator"]


class DataGenerator:
    """Raw DSOS rows -> preprocessed per-node series.

    Parameters
    ----------
    store:
        The telemetry database.
    catalog:
        Metric catalog (defines which metrics are accumulating counters).
    trim_seconds:
        Transient trim at each end of a run (paper: 60 s).
    """

    def __init__(self, store: DsosStore, catalog: MetricCatalog, *, trim_seconds: float = 60.0):
        self.store = store
        self.catalog = catalog
        self.trim_seconds = trim_seconds

    def node_series(self, job_id: int, component_id: int) -> NodeSeries:
        """Preprocessed telemetry of one node in one job.

        On heterogeneous fleets a node only reports to the samplers its
        class carries (a CPU node has no ``gpu`` rows), so samplers with no
        data for this node are skipped rather than treated as an error; the
        node's schema is recovered from the store's registry when its final
        column layout matches a registered node class.
        """
        parts = []
        for sampler in self.store.samplers:
            frame = self.store.query(sampler, job_id=job_id, component_id=component_id)
            if frame.n_rows == 0:
                continue
            parts.append(frame.node_series(job_id, component_id))
        if not parts:
            raise LookupError(
                f"no sampler data for job {job_id}, component {component_id}"
            )
        joined = align_common_timestamps(parts)
        # Restore catalog ordering after the per-sampler concatenation,
        # keeping only the columns this node actually reports.
        reported = set(joined.metric_names)
        ordered = [m for m in self.catalog.metric_names if m in reported]
        if not ordered:
            raise LookupError(
                f"job {job_id}, component {component_id}: none of the reported "
                f"columns are in catalog {self.catalog.name!r}"
            )
        joined = joined.select_metrics(ordered)
        clean = interpolate_missing(joined)
        counters = tuple(c for c in self.catalog.counter_names if c in reported)
        clean = difference_counters(clean, counters)
        out = trim_edges(clean, self.trim_seconds)
        schema = self.store.schemas.for_metric_names(out.metric_names)
        if schema is not None:
            out = NodeSeries(
                out.job_id, out.component_id, out.timestamps, out.values,
                out.metric_names, schema=schema,
            )
        return out

    def job_series(self, job_id: int) -> list[NodeSeries]:
        """Preprocessed series for every node that reported data for the job."""
        components = self.store.components(job_id)
        if components.size == 0:
            raise LookupError(f"job {job_id} not found in the store")
        return [self.node_series(job_id, int(c)) for c in components]

    def all_job_ids(self) -> np.ndarray:
        return self.store.jobs()
