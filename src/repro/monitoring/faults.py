"""Data-quality fault model for the monitoring path.

LDMS samples at 1 Hz with minimal overhead, but the node-to-aggregator hop
loses samples and individual sampler reads can jitter or fail per metric.
The paper's preprocessing (linear interpolation, common-timestamp joins)
exists precisely to absorb these artefacts, so the simulator must produce
them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.frame import NodeSeries
from repro.util.rng import ensure_rng

__all__ = ["FaultModel"]


@dataclass(frozen=True)
class FaultModel:
    """Probabilities of the collection artefacts applied per node series.

    Attributes
    ----------
    row_drop_prob:
        Probability an entire sampling instant is lost in aggregation
        (the row never reaches the store).
    value_drop_prob:
        Probability an individual metric read fails (stored as NaN).
    jitter_std:
        Std-dev (seconds) of sampling-time jitter around the 1 Hz grid.
    """

    row_drop_prob: float = 0.01
    value_drop_prob: float = 0.002
    jitter_std: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.row_drop_prob < 1.0:
            raise ValueError("row_drop_prob must be in [0,1)")
        if not 0.0 <= self.value_drop_prob < 1.0:
            raise ValueError("value_drop_prob must be in [0,1)")
        if self.jitter_std < 0.0:
            raise ValueError("jitter_std must be non-negative")

    def apply(self, series: NodeSeries, seed: int | np.random.Generator | None) -> NodeSeries:
        """Return a degraded copy of *series* (never drops everything)."""
        rng = ensure_rng(seed)
        ts = series.timestamps.copy()
        values = series.values.copy()
        n = series.n_timestamps

        if self.jitter_std > 0 and n > 1:
            jitter = rng.normal(0.0, self.jitter_std, size=n)
            # Clamp so the jittered grid stays strictly increasing.
            max_shift = 0.45 * np.min(np.diff(series.timestamps))
            ts = series.timestamps + np.clip(jitter, -max_shift, max_shift)

        if self.value_drop_prob > 0:
            mask = rng.random(values.shape) < self.value_drop_prob
            values[mask] = np.nan

        keep = np.ones(n, dtype=bool)
        if self.row_drop_prob > 0 and n > 2:
            drop = rng.random(n) < self.row_drop_prob
            # Keep endpoints so run boundaries survive.
            drop[0] = drop[-1] = False
            keep = ~drop

        return NodeSeries(
            series.job_id, series.component_id, ts[keep], values[keep], series.metric_names
        )


#: Faultless collection, for tests that need bit-exact telemetry.
FaultModel.NONE = FaultModel(row_drop_prob=0.0, value_drop_prob=0.0, jitter_std=0.0)
