"""Fault models for the monitoring path.

LDMS samples at 1 Hz with minimal overhead, but the node-to-aggregator hop
loses samples and individual sampler reads can jitter or fail per metric.
The paper's preprocessing (linear interpolation, common-timestamp joins)
exists precisely to absorb these artefacts, so the simulator must produce
them (:class:`FaultModel`).

Two further fault families exercise the layers above preprocessing:

* :class:`SensorFault` — a *detectable* collection failure (a sensor stuck
  at one reading, or reporting pure noise) over a time window.  Unlike the
  benign artefacts above, a stuck sensor changes the statistical shape of
  the series, which is exactly what the streaming detector should flag.
* :class:`WorkerFailure` / :class:`FleetFaultSchedule` — scoring-side
  failures for the fleet layer: workers crash mid-run after a scheduled
  number of submitted chunks, and the coordinator must notice (missed
  heartbeats), rebalance the dead worker's shards, and keep scoring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.frame import NodeSeries
from repro.util.rng import ensure_rng

__all__ = ["FaultModel", "SensorFault", "WorkerFailure", "FleetFaultSchedule"]


@dataclass(frozen=True)
class FaultModel:
    """Probabilities of the collection artefacts applied per node series.

    Attributes
    ----------
    row_drop_prob:
        Probability an entire sampling instant is lost in aggregation
        (the row never reaches the store).
    value_drop_prob:
        Probability an individual metric read fails (stored as NaN).
    jitter_std:
        Std-dev (seconds) of sampling-time jitter around the 1 Hz grid.
    """

    row_drop_prob: float = 0.01
    value_drop_prob: float = 0.002
    jitter_std: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.row_drop_prob < 1.0:
            raise ValueError("row_drop_prob must be in [0,1)")
        if not 0.0 <= self.value_drop_prob < 1.0:
            raise ValueError("value_drop_prob must be in [0,1)")
        if self.jitter_std < 0.0:
            raise ValueError("jitter_std must be non-negative")

    def apply(self, series: NodeSeries, seed: int | np.random.Generator | None) -> NodeSeries:
        """Return a degraded copy of *series* (never drops everything)."""
        rng = ensure_rng(seed)
        ts = series.timestamps.copy()
        values = series.values.copy()
        n = series.n_timestamps

        if self.jitter_std > 0 and n > 1:
            jitter = rng.normal(0.0, self.jitter_std, size=n)
            # Clamp so the jittered grid stays strictly increasing, and never
            # jitter a sample before t=0 — stores reject negative timestamps.
            max_shift = 0.45 * np.min(np.diff(series.timestamps))
            ts = series.timestamps + np.clip(jitter, -max_shift, max_shift)
            np.maximum(ts, 0.0, out=ts)

        if self.value_drop_prob > 0:
            mask = rng.random(values.shape) < self.value_drop_prob
            values[mask] = np.nan

        keep = np.ones(n, dtype=bool)
        if self.row_drop_prob > 0 and n > 2:
            drop = rng.random(n) < self.row_drop_prob
            # Keep endpoints so run boundaries survive.
            drop[0] = drop[-1] = False
            keep = ~drop

        return NodeSeries(
            series.job_id, series.component_id, ts[keep], values[keep], series.metric_names
        )


#: Faultless collection, for tests that need bit-exact telemetry.
FaultModel.NONE = FaultModel(row_drop_prob=0.0, value_drop_prob=0.0, jitter_std=0.0)


@dataclass(frozen=True)
class SensorFault:
    """A detectable per-metric collection failure over a time window.

    ``stuck`` holds the affected metrics at their reading from the window
    start (a wedged sampler); ``noise`` replaces them with white noise at
    the series' own scale (a corrupted channel).  Both destroy the
    temporal structure the feature extractor measures, so windows
    overlapping the fault should score anomalous while windows outside it
    should not — the faults↔streaming seam the tests pin down.

    Attributes
    ----------
    metrics:
        Metric names to corrupt (must exist in the series).
    start_fraction, duration_fraction:
        Fault window as fractions of the series length, mirroring
        :func:`repro.anomalies.base.active_window` semantics.
    mode:
        ``"stuck"`` or ``"noise"``.
    """

    metrics: tuple[str, ...]
    start_fraction: float = 0.5
    duration_fraction: float = 0.5
    mode: str = "stuck"

    def __post_init__(self) -> None:
        if not self.metrics:
            raise ValueError("SensorFault needs at least one metric")
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError("start_fraction must be in [0,1)")
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError("duration_fraction must be in (0,1]")
        if self.mode not in ("stuck", "noise"):
            raise ValueError(f"unknown mode {self.mode!r}")

    def window(self, series: NodeSeries) -> tuple[float, float]:
        """``(t_start, t_end)`` of the fault in the series' time base."""
        t0, t1 = float(series.timestamps[0]), float(series.timestamps[-1])
        span = t1 - t0
        start = t0 + span * self.start_fraction
        return start, min(t1, start + span * self.duration_fraction)

    def apply(
        self, series: NodeSeries, seed: int | np.random.Generator | None = None
    ) -> NodeSeries:
        """Return a copy of *series* with the fault imprinted."""
        cols = [series.metric_index(m) for m in self.metrics]
        start, end = self.window(series)
        mask = (series.timestamps >= start) & (series.timestamps <= end)
        if not mask.any():
            return series
        values = series.values.copy()
        if self.mode == "stuck":
            first = int(np.argmax(mask))
            values[np.ix_(mask, cols)] = values[first, cols]
        else:
            rng = ensure_rng(seed)
            block = values[:, cols]
            loc, scale = block.mean(axis=0), np.maximum(block.std(axis=0), 1e-9)
            values[np.ix_(mask, cols)] = rng.normal(
                loc, 3.0 * scale, size=(int(mask.sum()), len(cols))
            )
        return series.with_values(values)


@dataclass(frozen=True)
class WorkerFailure:
    """One scheduled fleet-worker crash.

    The worker stops responding once *after_chunks* chunks have been
    submitted to the coordinator — mid-run, not at a pump boundary, so
    the failure lands while telemetry for its shards is still arriving.
    """

    worker_id: str
    after_chunks: int

    def __post_init__(self) -> None:
        if self.after_chunks < 0:
            raise ValueError("after_chunks must be >= 0")


class FleetFaultSchedule:
    """Injects :class:`WorkerFailure` events during a fleet stream replay.

    The coordinator's ``run_stream`` polls :meth:`due` with its running
    submission count; each failure fires exactly once.  ``triggered``
    records what actually fired, for assertions and status reports.
    """

    def __init__(self, failures: list[WorkerFailure] | tuple[WorkerFailure, ...] = ()):
        self.failures = tuple(failures)
        self.triggered: list[WorkerFailure] = []

    def due(self, n_submitted: int) -> list[str]:
        """Worker ids whose failure fires at this submission count."""
        fired = [
            f for f in self.failures
            if f not in self.triggered and n_submitted > f.after_chunks
        ]
        self.triggered.extend(fired)
        return [f.worker_id for f in fired]

    def summary(self) -> dict:
        return {
            "scheduled": [
                {"worker_id": f.worker_id, "after_chunks": f.after_chunks}
                for f in self.failures
            ],
            "triggered": [f.worker_id for f in self.triggered],
        }
