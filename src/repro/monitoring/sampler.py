"""LDMS-style sampler daemons.

On the real systems every compute node runs ``ldmsd`` with one plugin per
subsystem (``meminfo``, ``vmstat``, ``procstat``), each publishing a metric
*set*.  Here a :class:`SamplerDaemon` slices a node's full telemetry into
those per-sampler sets — giving the aggregation/join code the same shape of
input the production pipeline sees.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.frame import NodeSeries
from repro.workloads.metrics import MetricCatalog

__all__ = ["SamplerSet", "SamplerDaemon"]


@dataclass(frozen=True)
class SamplerSet:
    """One sampler plugin's output for one node run."""

    sampler: str
    series: NodeSeries


class SamplerDaemon:
    """Per-node ``ldmsd``: splits raw node telemetry by sampler plugin.

    Parameters
    ----------
    catalog:
        The metric catalog defining which metric belongs to which sampler.
    samplers:
        Plugin subset to run; defaults to every sampler in the catalog.
    """

    def __init__(self, catalog: MetricCatalog, samplers: tuple[str, ...] | None = None):
        self.catalog = catalog
        available = catalog.samplers()
        if samplers is None:
            samplers = available
        unknown = set(samplers) - set(available)
        if unknown:
            raise KeyError(f"unknown samplers: {sorted(unknown)}")
        self.samplers = tuple(samplers)

    def sample(self, node_telemetry: NodeSeries) -> list[SamplerSet]:
        """Publish one metric set per plugin from full node telemetry."""
        sets = []
        for sampler in self.samplers:
            names = self.catalog.sampler_metrics(sampler)
            sets.append(SamplerSet(sampler, node_telemetry.select_metrics(names)))
        return sets
