"""Online / streaming anomaly detection (the paper's Sec. 7 direction).

The deployed pipeline scores a job after it finishes; operators also want
verdicts *while* a job runs.  :class:`StreamingDetector` keeps a sliding
window of recent telemetry per node, re-extracts features on the window,
and emits a verdict whenever enough new samples arrived — the natural
extension of the paper's design to runtime use (and of its ODA framing,
Sec. 2.2).

Windows shorter than a full run see partial phase structure, so scores are
noisier than post-run scores; the ``consecutive_alerts`` debounce is the
standard operational mitigation.

Window extraction routes through the pipeline's runtime engine
(:class:`~repro.runtime.parallel.ParallelExtractor`): the per-node buffer
keeps only the overlapping window tail (bounded memory, no re-ingest), and
the engine's content-hash cache memoises each evaluated window's feature
row — replaying a stream that was already scored (calibration followed by
live scoring of the same telemetry, threshold re-sweeps, restarts over
buffered data) costs hash lookups instead of re-extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.prodigy import ProdigyDetector
from repro.pipeline.datapipeline import DataPipeline
from repro.telemetry.frame import NodeSeries

__all__ = ["StreamVerdict", "StreamingDetector"]


@dataclass(frozen=True)
class StreamVerdict:
    """One online decision for one node."""

    job_id: int
    component_id: int
    window_end: float
    anomaly_score: float
    alert: bool
    #: consecutive over-threshold windows so far (including this one)
    streak: int


@dataclass
class _NodeState:
    timestamps: list[np.ndarray] = field(default_factory=list)
    values: list[np.ndarray] = field(default_factory=list)
    n_buffered: int = 0
    since_last_eval: int = 0
    streak: int = 0


class StreamingDetector:
    """Sliding-window online scoring over a fitted deployment.

    Parameters
    ----------
    pipeline, detector:
        A fitted :class:`DataPipeline` and :class:`ProdigyDetector`.
    window_seconds:
        Telemetry span scored at each evaluation (must exceed the
        extractor's resampling needs; >= 60 s recommended).
    evaluate_every:
        New samples required between evaluations.
    consecutive_alerts:
        Over-threshold windows needed before ``alert`` turns on — debounces
        phase-boundary noise.
    lifecycle:
        Optional :class:`~repro.lifecycle.manager.LifecycleManager`.  Every
        evaluated window is fed to its drift monitor / healthy buffer /
        shadow harness, and a promoted candidate hot-swaps the detector
        in place (streaks reset; the window threshold becomes the new
        model's run-level threshold until :meth:`calibrate` is re-run).
    """

    def __init__(
        self,
        pipeline: DataPipeline,
        detector: ProdigyDetector,
        *,
        window_seconds: float = 180.0,
        evaluate_every: int = 30,
        consecutive_alerts: int = 2,
        lifecycle=None,
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if evaluate_every < 1:
            raise ValueError("evaluate_every must be >= 1")
        if consecutive_alerts < 1:
            raise ValueError("consecutive_alerts must be >= 1")
        self.pipeline = pipeline
        self.detector = detector
        self.window_seconds = float(window_seconds)
        self.evaluate_every = int(evaluate_every)
        self.consecutive_alerts = int(consecutive_alerts)
        self.lifecycle = lifecycle
        self._states: dict[tuple[int, int], _NodeState] = {}
        #: window-level threshold; defaults to the detector's run-level one
        self.threshold_ = float(detector.threshold_)

    def attach_lifecycle(self, manager) -> None:
        """Attach a LifecycleManager after construction."""
        self.lifecycle = manager

    def calibrate(
        self, healthy_series: list[NodeSeries], *, percentile: float = 99.0
    ) -> float:
        """Set the window threshold from healthy telemetry streams.

        Windowed features follow a different distribution than full-run
        features (partial phase structure), so the run-level threshold is
        systematically tight.  Replaying healthy runs through the window
        pipeline and taking the score percentile — the streaming analogue of
        Sec. 3.3 — fixes that.
        """
        scores: list[float] = []
        for series in healthy_series:
            step = max(self.evaluate_every, 1)
            for end in range(step, series.n_timestamps + 1, step):
                start_t = series.timestamps[end - 1] - self.window_seconds
                mask = series.timestamps[:end] >= start_t
                if mask.sum() < 8:
                    continue
                window = NodeSeries(
                    series.job_id,
                    series.component_id,
                    series.timestamps[:end][mask],
                    series.values[:end][mask],
                    series.metric_names,
                )
                if window.duration < self.window_seconds * 0.5:
                    continue
                scores.append(self._score_window(window))
        if not scores:
            raise ValueError("no healthy windows long enough to calibrate on")
        self.threshold_ = float(np.percentile(scores, percentile))
        return self.threshold_

    def ingest(self, chunk: NodeSeries) -> StreamVerdict | None:
        """Feed a telemetry chunk for one node; returns a verdict when due.

        Chunks must arrive in time order per (job, node).  ``None`` means
        "not enough new data yet".
        """
        pending = self._buffer_chunk(chunk)
        if pending is None:
            return None
        key, window = pending
        features, score = self._evaluate_window(window)
        return self._emit_verdict(key, window, features, score)

    def ingest_many(self, chunks: list[NodeSeries]) -> list[StreamVerdict]:
        """Micro-batched ingest: one verdict per due window, in chunk order.

        All chunks are buffered first, then every window that comes due is
        extracted in a *single* feature batch through the pipeline engine —
        one ``(N, T, M)`` block instead of N ``(1, T, M)`` extractions, so
        concurrently-reporting nodes share each metric slab's context and
        one engine dispatch.  Verdicts (scoring, streaks, lifecycle
        observation) are then emitted sequentially in arrival order, exactly
        as repeated :meth:`ingest` calls would; if a lifecycle promotion
        hot-swaps the detector mid-batch, later windows in the same batch
        are scored by the new model, matching sequential semantics (their
        already-extracted features are model-independent).
        """
        pending: list[tuple[tuple[int, int], NodeSeries]] = []
        for chunk in chunks:
            p = self._buffer_chunk(chunk)
            if p is not None:
                pending.append(p)
        if not pending:
            return []
        windows = [window for _, window in pending]
        engine = getattr(self.pipeline, "engine", None)
        if engine is not None and engine.config.instrument:
            engine.instrumentation.count("stream_evaluations", len(windows))
            engine.instrumentation.count("microbatch_batches", 1)
            engine.instrumentation.count("microbatch_windows", len(windows))
        features = self.pipeline.transform_series(windows)
        verdicts = []
        for (key, window), row in zip(pending, features):
            features_row = row[None, :]
            score = float(self.detector.anomaly_score(features_row)[0])
            verdicts.append(self._emit_verdict(key, window, features_row, score))
        return verdicts

    def _buffer_chunk(
        self, chunk: NodeSeries
    ) -> tuple[tuple[int, int], NodeSeries] | None:
        """Buffer one chunk; return ``(key, window)`` when evaluation is due."""
        key = (chunk.job_id, chunk.component_id)
        state = self._states.setdefault(key, _NodeState())
        if state.timestamps and chunk.timestamps[0] <= state.timestamps[-1][-1]:
            raise ValueError(f"out-of-order chunk for node {key}")
        state.timestamps.append(chunk.timestamps)
        state.values.append(chunk.values)
        state.n_buffered += chunk.n_timestamps
        state.since_last_eval += chunk.n_timestamps

        if state.since_last_eval < self.evaluate_every:
            return None
        window = self._window_series(key, chunk.metric_names)
        if window is None or window.duration < self.window_seconds * 0.5:
            return None
        state.since_last_eval = 0
        return key, window

    def _emit_verdict(
        self,
        key: tuple[int, int],
        window: NodeSeries,
        features: np.ndarray,
        score: float,
    ) -> StreamVerdict:
        """Streak bookkeeping, lifecycle observation, and verdict assembly."""
        state = self._states[key]
        over = score > self.threshold_
        state.streak = state.streak + 1 if over else 0
        verdict = StreamVerdict(
            job_id=key[0],
            component_id=key[1],
            window_end=float(window.timestamps[-1]),
            anomaly_score=score,
            alert=state.streak >= self.consecutive_alerts,
            streak=state.streak,
        )
        if self.lifecycle is not None:
            promoted = self.lifecycle.observe_window(
                window, features[0], score,
                alert=verdict.alert, active_detector=self.detector,
            )
            if promoted is not None:
                self._swap_detector(promoted)
        return verdict

    def _swap_detector(self, detector: ProdigyDetector) -> None:
        """Hot-swap in a promoted model; alert streaks start clean."""
        self.detector = detector
        self.threshold_ = float(detector.threshold_)
        for state in self._states.values():
            state.streak = 0

    def _score_window(self, window: NodeSeries) -> float:
        """Extract (engine-cached) + select + scale + score one window."""
        return self._evaluate_window(window)[1]

    def _evaluate_window(self, window: NodeSeries):
        """(feature rows, score) for one window — the row feeds lifecycle."""
        engine = getattr(self.pipeline, "engine", None)
        if engine is not None and engine.config.instrument:
            engine.instrumentation.count("stream_evaluations", 1)
        features = self.pipeline.transform_single(window)
        return features, float(self.detector.anomaly_score(features)[0])

    def runtime_stats(self) -> dict:
        """Runtime snapshot of the extraction engine plus buffer occupancy."""
        engine = getattr(self.pipeline, "engine", None)
        stats = engine.stats() if engine is not None else {}
        stats["buffered_samples"] = {
            f"{job}:{comp}": state.n_buffered
            for (job, comp), state in sorted(self._states.items())
        }
        if self.lifecycle is not None:
            stats["lifecycle"] = {
                "monitor": self.lifecycle.monitor.summary(),
                "shadow": (
                    self.lifecycle.shadow.summary()
                    if self.lifecycle.shadow is not None else None
                ),
                "drift_events": len(self.lifecycle.drift_events),
            }
        return stats

    def _window_series(
        self, key: tuple[int, int], metric_names: tuple[str, ...]
    ) -> NodeSeries | None:
        state = self._states[key]
        ts = np.concatenate(state.timestamps)
        vals = np.vstack(state.values)
        cutoff = ts[-1] - self.window_seconds
        keep = ts >= cutoff
        if keep.sum() < 8:  # not enough context to resample meaningfully
            return None
        # Drop aged-out data so per-node memory stays bounded.
        state.timestamps = [ts[keep]]
        state.values = [vals[keep]]
        state.n_buffered = int(keep.sum())
        return NodeSeries(key[0], key[1], ts[keep], vals[keep], metric_names)

    def reset(self, job_id: int, component_id: int) -> None:
        """Forget a node's buffered telemetry (job ended / node reassigned)."""
        self._states.pop((job_id, component_id), None)

    def tracked_nodes(self) -> list[tuple[int, int]]:
        """Node keys with buffered state, deterministically sorted.

        The fleet router and cluster rollup iterate this to enumerate a
        shard's nodes; sorted output keeps rebalance moves, status
        payloads, and test expectations independent of ingest order.
        """
        return sorted(self._states)
