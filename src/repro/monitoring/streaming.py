"""Online / streaming anomaly detection (the paper's Sec. 7 direction).

The deployed pipeline scores a job after it finishes; operators also want
verdicts *while* a job runs.  :class:`StreamingDetector` keeps a sliding
window of recent telemetry per node, extracts features on the window, and
emits a verdict whenever enough new samples arrived — the natural
extension of the paper's design to runtime use (and of its ODA framing,
Sec. 2.2).

Windows shorter than a full run see partial phase structure, so scores are
noisier than post-run scores; the ``consecutive_alerts`` debounce is the
standard operational mitigation.

Per-node telemetry lives in a :class:`~repro.features.ringbuffer.NodeRingBuffer`
— one preallocated ``(capacity, M)`` block per node, trimmed to the window
span on *every* ingest (bounded memory even for nodes whose windows never
come due), with the evaluation window materialised as a slice instead of a
list-of-chunks concatenation.  Two feature paths run on top of it:

* ``streaming_mode="batch"`` (default) — recompute every calculator on the
  materialised window through the pipeline's runtime engine
  (:class:`~repro.runtime.parallel.ParallelExtractor`), whose content-hash
  cache memoises replayed windows.  This is the parity oracle.
* ``streaming_mode="rolling"`` — O(1) sliding-update kernels
  (:class:`~repro.features.rolling.RollingNodeEngine`) fed by the ring's
  admit/evict deltas; calculators without a rolling kernel fall back to
  the batch kernels on the window view, per calculator.  Requires a fitted
  :class:`DataPipeline` whose extractor does *not* resample
  (``resample_points=None``): resampling re-grids every window onto a
  shifting time axis that no sliding accumulator can track.

The mode defaults from :func:`~repro.runtime.config.get_execution_config`
(``PRODIGY_STREAMING_MODE`` / ``--streaming-mode``), so fleet workers —
including forked process-transport workers — inherit it with no plumbing.
Both modes share calibration (batch-scored, so thresholds are identical)
and verdict semantics: same stream in, same (score, alert, streak) out,
to the rolling engine's ≤ 1e-9 parity bound.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.core.prodigy import ProdigyDetector
from repro.features.ringbuffer import NodeRingBuffer
from repro.features.rolling import ROLLING_LAGS, RollingNodeEngine, RollingPlan
from repro.pipeline.datapipeline import DataPipeline
from repro.runtime.config import STREAMING_MODES, get_execution_config
from repro.telemetry.frame import NodeSeries

__all__ = ["StreamVerdict", "StreamingDetector"]

#: Context rows the rolling kernels need around admit/evict boundaries
#: (the largest autocorrelation lag).
_MAX_LAG = max(ROLLING_LAGS)


@dataclass(frozen=True)
class StreamVerdict:
    """One online decision for one node."""

    job_id: int
    component_id: int
    window_end: float
    anomaly_score: float
    alert: bool
    #: consecutive over-threshold windows so far (including this one)
    streak: int


class _NodeState:
    """Ring-backed buffer + rolling accumulators + debounce for one node."""

    __slots__ = ("ring", "metric_names", "rolling", "last_ts", "since_last_eval", "streak")

    def __init__(self, metric_names: tuple[str, ...], rolling: RollingNodeEngine | None):
        self.metric_names = metric_names
        self.ring = NodeRingBuffer(len(metric_names))
        self.rolling = rolling
        #: newest timestamp ever admitted — survives full eviction, so the
        #: out-of-order guard cannot be defeated by an idle gap
        self.last_ts = -np.inf
        self.since_last_eval = 0
        self.streak = 0


class StreamingDetector:
    """Sliding-window online scoring over a fitted deployment.

    Parameters
    ----------
    pipeline, detector:
        A fitted :class:`DataPipeline` and :class:`ProdigyDetector`.
    window_seconds:
        Telemetry span scored at each evaluation (must exceed the
        extractor's resampling needs; >= 60 s recommended).
    evaluate_every:
        New samples required between evaluations.
    consecutive_alerts:
        Over-threshold windows needed before ``alert`` turns on — debounces
        phase-boundary noise.
    lifecycle:
        Optional :class:`~repro.lifecycle.manager.LifecycleManager`.  Every
        evaluated window is fed to its drift monitor / healthy buffer /
        shadow harness, and a promoted candidate hot-swaps the detector
        in place (streaks reset; the window threshold becomes the new
        model's run-level threshold until :meth:`calibrate` is re-run).
    streaming_mode:
        ``"batch"`` or ``"rolling"`` (see the module docstring).  ``None``
        (the default) takes the process execution config's mode.
    """

    def __init__(
        self,
        pipeline: DataPipeline,
        detector: ProdigyDetector,
        *,
        window_seconds: float = 180.0,
        evaluate_every: int = 30,
        consecutive_alerts: int = 2,
        lifecycle=None,
        streaming_mode: str | None = None,
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if evaluate_every < 1:
            raise ValueError("evaluate_every must be >= 1")
        if consecutive_alerts < 1:
            raise ValueError("consecutive_alerts must be >= 1")
        if streaming_mode is None:
            streaming_mode = get_execution_config().streaming_mode
        if streaming_mode not in STREAMING_MODES:
            raise ValueError(
                f"streaming_mode must be one of {STREAMING_MODES}, "
                f"got {streaming_mode!r}"
            )
        self.pipeline = pipeline
        self.detector = detector
        self.window_seconds = float(window_seconds)
        self.evaluate_every = int(evaluate_every)
        self.consecutive_alerts = int(consecutive_alerts)
        self.lifecycle = lifecycle
        self.streaming_mode = streaming_mode
        if streaming_mode == "rolling":
            extractor = getattr(pipeline, "extractor", None)
            if extractor is None or getattr(pipeline, "selected_names_", None) is None:
                raise ValueError(
                    "streaming_mode='rolling' needs a fitted DataPipeline "
                    "(extractor + selected feature names); duck-typed pipelines "
                    "must use streaming_mode='batch'"
                )
            if extractor.resample_points is not None:
                raise ValueError(
                    "streaming_mode='rolling' requires an extractor with "
                    "resample_points=None: resampling re-grids every window "
                    "onto a shifting time axis that sliding accumulators "
                    "cannot track; fit the deployment without resampling or "
                    "use streaming_mode='batch'"
                )
        self._states: dict[tuple[int, int], _NodeState] = {}
        #: rolling evaluation plans shared across nodes with one schema
        self._plans: dict[tuple[str, ...], RollingPlan] = {}
        #: window-level threshold; defaults to the detector's run-level one
        self.threshold_ = float(detector.threshold_)

    def attach_lifecycle(self, manager) -> None:
        """Attach a LifecycleManager after construction."""
        self.lifecycle = manager

    def calibrate(
        self, healthy_series: list[NodeSeries], *, percentile: float = 99.0
    ) -> float:
        """Set the window threshold from healthy telemetry streams.

        Windowed features follow a different distribution than full-run
        features (partial phase structure), so the run-level threshold is
        systematically tight.  Replaying healthy runs through the window
        pipeline and taking the score percentile — the streaming analogue of
        Sec. 3.3 — fixes that.

        Window bounds come from ``np.searchsorted`` over the (sorted)
        timestamps — O(T log T) over a replayed series instead of the old
        O(T²) boolean mask per step — and scoring always runs the batch
        path, so both streaming modes calibrate to the identical threshold.
        """
        scores: list[float] = []
        for series in healthy_series:
            step = max(self.evaluate_every, 1)
            ts = series.timestamps
            for end in range(step, series.n_timestamps + 1, step):
                start_t = ts[end - 1] - self.window_seconds
                lo = int(np.searchsorted(ts[:end], start_t, side="left"))
                if end - lo < 8:
                    continue
                window = NodeSeries(
                    series.job_id,
                    series.component_id,
                    ts[lo:end],
                    series.values[lo:end],
                    series.metric_names,
                )
                if window.duration < self.window_seconds * 0.5:
                    continue
                scores.append(self._score_window(window))
        if not scores:
            raise ValueError("no healthy windows long enough to calibrate on")
        self.threshold_ = float(np.percentile(scores, percentile))
        return self.threshold_

    def ingest(self, chunk: NodeSeries) -> StreamVerdict | None:
        """Feed a telemetry chunk for one node; returns a verdict when due.

        Chunks must arrive in time order per (job, node).  ``None`` means
        "not enough new data yet".
        """
        pending = self._buffer_chunk(chunk)
        if pending is None:
            return None
        key, window = pending
        if self.streaming_mode == "rolling":
            features = self._rolling_features(key)
            score = float(self.detector.anomaly_score(features)[0])
        else:
            features, score = self._evaluate_window(window)
        return self._emit_verdict(key, window, features, score)

    def ingest_many(self, chunks: list[NodeSeries]) -> list[StreamVerdict]:
        """Micro-batched ingest: one verdict per due window, in chunk order.

        All chunks are buffered first.  In batch mode every due window is
        then extracted in as few feature batches as possible through the
        pipeline engine — one ``(N, T, M)`` block per distinct window
        length instead of N ``(1, T, M)`` extractions, so
        concurrently-reporting nodes share each metric slab's context and
        one engine dispatch.  In rolling mode each due window is an O(1)
        accumulator evaluation, so windows are evaluated directly.
        Verdicts (scoring, streaks, lifecycle observation) are emitted
        sequentially in arrival order, exactly as repeated :meth:`ingest`
        calls would; if a lifecycle promotion hot-swaps the detector
        mid-batch, later windows in the same batch are scored by the new
        model, matching sequential semantics (their already-extracted
        features are model-independent).

        Rolling-mode features are read from the accumulators *at the
        moment each window comes due*, inside the buffering loop — a
        node contributing several chunks to one micro-batch keeps
        advancing its accumulators, and a deferred read would see state
        newer than the due window.  Scoring still happens at emission
        time, preserving the hot-swap semantics above.
        """
        if self.streaming_mode == "rolling":
            rolled: list[tuple[tuple[int, int], NodeSeries, np.ndarray]] = []
            for chunk in chunks:
                p = self._buffer_chunk(chunk)
                if p is not None:
                    key, window = p
                    rolled.append((key, window, self._rolling_features(key)))
            verdicts = []
            for key, window, features in rolled:
                score = float(self.detector.anomaly_score(features)[0])
                verdicts.append(self._emit_verdict(key, window, features, score))
            return verdicts

        pending: list[tuple[tuple[int, int], NodeSeries]] = []
        for chunk in chunks:
            p = self._buffer_chunk(chunk)
            if p is not None:
                pending.append(p)
        if not pending:
            return []
        engine = getattr(self.pipeline, "engine", None)
        instrument = engine is not None and engine.config.instrument

        windows = [window for _, window in pending]
        if instrument:
            engine.instrumentation.count("stream_evaluations", len(windows))
            engine.instrumentation.count("microbatch_batches", 1)
            engine.instrumentation.count("microbatch_windows", len(windows))
        rows: list[np.ndarray] = [None] * len(windows)  # type: ignore[list-item]
        extractor = getattr(self.pipeline, "extractor", None)
        if extractor is not None and getattr(extractor, "resample_points", None) is None:
            # Without resampling, windows of different lengths cannot share
            # one stacked block: batch per (length, schema) group, in a
            # deterministic first-seen order.
            groups: dict[tuple, list[int]] = {}
            for i, w in enumerate(windows):
                groups.setdefault((w.n_timestamps, w.schema_digest), []).append(i)
            for idxs in groups.values():
                feats, _ = self.pipeline.transform_series_masked(
                    [windows[i] for i in idxs]
                )
                for i, row in zip(idxs, feats):
                    rows[i] = row
        else:
            feats = self.pipeline.transform_series(windows)
            for i, row in enumerate(feats):
                rows[i] = row
        verdicts = []
        for (key, window), row in zip(pending, rows):
            features_row = row[None, :]
            score = float(self.detector.anomaly_score(features_row)[0])
            verdicts.append(self._emit_verdict(key, window, features_row, score))
        return verdicts

    def _buffer_chunk(
        self, chunk: NodeSeries
    ) -> tuple[tuple[int, int], NodeSeries] | None:
        """Buffer one chunk; return ``(key, window)`` when evaluation is due.

        The ring is trimmed to the window span here, on *every* chunk —
        not lazily at evaluation time — so a node whose windows never come
        due (sparse sampling, short duration) holds bounded memory.  Rows
        can only age out, never age back in, so the evaluation window is
        identical to the lazily-trimmed one.
        """
        key = (chunk.job_id, chunk.component_id)
        if chunk.n_timestamps == 0:
            raise ValueError(f"empty chunk for node {key}")
        state = self._states.get(key)
        if state is None:
            state = self._make_state(chunk.metric_names)
            self._states[key] = state
        if chunk.n_metrics != state.ring.n_metrics:
            raise ValueError(
                f"chunk for node {key} has {chunk.n_metrics} metrics, "
                f"buffer was created with {state.ring.n_metrics}"
            )
        if chunk.timestamps[0] <= state.last_ts:
            raise ValueError(f"out-of-order chunk for node {key}")
        state.last_ts = float(chunk.timestamps[-1])

        ring, rolling = state.ring, state.rolling
        cutoff = state.last_ts - self.window_seconds
        ev_ts, ev_vals = ring.evict_before(cutoff)
        if rolling is not None and ev_ts.shape[0]:
            rolling.evict(ev_vals, ring.head_rows(_MAX_LAG))
        tail = ring.tail_rows(_MAX_LAG) if rolling is not None else None
        ring.append(chunk.timestamps, chunk.values)
        if rolling is not None:
            rolling.admit(chunk.values, tail)
        # A chunk longer than the window leaves a stale prefix of itself
        # (only possible when the first eviction emptied the ring).
        ev2_ts, ev2_vals = ring.evict_before(cutoff)
        if rolling is not None and ev2_ts.shape[0]:
            rolling.evict(ev2_vals, ring.head_rows(_MAX_LAG))

        engine = getattr(self.pipeline, "engine", None)
        if engine is not None and engine.config.instrument:
            evicted = ev_ts.shape[0] + ev2_ts.shape[0]
            if evicted:
                engine.instrumentation.count("ring_evictions", evicted)
            if rolling is not None:
                engine.instrumentation.count("rolling_updates", 1)

        state.since_last_eval += chunk.n_timestamps
        if state.since_last_eval < self.evaluate_every:
            return None
        if ring.size < 8:  # not enough context to extract meaningfully
            return None
        if ring.duration < self.window_seconds * 0.5:
            return None
        state.since_last_eval = 0
        ts, vals = ring.window()
        return key, NodeSeries(key[0], key[1], ts, vals, state.metric_names)

    def _make_state(self, metric_names: tuple[str, ...]) -> _NodeState:
        if self.streaming_mode != "rolling":
            return _NodeState(metric_names, None)
        plan = self._plans.get(metric_names)
        if plan is None:
            plan = RollingPlan(self.pipeline, metric_names)
            self._plans[metric_names] = plan
        state = _NodeState(metric_names, None)
        state.rolling = RollingNodeEngine(plan, state.ring)
        return state

    def _emit_verdict(
        self,
        key: tuple[int, int],
        window: NodeSeries,
        features: np.ndarray,
        score: float,
    ) -> StreamVerdict:
        """Streak bookkeeping, lifecycle observation, and verdict assembly."""
        state = self._states[key]
        over = score > self.threshold_
        state.streak = state.streak + 1 if over else 0
        verdict = StreamVerdict(
            job_id=key[0],
            component_id=key[1],
            window_end=float(window.timestamps[-1]),
            anomaly_score=score,
            alert=state.streak >= self.consecutive_alerts,
            streak=state.streak,
        )
        if self.lifecycle is not None:
            promoted = self.lifecycle.observe_window(
                window, features[0], score,
                alert=verdict.alert, active_detector=self.detector,
            )
            if promoted is not None:
                self._swap_detector(promoted)
        return verdict

    def _swap_detector(self, detector: ProdigyDetector) -> None:
        """Hot-swap in a promoted model; alert streaks start clean.

        Rolling accumulators are feature-level state, independent of the
        detector, so they carry straight across a swap.
        """
        self.detector = detector
        self.threshold_ = float(detector.threshold_)
        for state in self._states.values():
            state.streak = 0

    def _score_window(self, window: NodeSeries) -> float:
        """Extract (engine-cached) + select + scale + score one window."""
        return self._evaluate_window(window)[1]

    def _evaluate_window(self, window: NodeSeries):
        """(feature rows, score) for one window — the row feeds lifecycle."""
        engine = getattr(self.pipeline, "engine", None)
        if engine is not None and engine.config.instrument:
            engine.instrumentation.count("stream_evaluations", 1)
        features = self.pipeline.transform_single(window)
        return features, float(self.detector.anomaly_score(features)[0])

    def _rolling_features(self, key: tuple[int, int]) -> np.ndarray:
        """Feature rows from the node's rolling accumulators, read *now*.

        Raw rolling/fallback values are assembled by the node engine; the
        scale + mask step here mirrors ``transform_series_masked`` exactly
        (absent metrics scale from 0 and are re-zeroed under the mask), so
        a clean window's row matches the batch path bit-for-bit and a
        NaN-bearing one matches through the shared fallback kernels.

        Must be called while the accumulators still describe the due
        window — before any further chunk for this node is buffered.
        """
        state = self._states[key]
        engine = getattr(self.pipeline, "engine", None)
        instrument = engine is not None and engine.config.instrument
        stage = (
            engine.instrumentation.stage("stream:rolling")
            if instrument else nullcontext()
        )
        with stage:
            if instrument:
                engine.instrumentation.count("stream_evaluations", 1)
            before = state.rolling.fallback_calc_runs
            raw, present = state.rolling.evaluate()
            if instrument:
                delta = state.rolling.fallback_calc_runs - before
                if delta:
                    engine.instrumentation.count("rolling_fallback_calcs", delta)
            scaled = self.pipeline.scaler_.transform(raw)
            features = np.where(present[None, :], scaled, 0.0)
        return features

    def runtime_stats(self) -> dict:
        """Runtime snapshot of the extraction engine plus buffer occupancy."""
        engine = getattr(self.pipeline, "engine", None)
        stats = engine.stats() if engine is not None else {}
        stats["streaming_mode"] = self.streaming_mode
        stats["buffered_samples"] = {
            f"{job}:{comp}": state.ring.size
            for (job, comp), state in sorted(self._states.items())
        }
        if self.streaming_mode == "rolling":
            stats["rolling"] = {
                "updates": sum(s.rolling.updates for s in self._states.values()),
                "evictions": sum(s.rolling.evictions for s in self._states.values()),
                "fallback_calc_runs": sum(
                    s.rolling.fallback_calc_runs for s in self._states.values()
                ),
                "entropy_slab_reuses": sum(
                    s.rolling.slabs.reuses
                    for s in self._states.values() if s.rolling.slabs is not None
                ),
            }
        if self.lifecycle is not None:
            stats["lifecycle"] = {
                "monitor": self.lifecycle.monitor.summary(),
                "shadow": (
                    self.lifecycle.shadow.summary()
                    if self.lifecycle.shadow is not None else None
                ),
                "drift_events": len(self.lifecycle.drift_events),
            }
        return stats

    def reset(self, job_id: int, component_id: int) -> None:
        """Forget a node's buffered telemetry (job ended / node reassigned)."""
        self._states.pop((job_id, component_id), None)

    def tracked_nodes(self) -> list[tuple[int, int]]:
        """Node keys with buffered state, deterministically sorted.

        The fleet router and cluster rollup iterate this to enumerate a
        shard's nodes; sorted output keeps rebalance moves, status
        payloads, and test expectations independent of ingest order.
        """
        return sorted(self._states)
