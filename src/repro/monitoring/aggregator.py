"""Monitoring aggregation: node samplers -> monitoring-cluster store.

Mirrors the Eclipse deployment (Sec. 5.1): ``ldmsd`` samplers on every
compute node publish metric sets each second; the aggregation hop to the
monitoring cluster (Shirley) is where collection faults occur; the
aggregated stream is ingested into the DSOS database.

:class:`Aggregator` performs that hop in simulation — per-sampler fault
injection, then ingestion of long-format rows into any store exposing an
``ingest(sampler, frame)`` method (see :mod:`repro.dsos`).
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.monitoring.faults import FaultModel
from repro.monitoring.sampler import SamplerDaemon
from repro.telemetry.frame import TelemetryFrame
from repro.util.rng import derive_seed, ensure_rng
from repro.workloads.cluster import JobResult
from repro.workloads.metrics import MetricCatalog

__all__ = ["TelemetrySink", "Aggregator"]


class TelemetrySink(Protocol):
    """Destination for aggregated telemetry (implemented by DsosStore)."""

    def ingest(self, sampler: str, frame: TelemetryFrame) -> int: ...


class Aggregator:
    """Collects sampler sets from all nodes of executed jobs into a sink.

    Parameters
    ----------
    catalog:
        Metric catalog shared with the job runner.
    sink:
        Ingestion target (e.g. :class:`repro.dsos.DsosStore`).
    faults:
        Collection fault model; defaults to light, realistic loss rates.
    seed:
        Seed for the fault processes.
    """

    def __init__(
        self,
        catalog: MetricCatalog,
        sink: TelemetrySink,
        *,
        faults: FaultModel | None = None,
        seed=None,
    ):
        self.catalog = catalog
        self.sink = sink
        self.faults = faults if faults is not None else FaultModel()
        self.daemon = SamplerDaemon(catalog)
        self._rng = ensure_rng(seed)

    def collect_job(self, result: JobResult) -> int:
        """Aggregate one job's telemetry; returns rows ingested."""
        total = 0
        for comp in result.component_ids:
            node_series = result.frame.node_series(result.spec.job_id, comp)
            for sampler_set in self.daemon.sample(node_series):
                degraded = self.faults.apply(sampler_set.series, derive_seed(self._rng))
                frame = TelemetryFrame.from_node_series([degraded])
                total += self.sink.ingest(sampler_set.sampler, frame)
        return total

    def collect_campaign(self, results: Sequence[JobResult]) -> int:
        """Aggregate a whole data-collection campaign."""
        return sum(self.collect_job(r) for r in results)
