"""LDMS-equivalent monitoring: samplers, aggregation, collection faults."""

from repro.monitoring.aggregator import Aggregator, TelemetrySink
from repro.monitoring.faults import FaultModel
from repro.monitoring.sampler import SamplerDaemon, SamplerSet
from repro.monitoring.streaming import StreamingDetector, StreamVerdict

__all__ = [
    "Aggregator",
    "FaultModel",
    "SamplerDaemon",
    "SamplerSet",
    "StreamVerdict",
    "StreamingDetector",
    "TelemetrySink",
]
