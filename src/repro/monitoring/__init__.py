"""LDMS-equivalent monitoring: samplers, aggregation, collection faults."""

from repro.monitoring.aggregator import Aggregator, TelemetrySink
from repro.monitoring.faults import (
    FaultModel,
    FleetFaultSchedule,
    SensorFault,
    WorkerFailure,
)
from repro.monitoring.sampler import SamplerDaemon, SamplerSet
from repro.monitoring.streaming import StreamingDetector, StreamVerdict

__all__ = [
    "Aggregator",
    "FaultModel",
    "FleetFaultSchedule",
    "SamplerDaemon",
    "SamplerSet",
    "SensorFault",
    "StreamVerdict",
    "StreamingDetector",
    "TelemetrySink",
    "WorkerFailure",
]
