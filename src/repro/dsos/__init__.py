"""DSOS-equivalent append-oriented, schema'd telemetry store."""

from repro.dsos.store import Container, DsosStore, Schema

__all__ = ["Container", "DsosStore", "Schema"]
