"""DSOS-equivalent storage.

The production deployment stores aggregated LDMS data in DSOS (Distributed
Scalable Object Storage): schema'd containers optimised for continuous
ingest and indexed queries by job, component, and time.  This module
reproduces that interface in-process:

* one :class:`Container` per sampler schema (``meminfo``, ``vmstat``, ...),
* append-only block ingest (cheap during collection),
* consolidated, index-backed queries (built lazily, invalidated on ingest),
* the query API the paper's DataGenerator uses: *give me all sampler data
  for job J* (optionally per component / time window).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.telemetry.frame import TelemetryFrame
from repro.telemetry.schema import MetricSchema, SchemaRegistry
from repro.util.validation import check_ingest_timestamps

__all__ = ["Schema", "Container", "DsosStore"]


@dataclass(frozen=True)
class Schema:
    """Attribute layout of one container (index columns + metric columns)."""

    name: str
    metric_names: tuple[str, ...]

    INDEX_ATTRS = ("job_id", "component_id", "timestamp")

    def __post_init__(self) -> None:
        if not self.metric_names:
            raise ValueError(f"schema {self.name!r} needs at least one metric")
        if len(set(self.metric_names)) != len(self.metric_names):
            raise ValueError(f"schema {self.name!r} has duplicate metrics")


class Container:
    """Append-oriented storage of long-format rows for one schema."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._blocks: list[TelemetryFrame] = []
        self._consolidated: TelemetryFrame | None = None
        self._job_index: dict[int, np.ndarray] | None = None
        self._jobs: np.ndarray | None = None

    # -- ingest --------------------------------------------------------------

    def append(self, frame: TelemetryFrame) -> int:
        """Ingest a block of rows; returns the number of rows appended."""
        if frame.metric_names != self.schema.metric_names:
            got, want = frame.metric_names, self.schema.metric_names
            mismatch = f"frame has {len(got)} columns, schema has {len(want)}"
            for i, (g, w) in enumerate(zip(got, want)):
                if g != w:
                    mismatch = f"first mismatch at column {i}: frame {g!r} vs schema {w!r}"
                    break
            raise ValueError(
                f"sampler {self.schema.name!r}: frame columns do not match "
                f"the container schema ({mismatch})"
            )
        if frame.n_rows == 0:
            return 0
        check_ingest_timestamps(frame.timestamp, sampler=self.schema.name)
        self._blocks.append(frame)
        self._consolidated = None
        self._job_index = None
        self._jobs = None
        return frame.n_rows

    # -- stats ----------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return sum(b.n_rows for b in self._blocks)

    def jobs(self) -> np.ndarray:
        """Sorted unique job ids, cached until the next ingest."""
        if self._jobs is None:
            if not self._blocks:
                self._jobs = np.empty(0, dtype=np.int64)
            else:
                self._jobs = np.unique(np.concatenate([b.jobs() for b in self._blocks]))
        return self._jobs

    # -- query -----------------------------------------------------------------

    def _consolidate(self) -> TelemetryFrame:
        if self._consolidated is None:
            if not self._blocks:
                # An empty container is a valid (if boring) query target:
                # every filter selects zero of its zero rows.
                self._consolidated = TelemetryFrame(
                    np.empty(0, np.int64),
                    np.empty(0, np.int64),
                    np.empty(0),
                    np.empty((0, len(self.schema.metric_names))),
                    self.schema.metric_names,
                )
                self._job_index = {}
                self._jobs = self._consolidated.jobs()
                return self._consolidated
            self._consolidated = (
                self._blocks[0]
                if len(self._blocks) == 1
                else TelemetryFrame.concat(self._blocks)
            )
            order = np.argsort(self._consolidated.job_id, kind="stable")
            c = self._consolidated
            self._consolidated = TelemetryFrame(
                c.job_id[order], c.component_id[order], c.timestamp[order], c.values[order], c.metric_names
            )
            # Row ranges per job over the job-sorted layout; the unique jobs
            # come out as a byproduct, so cache them alongside the index.
            jobs, starts = np.unique(self._consolidated.job_id, return_index=True)
            bounds = np.append(starts, self._consolidated.n_rows)
            self._job_index = {
                int(j): np.arange(bounds[i], bounds[i + 1]) for i, j in enumerate(jobs)
            }
            self._jobs = jobs
        return self._consolidated

    def query(
        self,
        *,
        job_id: int | None = None,
        component_id: int | None = None,
        t0: float | None = None,
        t1: float | None = None,
    ) -> TelemetryFrame:
        """Indexed row selection; any filter may be omitted."""
        frame = self._consolidate()
        if job_id is not None:
            assert self._job_index is not None
            rows = self._job_index.get(int(job_id))
            if rows is None:
                return TelemetryFrame(
                    np.empty(0, np.int64),
                    np.empty(0, np.int64),
                    np.empty(0),
                    np.empty((0, len(frame.metric_names))),
                    frame.metric_names,
                )
            frame = TelemetryFrame(
                frame.job_id[rows],
                frame.component_id[rows],
                frame.timestamp[rows],
                frame.values[rows],
                frame.metric_names,
            )
        mask = np.ones(frame.n_rows, dtype=bool)
        if component_id is not None:
            mask &= frame.component_id == component_id
        if t0 is not None:
            mask &= frame.timestamp >= t0
        if t1 is not None:
            mask &= frame.timestamp <= t1
        if mask.all():
            return frame
        return TelemetryFrame(
            frame.job_id[mask],
            frame.component_id[mask],
            frame.timestamp[mask],
            frame.values[mask],
            frame.metric_names,
        )


class DsosStore:
    """The monitoring cluster's database: one container per sampler.

    Implements the :class:`~repro.monitoring.aggregator.TelemetrySink`
    protocol so an :class:`~repro.monitoring.aggregator.Aggregator` can
    ingest directly.
    """

    def __init__(self) -> None:
        self._containers: dict[str, Container] = {}
        #: node-class metric schemas registered by the ingest layer; lets
        #: the DataGenerator recover which class a node's columns belong to
        #: on heterogeneous fleets.
        self.schemas = SchemaRegistry()

    # -- ingest side -----------------------------------------------------------

    def register_schema(self, schema: MetricSchema) -> MetricSchema:
        """Declare a node-class schema (e.g. a catalog's) for this store."""
        return self.schemas.register(schema)

    def create_container(self, schema: Schema) -> Container:
        if schema.name in self._containers:
            raise ValueError(f"container {schema.name!r} already exists")
        container = Container(schema)
        self._containers[schema.name] = container
        return container

    def ingest(self, sampler: str, frame: TelemetryFrame) -> int:
        """Append rows, creating the container on first contact."""
        container = self._containers.get(sampler)
        if container is None:
            container = self.create_container(Schema(sampler, frame.metric_names))
        return container.append(frame)

    # -- query side --------------------------------------------------------------

    @property
    def samplers(self) -> tuple[str, ...]:
        return tuple(self._containers)

    def container(self, sampler: str) -> Container:
        try:
            return self._containers[sampler]
        except KeyError:
            raise KeyError(
                f"no container {sampler!r}; available: {sorted(self._containers)}"
            ) from None

    def query(self, sampler: str, **filters) -> TelemetryFrame:
        return self.container(sampler).query(**filters)

    def jobs(self) -> np.ndarray:
        """All job ids across containers."""
        if not self._containers:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([c.jobs() for c in self._containers.values()]))

    def components(self, job_id: int) -> np.ndarray:
        """All component ids that reported data for *job_id*."""
        comps = [
            c.query(job_id=job_id).component_id
            for c in self._containers.values()
        ]
        comps = [c for c in comps if c.size]
        if not comps:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(comps))

    @property
    def n_rows(self) -> int:
        return sum(c.n_rows for c in self._containers.values())
