"""Shared utilities: deterministic RNG plumbing, validation, persistence."""

from repro.util.persistence import (
    ArtifactBundle,
    load_arrays,
    load_json,
    save_arrays,
    save_json,
)
from repro.util.rng import derive_seed, ensure_rng, spawn_rngs
from repro.util.validation import (
    NotFittedError,
    check_array,
    check_consistent_length,
    check_fitted,
    check_labels,
    check_matrix,
    check_vector,
)

__all__ = [
    "ArtifactBundle",
    "NotFittedError",
    "check_array",
    "check_consistent_length",
    "check_fitted",
    "check_labels",
    "check_matrix",
    "check_vector",
    "derive_seed",
    "ensure_rng",
    "load_arrays",
    "load_json",
    "save_arrays",
    "save_json",
    "spawn_rngs",
]
