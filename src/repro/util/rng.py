"""Deterministic random-number handling.

Every stochastic component in the library accepts a ``seed`` argument that may
be an integer, a :class:`numpy.random.Generator`, or ``None``.  This module
centralises the conversion so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs", "derive_seed"]

#: Upper bound (exclusive) for integer seeds derived from a parent generator.
_SEED_BOUND = 2**31 - 1


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` for nondeterministic entropy, an ``int`` for a fixed stream,
        or an existing generator which is returned unchanged (so callers can
        thread one stream through a pipeline).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, int, or numpy.random.Generator, got {type(seed).__name__}"
    )


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from *rng* suitable for a child component."""
    return int(rng.integers(0, _SEED_BOUND))


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Create *n* statistically independent child generators.

    Children are derived via integer draws from the parent stream, so a fixed
    parent seed yields a fixed family of children regardless of how many are
    requested downstream.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = ensure_rng(seed)
    return [np.random.default_rng(derive_seed(parent)) for _ in range(n)]
