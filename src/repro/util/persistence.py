"""Artifact persistence for deployment.

The paper's ModelTrainer saves Keras weights, the fitted scaler, and
deployment metadata (training columns, extracted feature names) to HDF files
on the monitoring server's local storage.  This module provides the
equivalent with ``.npz`` archives for arrays and JSON sidecars for metadata,
so a model trained offline can be reloaded by the online AnomalyDetector
without access to the training data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

__all__ = ["save_arrays", "load_arrays", "save_json", "load_json", "ArtifactBundle"]


def save_arrays(path: str | Path, arrays: Mapping[str, np.ndarray]) -> Path:
    """Save named arrays to a compressed ``.npz`` archive, returning the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in arrays.items()})
    # np.savez appends .npz when missing; normalise the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_arrays(path: str | Path) -> dict[str, np.ndarray]:
    """Load an ``.npz`` archive into a plain dict of arrays."""
    with np.load(Path(path), allow_pickle=False) as data:
        return {k: data[k].copy() for k in data.files}


def save_json(path: str | Path, payload: Any) -> Path:
    """Serialise *payload* as pretty-printed JSON (numpy scalars coerced)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=_json_default))
    return path


def load_json(path: str | Path) -> Any:
    return json.loads(Path(path).read_text())


def _json_default(obj: Any) -> Any:
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"cannot serialise {type(obj).__name__} to JSON")


class ArtifactBundle:
    """A directory of model artifacts: arrays, metadata, and nested bundles.

    Layout under ``root``::

        <root>/
          metadata.json       # free-form deployment metadata
          <name>.npz          # one archive per array group

    This mirrors the paper's "model weights + architecture + scaler +
    metadata" output directory (Fig. 3).
    """

    METADATA_FILE = "metadata.json"

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def save_group(self, name: str, arrays: Mapping[str, np.ndarray]) -> Path:
        """Persist an array group (e.g. ``weights``, ``scaler``) under *name*."""
        return save_arrays(self.root / f"{name}.npz", arrays)

    def load_group(self, name: str) -> dict[str, np.ndarray]:
        return load_arrays(self.root / f"{name}.npz")

    def has_group(self, name: str) -> bool:
        return (self.root / f"{name}.npz").exists()

    def save_metadata(self, payload: Mapping[str, Any]) -> Path:
        return save_json(self.root / self.METADATA_FILE, dict(payload))

    def load_metadata(self) -> dict[str, Any]:
        path = self.root / self.METADATA_FILE
        try:
            return load_json(path)
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt or empty metadata JSON in {path}: {exc}") from exc

    def exists(self) -> bool:
        return (self.root / self.METADATA_FILE).exists()
