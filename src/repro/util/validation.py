"""Input-validation helpers shared across the library.

These mirror the defensive checks a user-facing scientific library needs:
array coercion with dtype/shape enforcement, fitted-state checks, and
human-readable errors that name the offending argument.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "check_array",
    "check_matrix",
    "check_vector",
    "check_labels",
    "check_fitted",
    "check_consistent_length",
    "check_ingest_timestamps",
    "NotFittedError",
]


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


def check_array(
    x: Any,
    *,
    name: str = "X",
    ndim: int | None = None,
    dtype: Any = np.float64,
    allow_empty: bool = False,
    finite: bool = True,
) -> np.ndarray:
    """Coerce *x* to an ndarray and validate its basic properties.

    Parameters
    ----------
    x:
        Array-like input.
    name:
        Argument name used in error messages.
    ndim:
        Required dimensionality, or ``None`` to accept any.
    dtype:
        Target dtype (``None`` keeps the input dtype).
    allow_empty:
        Whether zero-size arrays are acceptable.
    finite:
        Whether NaN/inf values are rejected.
    """
    arr = np.asarray(x, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if finite and arr.dtype.kind == "f" and not np.all(np.isfinite(arr)):
        n_bad = int(np.sum(~np.isfinite(arr)))
        raise ValueError(f"{name} contains {n_bad} non-finite value(s)")
    return arr


def check_matrix(x: Any, *, name: str = "X", **kwargs: Any) -> np.ndarray:
    """Coerce *x* to a 2-D float matrix (samples x features)."""
    return check_array(x, name=name, ndim=2, **kwargs)


def check_vector(x: Any, *, name: str = "x", **kwargs: Any) -> np.ndarray:
    """Coerce *x* to a 1-D float vector."""
    return check_array(x, name=name, ndim=1, **kwargs)


def check_labels(y: Any, *, name: str = "y", n_samples: int | None = None) -> np.ndarray:
    """Coerce binary anomaly labels to an int64 vector of 0/1 values."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    out = arr.astype(np.int64, copy=False)
    if not np.array_equal(out, arr):
        raise ValueError(f"{name} must contain integer labels")
    bad = set(np.unique(out)) - {0, 1}
    if bad:
        raise ValueError(f"{name} must contain only 0 (healthy) / 1 (anomalous); got extra {sorted(bad)}")
    if n_samples is not None and out.shape[0] != n_samples:
        raise ValueError(f"{name} has {out.shape[0]} entries but expected {n_samples}")
    return out


def check_ingest_timestamps(timestamps: np.ndarray, *, sampler: str) -> None:
    """Reject non-finite or negative timestamps at store ingest.

    Epoch-style telemetry timestamps are always finite and non-negative; a
    NaN/inf/negative value means a corrupted extract or a unit bug upstream,
    and silently storing it poisons every time-window query that follows.
    The error names the first offending row and the sampler so the operator
    can find the bad extract.
    """
    ts = np.asarray(timestamps, dtype=np.float64)
    bad = ~np.isfinite(ts) | (ts < 0)
    if bad.any():
        row = int(np.argmax(bad))
        raise ValueError(
            f"sampler {sampler!r}: row {row} has invalid timestamp "
            f"{float(ts[row])!r} (ingest timestamps must be finite and >= 0)"
        )


def check_fitted(obj: Any, attributes: Sequence[str]) -> None:
    """Raise :class:`NotFittedError` unless *obj* defines all *attributes* (non-None)."""
    missing = [a for a in attributes if getattr(obj, a, None) is None]
    if missing:
        raise NotFittedError(
            f"{type(obj).__name__} is not fitted; call fit() first "
            f"(missing attributes: {', '.join(missing)})"
        )


def check_consistent_length(**named_arrays: Any) -> None:
    """Validate that all named arrays share the same first-axis length."""
    lengths = {name: len(arr) for name, arr in named_arrays.items() if arr is not None}
    if len(set(lengths.values())) > 1:
        detail = ", ".join(f"{k}={v}" for k, v in lengths.items())
        raise ValueError(f"inconsistent sample counts: {detail}")
