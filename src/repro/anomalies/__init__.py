"""HPAS-equivalent synthetic performance anomalies (paper Sec. 5.2, Table 2)."""

from repro.anomalies.base import AnomalyInjector, active_window
from repro.anomalies.gpu import (
    GPU_INJECTORS,
    EccStorm,
    PowerCap,
    ThermalThrottle,
    VramLeak,
)
from repro.anomalies.suite import (
    TABLE2_INJECTORS,
    CacheCopy,
    CpuOccupy,
    IoDelay,
    MemBandwidth,
    MemLeak,
    NetContention,
    make_injector,
)

__all__ = [
    "AnomalyInjector",
    "CacheCopy",
    "CpuOccupy",
    "EccStorm",
    "GPU_INJECTORS",
    "IoDelay",
    "MemBandwidth",
    "MemLeak",
    "NetContention",
    "PowerCap",
    "TABLE2_INJECTORS",
    "ThermalThrottle",
    "VramLeak",
    "active_window",
    "make_injector",
]
