"""Anomaly-injector framework (HPAS equivalent).

The paper injects synthetic performance anomalies with HPAS [Ates et al.,
ICPP'19] while applications run.  Here each injector perturbs the latent
driver series of a node — the same entry point through which applications
express themselves — so anomalies propagate coherently to every correlated
metric, just as a real contention process would.

Injectors are active over a configurable window (HPAS starts anomalies with
the application and runs them throughout by default) and must never make a
node's drivers leave their physical domain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.workloads.metrics import DRIVER_NAMES

__all__ = ["AnomalyInjector", "active_window"]


def active_window(
    n: int, *, start_fraction: float = 0.0, duration_fraction: float = 1.0
) -> np.ndarray:
    """Boolean mask of the seconds during which an anomaly is active."""
    if not 0.0 <= start_fraction < 1.0:
        raise ValueError(f"start_fraction must be in [0,1), got {start_fraction}")
    if not 0.0 < duration_fraction <= 1.0:
        raise ValueError(f"duration_fraction must be in (0,1], got {duration_fraction}")
    start = int(n * start_fraction)
    stop = min(n, start + max(1, int(n * duration_fraction)))
    mask = np.zeros(n, dtype=bool)
    mask[start:stop] = True
    return mask


class AnomalyInjector(ABC):
    """Base class for all synthetic anomalies.

    Subclasses implement :meth:`perturb`, which mutates a *copy* of the
    driver dict over the active window.  ``name`` identifies the anomaly
    type (``memleak``, ``membw``, ...) and ``config`` the HPAS command-line
    configuration it reproduces (Table 2 of the paper).
    """

    #: anomaly type, e.g. "memleak"
    name: str = "abstract"

    #: driver channels the injector needs present; GPU injectors extend this
    required_drivers: tuple[str, ...] = DRIVER_NAMES

    def __init__(
        self,
        *,
        config: str = "",
        start_fraction: float = 0.0,
        duration_fraction: float = 1.0,
    ):
        self.config = config
        self.start_fraction = float(start_fraction)
        self.duration_fraction = float(duration_fraction)

    def apply(
        self, drivers: dict[str, np.ndarray], rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Return a perturbed copy of *drivers* (the input is not mutated)."""
        missing = set(self.required_drivers) - set(drivers)
        if missing:
            raise KeyError(f"drivers missing channels: {sorted(missing)}")
        out = {k: np.array(v, dtype=np.float64, copy=True) for k, v in drivers.items()}
        n = len(out["compute"])
        window = active_window(
            n, start_fraction=self.start_fraction, duration_fraction=self.duration_fraction
        )
        self.perturb(out, window, rng)
        # Keep intensity drivers physical regardless of what perturb did.
        for key in ("compute", "comm", "iowait", "cache_pressure"):
            np.clip(out[key], 0.0, 1.0, out=out[key])
        for key in (
            "memory_mb",
            "file_cache_mb",
            "io_read_mbps",
            "io_write_mbps",
            "page_rate",
            "swap_rate",
        ):
            np.clip(out[key], 0.0, None, out=out[key])
        if "gpu_compute" in out:
            np.clip(out["gpu_compute"], 0.0, 1.0, out=out["gpu_compute"])
        for key in ("gpu_vram_mb", "gpu_power_w", "gpu_temp_c", "gpu_ecc_rate", "gpu_throttle_rate"):
            if key in out:
                np.clip(out[key], 0.0, None, out=out[key])
        return out

    @abstractmethod
    def perturb(
        self, drivers: dict[str, np.ndarray], window: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Mutate *drivers* in place over the boolean *window*."""

    def __repr__(self) -> str:
        cfg = f" {self.config}" if self.config else ""
        return f"<{type(self).__name__}{cfg}>"
