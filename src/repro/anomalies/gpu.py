"""GPU anomaly injectors for the accelerator collector family.

The HPAS suite perturbs CPU-side drivers; GPU partitions fail differently.
These injectors perturb the six GPU latent channels that
:class:`~repro.workloads.gpu.GpuApplicationSignature` emits, so the
anomalies propagate coherently to every per-card metric the
:func:`~repro.workloads.metrics.gpu_catalog` renders:

====================   ========================================================
anomaly                production failure reproduced
====================   ========================================================
:class:`VramLeak`      device allocations never freed: VRAM ramps toward the
                       card capacity; kernels slow as fragmentation and
                       eviction churn grow
:class:`ThermalThrottle` degraded cooling: junction temperature climbs, the
                       driver fires throttle events and drops clocks, so
                       occupancy and power sag while temperature stays high
:class:`PowerCap`      an out-of-band power limit: socket power is clamped,
                       occupancy degrades proportionally, dies run cooler —
                       the *inverted* thermal signature of throttling
:class:`EccStorm`      a failing HBM stack: correctable-error rate explodes
                       and row-remap stalls shave occupancy
====================   ========================================================
"""

from __future__ import annotations

import numpy as np

from repro.anomalies.base import AnomalyInjector
from repro.workloads.metrics import ALL_DRIVER_NAMES

__all__ = ["VramLeak", "ThermalThrottle", "PowerCap", "EccStorm", "GPU_INJECTORS"]


class GpuAnomalyInjector(AnomalyInjector):
    """Base for injectors that need the GPU driver channels present."""

    required_drivers: tuple[str, ...] = ALL_DRIVER_NAMES


class VramLeak(GpuAnomalyInjector):
    """Device-memory leak: VRAM ramps at *rate* MB/s toward card capacity."""

    name = "vramleak"

    def __init__(self, rate_mb_s: float = 20.0, capacity_mb: float = 65536.0, **kwargs):
        if rate_mb_s <= 0 or capacity_mb <= 0:
            raise ValueError("rate_mb_s and capacity_mb must be positive")
        super().__init__(config=f"rate={rate_mb_s:g}MB/s", **kwargs)
        self.rate_mb_s = float(rate_mb_s)
        self.capacity_mb = float(capacity_mb)

    def perturb(self, drivers, window, rng) -> None:
        n = len(window)
        leak = np.zeros(n)
        leak[window] = self.rate_mb_s
        leaked = np.cumsum(leak)
        vram = np.minimum(drivers["gpu_vram_mb"] + leaked, 0.98 * self.capacity_mb)
        # Kernels slow as the allocator fragments and evicts near capacity,
        # and unified-memory oversubscription spills into host page traffic
        # (UVM migration faults) once the card runs out of headroom.
        fill = vram / self.capacity_mb
        pressure = np.clip((fill - 0.6) / 0.4, 0.0, 1.0)
        drivers["gpu_vram_mb"] = vram
        drivers["gpu_compute"] = drivers["gpu_compute"] * (1.0 - 0.3 * pressure)
        drivers["page_rate"] = drivers["page_rate"] + 5e4 * pressure


class ThermalThrottle(GpuAnomalyInjector):
    """Degraded cooling: hot junction, throttle events, sagging clocks."""

    name = "thermalthrottle"

    def __init__(self, delta_c: float = 22.0, **kwargs):
        if delta_c <= 0:
            raise ValueError(f"delta_c must be positive, got {delta_c}")
        super().__init__(config=f"delta={delta_c:g}C", **kwargs)
        self.delta_c = float(delta_c)

    def perturb(self, drivers, window, rng) -> None:
        w = window.astype(np.float64)
        temp = drivers["gpu_temp_c"] + self.delta_c * w
        # The driver throttles above ~95 C junction: clocks (occupancy
        # proxy) and power drop while throttle events accumulate.
        over = np.clip((temp - 95.0) / 10.0, 0.0, 1.0) * w
        drivers["gpu_temp_c"] = temp
        drivers["gpu_throttle_rate"] = drivers["gpu_throttle_rate"] + 3.0 * w + 12.0 * over
        drivers["gpu_compute"] = drivers["gpu_compute"] * (1.0 - 0.3 * w * (0.4 + 0.6 * over))
        drivers["gpu_power_w"] = drivers["gpu_power_w"] * (1.0 - 0.15 * w * over)


class PowerCap(GpuAnomalyInjector):
    """Out-of-band power limit: clamped socket power, cooler, slower dies."""

    name = "powercap"

    def __init__(self, cap_w: float = 250.0, **kwargs):
        if cap_w <= 0:
            raise ValueError(f"cap_w must be positive, got {cap_w}")
        super().__init__(config=f"cap={cap_w:g}W", **kwargs)
        self.cap_w = float(cap_w)

    def perturb(self, drivers, window, rng) -> None:
        power = drivers["gpu_power_w"]
        capped = np.where(window, np.minimum(power, self.cap_w), power)
        # Occupancy degrades with the fraction of demanded power denied;
        # less heat dissipated means the die runs cooler, not hotter.
        with np.errstate(divide="ignore", invalid="ignore"):
            denied = np.where(power > 0, 1.0 - capped / power, 0.0)
        drivers["gpu_power_w"] = capped
        drivers["gpu_compute"] = drivers["gpu_compute"] * (1.0 - 0.8 * denied)
        drivers["gpu_temp_c"] = drivers["gpu_temp_c"] * (1.0 - 0.25 * denied)
        drivers["gpu_throttle_rate"] = drivers["gpu_throttle_rate"] + np.where(
            denied > 0.05, 2.0, 0.0
        )


class EccStorm(GpuAnomalyInjector):
    """Failing HBM stack: correctable-error storm plus row-remap stalls."""

    name = "eccstorm"

    def __init__(self, rate_per_s: float = 40.0, **kwargs):
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
        super().__init__(config=f"rate={rate_per_s:g}/s", **kwargs)
        self.rate_per_s = float(rate_per_s)

    def perturb(self, drivers, window, rng) -> None:
        w = window.astype(np.float64)
        # Bursty Poisson-like storm around the mean rate.
        storm = self.rate_per_s * w * (1.0 + 0.5 * rng.standard_normal(len(w)))
        drivers["gpu_ecc_rate"] = drivers["gpu_ecc_rate"] + np.clip(storm, 0.0, None)
        # Row remaps stall the memory controller briefly.
        drivers["gpu_compute"] = drivers["gpu_compute"] * (1.0 - 0.08 * w)


def _gpu_injectors() -> list[AnomalyInjector]:
    """Fresh instances of the four GPU anomaly configurations."""
    return [
        VramLeak(60.0),
        ThermalThrottle(22.0),
        PowerCap(250.0),
        EccStorm(40.0),
    ]


#: Fresh instances of the four GPU anomaly configurations.
GPU_INJECTORS = _gpu_injectors
