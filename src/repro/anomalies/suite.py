"""Concrete anomaly injectors reproducing the HPAS suite (paper Table 2).

====================  =========================================================
anomaly               HPAS behaviour reproduced
====================  =========================================================
:class:`MemLeak`      allocates character arrays without freeing: resident
                      memory ramps at ``size/period`` MB/s; reclaim pressure
                      and eventually swap traffic rise as memory fills
:class:`MemBandwidth` streams over a working set, saturating memory
                      bandwidth: page traffic and reclaim activity inflate
                      while the victim application's effective compute drops
:class:`CpuOccupy`    spins floating-point work on all cores at a target
                      utilisation, inflating user time and runnable count
:class:`CacheCopy`    swaps two arrays sized to a cache level: extra compute
                      plus modest page traffic, stronger for L2 than L1
:class:`IoDelay`      degraded parallel-filesystem behaviour (the "in the
                      wild" Lustre issue of Sec. 6.2): I/O waits inflate,
                      write bursts stretch, compute stalls
:class:`NetContention` neighbour network traffic: communication inflates and
                      per-timestep compute de-synchronises
====================  =========================================================
"""

from __future__ import annotations

import numpy as np

from repro.anomalies.base import AnomalyInjector

__all__ = [
    "MemLeak",
    "MemBandwidth",
    "CpuOccupy",
    "CacheCopy",
    "IoDelay",
    "NetContention",
    "TABLE2_INJECTORS",
    "make_injector",
]


class MemLeak(AnomalyInjector):
    """``memleak -s <size> -p <period>``: leak *size* MB every *period* s."""

    name = "memleak"

    def __init__(self, size_mb: float = 1.0, period_s: float = 0.2, **kwargs):
        if size_mb <= 0 or period_s <= 0:
            raise ValueError("size_mb and period_s must be positive")
        super().__init__(config=f"-s {size_mb:g}M -p {period_s:g}", **kwargs)
        self.size_mb = float(size_mb)
        self.period_s = float(period_s)

    @property
    def leak_rate_mb_s(self) -> float:
        return self.size_mb / self.period_s

    def perturb(self, drivers, window, rng) -> None:
        n = len(window)
        leak = np.zeros(n)
        leak[window] = self.leak_rate_mb_s
        leaked = np.cumsum(leak)
        drivers["memory_mb"] = drivers["memory_mb"] + leaked
        # Touching fresh pages faults them in.
        drivers["page_rate"] = drivers["page_rate"] + 256.0 * leak
        # As the leak grows the kernel starts reclaiming, then swapping.
        # Use a soft threshold at ~60 GB of leaked memory (half a node).
        fill = leaked / 60000.0
        drivers["cache_pressure"] = drivers["cache_pressure"] + 0.6 * np.clip(fill, 0.0, 1.0) ** 2
        drivers["swap_rate"] = drivers["swap_rate"] + 2000.0 * np.clip(fill - 0.8, 0.0, None)


class MemBandwidth(AnomalyInjector):
    """``membw -s <stride>``: saturate memory bandwidth with strided streams."""

    #: stride -> (page-traffic boost events/s, victim compute slowdown)
    _LEVELS = {"4K": (45000.0, 0.10), "8K": (60000.0, 0.13), "32K": (80000.0, 0.17)}

    name = "membw"

    def __init__(self, stride: str = "4K", **kwargs):
        if stride not in self._LEVELS:
            raise ValueError(f"stride must be one of {sorted(self._LEVELS)}, got {stride!r}")
        super().__init__(config=f"-s {stride}", **kwargs)
        self.stride = stride

    def perturb(self, drivers, window, rng) -> None:
        boost, slowdown = self._LEVELS[self.stride]
        w = window.astype(np.float64)
        drivers["page_rate"] = drivers["page_rate"] + boost * w
        drivers["cache_pressure"] = drivers["cache_pressure"] + 0.18 * w
        # The stream kernel itself burns CPU while the victim is starved.
        drivers["compute"] = drivers["compute"] * (1.0 - slowdown * w) + 0.22 * w


class CpuOccupy(AnomalyInjector):
    """``cpuoccupy -u <util>``: spin arithmetic at *util* % on all cores."""

    name = "cpuoccupy"

    def __init__(self, utilization: float = 100.0, **kwargs):
        if not 0.0 < utilization <= 100.0:
            raise ValueError(f"utilization must be in (0,100], got {utilization}")
        super().__init__(config=f"-u {utilization:g}%", **kwargs)
        self.utilization = float(utilization)

    def perturb(self, drivers, window, rng) -> None:
        u = self.utilization / 100.0
        w = window.astype(np.float64)
        # HPAS spins arithmetic on every core: node CPU is pinned near the
        # target utilisation for the whole window, flattening the
        # application's timestep wave (the app's share of the tick budget
        # shrinks correspondingly).
        occupied = np.maximum(drivers["compute"] * (1.0 - 0.3 * u * w), 0.9 * u * w)
        drivers["compute"] = np.where(w > 0, occupied, drivers["compute"])
        drivers["page_rate"] = drivers["page_rate"] + 3000.0 * u * w


class CacheCopy(AnomalyInjector):
    """``cachecopy -c <level> -m <mult>``: thrash a cache level by copying."""

    _LEVELS = {"L1": (0.10, 6000.0), "L2": (0.15, 12000.0), "L3": (0.2, 20000.0)}

    name = "cachecopy"

    def __init__(self, level: str = "L1", multiplier: int = 1, **kwargs):
        if level not in self._LEVELS:
            raise ValueError(f"level must be one of {sorted(self._LEVELS)}, got {level!r}")
        if multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        super().__init__(config=f"-c {level} -m {multiplier}", **kwargs)
        self.level = level
        self.multiplier = int(multiplier)

    def perturb(self, drivers, window, rng) -> None:
        compute_add, page_add = self._LEVELS[self.level]
        scale = 1.0 + 0.3 * (self.multiplier - 1)
        w = window.astype(np.float64)
        drivers["compute"] = drivers["compute"] + compute_add * scale * w
        drivers["page_rate"] = drivers["page_rate"] + page_add * scale * w
        drivers["cache_pressure"] = drivers["cache_pressure"] + 0.05 * scale * w


class IoDelay(AnomalyInjector):
    """Degraded parallel-filesystem I/O (the Sec. 6.2 Lustre issue).

    Not an HPAS CLI anomaly: this models the production "in the wild"
    failure where Empire jobs ran 10-30 % longer due to backend Lustre
    problems.  Writes stall (iowait inflates), effective compute drops while
    ranks block on I/O, and write bursts smear out in time.
    """

    name = "iodelay"

    def __init__(self, severity: float = 0.6, **kwargs):
        if not 0.0 < severity <= 1.0:
            raise ValueError(f"severity must be in (0,1], got {severity}")
        super().__init__(config=f"severity={severity:g}", **kwargs)
        self.severity = float(severity)

    def perturb(self, drivers, window, rng) -> None:
        w = window.astype(np.float64)
        s = self.severity
        # Writes stall: throughput halves, pending-I/O waits appear.
        drivers["io_write_mbps"] = drivers["io_write_mbps"] * (1.0 - 0.5 * s * w)
        stall = 0.35 * s * w * (0.5 + 0.5 * np.tanh(drivers["io_write_mbps"] / 10.0))
        drivers["iowait"] = drivers["iowait"] + stall + 0.12 * s * w
        drivers["compute"] = drivers["compute"] * (1.0 - 0.3 * s * w)
        drivers["file_cache_mb"] = drivers["file_cache_mb"] * (1.0 + 0.25 * s * w)


class NetContention(AnomalyInjector):
    """Neighbour network traffic contending for links (HPAS ``netoccupy``).

    The paper notes this anomaly only generates contention for 2-node runs,
    so it is excluded from the main experiments; it is provided for
    completeness and the ablation benches.
    """

    name = "netcontention"

    def __init__(self, intensity: float = 0.5, **kwargs):
        if not 0.0 < intensity <= 1.0:
            raise ValueError(f"intensity must be in (0,1], got {intensity}")
        super().__init__(config=f"intensity={intensity:g}", **kwargs)
        self.intensity = float(intensity)

    def perturb(self, drivers, window, rng) -> None:
        w = window.astype(np.float64)
        drivers["comm"] = drivers["comm"] + 0.3 * self.intensity * w
        drivers["compute"] = drivers["compute"] * (1.0 - 0.15 * self.intensity * w)


def _table2_injectors() -> list[AnomalyInjector]:
    """The exact anomaly configurations of paper Table 2."""
    return [
        CpuOccupy(100.0),
        CpuOccupy(80.0),
        CacheCopy("L1", 1),
        CacheCopy("L2", 2),
        MemBandwidth("4K"),
        MemBandwidth("8K"),
        MemBandwidth("32K"),
        MemLeak(1.0, 0.2),
        MemLeak(3.0, 0.4),
        MemLeak(10.0, 1.0),
    ]


#: Fresh instances of the ten Table 2 configurations.
TABLE2_INJECTORS = _table2_injectors


_FACTORIES = {
    "memleak": MemLeak,
    "membw": MemBandwidth,
    "cpuoccupy": CpuOccupy,
    "cachecopy": CacheCopy,
    "iodelay": IoDelay,
    "netcontention": NetContention,
}


def make_injector(name: str, **kwargs) -> AnomalyInjector:
    """Construct an injector by anomaly-type name (CPU or GPU family)."""
    # Deferred so importing the HPAS suite never pulls the GPU family in.
    from repro.anomalies.gpu import EccStorm, PowerCap, ThermalThrottle, VramLeak

    factories: dict[str, type[AnomalyInjector]] = {
        **_FACTORIES,
        EccStorm.name: EccStorm,
        PowerCap.name: PowerCap,
        ThermalThrottle.name: ThermalThrottle,
        VramLeak.name: VramLeak,
    }
    try:
        cls = factories[name]
    except KeyError:
        raise KeyError(f"unknown anomaly {name!r}; known: {sorted(factories)}") from None
    return cls(**kwargs)
