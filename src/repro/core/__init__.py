"""Prodigy core: the VAE, the detector, and thresholding strategies."""

from repro.core.framework import Prodigy
from repro.core.prodigy import ProdigyDetector
from repro.core.thresholds import f1_sweep_threshold, max_threshold, percentile_threshold
from repro.core.vae import VAE, TrainingHistory

__all__ = [
    "Prodigy",
    "ProdigyDetector",
    "TrainingHistory",
    "VAE",
    "f1_sweep_threshold",
    "max_threshold",
    "percentile_threshold",
]
