"""Variational autoencoder (paper Sec. 3.3, Eqs. 1-4).

The encoder maps a feature sample to the parameters of a diagonal Gaussian
posterior ``q_phi(z|x) = N(mu(x), diag(exp(logvar(x))))``; the decoder maps
latents back to the input space.  Training maximises the ELBO: the
reconstruction term plus the closed-form KL against the standard-normal
prior, with gradients flowing through the reparameterisation
``z = mu + exp(logvar/2) * eps``.

Implemented with the manual-backprop layers of :mod:`repro.nn`; gradient
correctness is pinned by finite-difference tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.nn.fused import FusedDenseActivation, fuse, pack_parameters
from repro.nn.layers import Dense
from repro.nn.losses import gaussian_kl, mse_loss
from repro.nn.minibatch import MinibatchIterator
from repro.nn.network import Sequential, mlp
from repro.nn.optimizers import Adam, Optimizer
from repro.runtime.instrumentation import get_instrumentation
from repro.util.rng import derive_seed, ensure_rng
from repro.util.validation import check_matrix

__all__ = ["VAE", "TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-epoch training diagnostics."""

    loss: list[float] = field(default_factory=list)
    reconstruction: list[float] = field(default_factory=list)
    kl: list[float] = field(default_factory=list)
    val_reconstruction: list[float] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.loss)


class _FusedTrainer:
    """Preallocated fused-kernel training engine for one :class:`VAE`.

    Builds fused execution views over the model's networks (sharing their
    parameter/gradient arrays) plus per-batch-size scratch for every
    intermediate of the ELBO step, so a training step performs zero
    allocations after warm-up.  Every kernel reproduces the floating-point
    operations of :meth:`VAE.train_step` in the same order, which keeps
    fixed-seed training bit-identical to the frozen
    :class:`repro.nn.reference.ReferenceVAETrainer`.
    """

    def __init__(self, model: "VAE"):
        self.model = model
        self.encoder = fuse(model.encoder)
        self.mu_head = FusedDenseActivation(model.mu_head)
        self.logvar_head = FusedDenseActivation(model.logvar_head)
        self.decoder = fuse(model.decoder)
        # Repack every parameter into one flat vector so the optimizer does
        # a single contiguous in-place update per step (elementwise math, so
        # still bit-identical to the per-parameter loop).
        flat_p, flat_g = pack_parameters(
            [*model.encoder.layers, model.mu_head, model.logvar_head, *model.decoder.layers]
        )
        self.packed_params = {"packed": flat_p}
        self.packed_grads = {"packed": flat_g}
        self._flat_g = flat_g
        self._scratch: dict[int, dict[str, np.ndarray]] = {}

    def _buffers(self, batch: int) -> dict[str, np.ndarray]:
        try:
            return self._scratch[batch]
        except KeyError:
            model = self.model
            d, k = model.input_dim, model.latent_dim
            enc_out = model.hidden_dims[-1] if model.hidden_dims else d
            s = {name: np.empty((batch, k)) for name in
                 ("eps", "std", "z", "var", "kt", "dmu", "dlv_kl", "dlv")}
            s["diff"] = np.empty((batch, d))
            s["sq"] = np.empty((batch, d))
            s["dxhat"] = np.empty((batch, d))
            s["dh"] = np.empty((batch, enc_out))
            self._scratch[batch] = s
            return s

    def step(self, x: np.ndarray) -> tuple[float, float, float]:
        """One fused gradient accumulation on batch *x*; returns (loss, recon, kl)."""
        model = self.model
        beta = model.beta
        b = x.shape[0]
        s = self._buffers(b)
        eps = s["eps"]
        model._rng.standard_normal(out=eps)  # same stream as standard_normal(shape)
        self._flat_g[...] = 0.0  # one fill == per-layer zero_grads

        # Forward with reparameterisation (Eq. 4), all into reused buffers.
        h = self.encoder.forward(x)
        mu = self.mu_head.forward(h)
        logvar = self.logvar_head.forward(h)
        std = s["std"]
        np.multiply(logvar, 0.5, out=std)
        np.exp(std, out=std)
        z = s["z"]
        np.multiply(std, eps, out=z)
        z += mu
        xhat = self.decoder.forward(z)

        # mse_loss, decomposed: value = sum(diff^2)/n, grad = 2*diff/n.
        diff = s["diff"]
        np.subtract(xhat, x, out=diff)
        np.square(diff, out=s["sq"])
        recon = float(s["sq"].sum() / b)
        dxhat = s["dxhat"]
        np.multiply(diff, 2.0, out=dxhat)
        dxhat /= b

        # gaussian_kl, decomposed: 0.5*sum(var + mu^2 - 1 - logvar)/n.
        var = s["var"]
        np.exp(logvar, out=var)
        kt = s["kt"]
        np.square(mu, out=kt)
        kt += var
        kt -= 1.0
        kt -= logvar
        kl = float(0.5 * kt.sum() / b)
        dmu = s["dmu"]
        np.divide(mu, b, out=dmu)  # dmu_kl; scaled by beta below
        dlv_kl = s["dlv_kl"]
        np.subtract(var, 1.0, out=dlv_kl)
        dlv_kl *= 0.5
        dlv_kl /= b

        # Backward: decoder -> dz -> (mu, logvar) heads -> encoder trunk.
        dz = self.decoder.backward(dxhat)
        dmu *= beta
        dmu += dz  # == dz + beta * dmu_kl
        dlv = s["dlv"]
        np.multiply(dz, eps, out=dlv)
        dlv *= 0.5
        dlv *= std
        dlv_kl *= beta
        dlv += dlv_kl  # == dz * eps * 0.5 * std + beta * dlogvar_kl
        dh = s["dh"]
        np.add(self.mu_head.backward(dmu), self.logvar_head.backward(dlv), out=dh)
        self.encoder.backward(dh)
        return recon + beta * kl, recon, kl


class VAE:
    """Dense variational autoencoder.

    Parameters
    ----------
    input_dim:
        Width of the (scaled) feature vector.
    hidden_dims:
        Encoder trunk widths; the decoder mirrors them.
    latent_dim:
        Dimension of the Gaussian latent space.
    beta:
        KL weight (1.0 = the standard ELBO of Eq. 2).
    output_activation:
        ``sigmoid`` for min-max-scaled inputs in [0,1] (default), or
        ``linear`` for standardised inputs.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int] = (128, 64),
        latent_dim: int = 16,
        *,
        beta: float = 1.0,
        output_activation: str = "sigmoid",
        seed: int | np.random.Generator | None = None,
    ):
        if input_dim < 1:
            raise ValueError("input_dim must be positive")
        if latent_dim < 1:
            raise ValueError("latent_dim must be positive")
        if beta < 0:
            raise ValueError("beta must be non-negative")
        rng = ensure_rng(seed)
        self.input_dim = int(input_dim)
        self.hidden_dims = tuple(int(h) for h in hidden_dims)
        self.latent_dim = int(latent_dim)
        self.beta = float(beta)
        self.output_activation = output_activation
        self._rng = rng
        self._fused: _FusedTrainer | None = None

        trunk_widths = [self.input_dim, *self.hidden_dims]
        self.encoder = mlp(
            trunk_widths, hidden_activation="relu", output_activation="relu", seed=derive_seed(rng)
        )
        enc_out = self.hidden_dims[-1] if self.hidden_dims else self.input_dim
        self.mu_head = Dense(enc_out, self.latent_dim, seed=derive_seed(rng))
        self.logvar_head = Dense(enc_out, self.latent_dim, seed=derive_seed(rng))
        self.decoder = mlp(
            [self.latent_dim, *reversed(self.hidden_dims), self.input_dim],
            hidden_activation="relu",
            output_activation=output_activation,
            seed=derive_seed(rng),
        )

    # -- forward paths -------------------------------------------------------

    def encode(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior parameters ``(mu, logvar)`` for a batch."""
        h = self.encoder.forward(x)
        return self.mu_head.forward(h), self.logvar_head.forward(h)

    def decode(self, z: np.ndarray) -> np.ndarray:
        return self.decoder.forward(z)

    def reconstruct(self, x: np.ndarray, *, deterministic: bool = True) -> np.ndarray:
        """Reconstruction through the latent space.

        Scoring uses the posterior mean (``deterministic=True``) so anomaly
        scores are reproducible; sampling is available for generation.
        """
        x = check_matrix(x, name="X")
        mu, logvar = self.encode(x)
        if deterministic:
            z = mu
        else:
            eps = self._rng.standard_normal(mu.shape)
            z = mu + np.exp(0.5 * logvar) * eps
        return self.decode(z)

    def sample(self, n: int) -> np.ndarray:
        """Generate *n* new samples from the prior (the generative use)."""
        z = self._rng.standard_normal((n, self.latent_dim))
        return self.decode(z)

    def reconstruction_error(
        self, x: np.ndarray, *, present: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-sample mean absolute error — the paper's anomaly score.

        With a boolean *present* mask (mixed-schema feature tables), the
        mean runs over each row's observed columns only: an absent column
        is no evidence of anomaly, and averaging its 0-fill error would
        dilute GPU-only signals on a mostly-CPU fleet.  A dense mask
        scores identically to the unmasked path.
        """
        x = check_matrix(x, name="X")
        err = np.abs(self.reconstruct(x) - x)
        if present is None:
            return np.mean(err, axis=1)
        p = np.asarray(present, dtype=bool)
        if p.shape != x.shape:
            raise ValueError(f"present mask shape {p.shape} != X shape {x.shape}")
        counts = p.sum(axis=1).astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(p, err, 0.0).sum(axis=1) / counts
        out[counts == 0] = 0.0
        return out

    # -- training ----------------------------------------------------------------

    def _zero_grads(self) -> None:
        self.encoder.zero_grads()
        self.mu_head.zero_grads()
        self.logvar_head.zero_grads()
        self.decoder.zero_grads()

    def named_params(self) -> dict[str, np.ndarray]:
        out = {}
        for prefix, net in self._parts():
            source = net.named_params() if isinstance(net, Sequential) else net.params
            for k, v in source.items():
                out[f"{prefix}.{k}"] = v
        return out

    def named_grads(self) -> dict[str, np.ndarray]:
        out = {}
        for prefix, net in self._parts():
            source = net.named_grads() if isinstance(net, Sequential) else net.grads
            for k, v in source.items():
                out[f"{prefix}.{k}"] = v
        return out

    def load_params(self, params: dict[str, np.ndarray]) -> None:
        own = self.named_params()
        missing = set(own) - set(params)
        if missing:
            raise KeyError(f"missing parameters: {sorted(missing)}")
        for name, value in own.items():
            incoming = np.asarray(params[name], dtype=np.float64)
            if incoming.shape != value.shape:
                raise ValueError(f"parameter {name}: shape mismatch {incoming.shape}")
            value[...] = incoming

    def _parts(self):
        return (
            ("encoder", self.encoder),
            ("mu", self.mu_head),
            ("logvar", self.logvar_head),
            ("decoder", self.decoder),
        )

    def loss_on(self, x: np.ndarray, eps: np.ndarray) -> tuple[float, float, float]:
        """ELBO-derived loss for a fixed noise draw (used by gradient checks)."""
        mu, logvar = self.encode(x)
        z = mu + np.exp(0.5 * logvar) * eps
        xhat = self.decode(z)
        recon, _ = mse_loss(xhat, x)
        kl, _, _ = gaussian_kl(mu, logvar)
        return recon + self.beta * kl, recon, kl

    def train_step(
        self, x: np.ndarray, optimizer: Optimizer, *, eps: np.ndarray | None = None
    ) -> tuple[float, float, float]:
        """One gradient step on batch *x*; returns (loss, recon, kl)."""
        if eps is None:
            eps = self._rng.standard_normal((x.shape[0], self.latent_dim))
        self._zero_grads()

        # Forward with reparameterisation (Eq. 4).
        h = self.encoder.forward(x)
        mu = self.mu_head.forward(h)
        logvar = self.logvar_head.forward(h)
        std = np.exp(0.5 * logvar)
        z = mu + std * eps
        xhat = self.decoder.forward(z)

        recon, dxhat = mse_loss(xhat, x)
        kl, dmu_kl, dlogvar_kl = gaussian_kl(mu, logvar)

        # Backward: decoder -> dz -> (mu, logvar) heads -> encoder trunk.
        dz = self.decoder.backward(dxhat)
        dmu = dz + self.beta * dmu_kl
        dlogvar = dz * eps * 0.5 * std + self.beta * dlogvar_kl
        dh = self.mu_head.backward(dmu) + self.logvar_head.backward(dlogvar)
        self.encoder.backward(dh)

        optimizer.step(self.named_params(), self.named_grads())
        return recon + self.beta * kl, recon, kl

    def fit(
        self,
        x: np.ndarray,
        *,
        epochs: int = 400,
        batch_size: int = 256,
        learning_rate: float = 1e-4,
        validation_data: np.ndarray | None = None,
        optimizer: Optimizer | None = None,
        patience: int | None = None,
        shuffle: bool = True,
    ) -> TrainingHistory:
        """Minibatch training on (healthy) samples.

        Defaults match the paper's starred hyperparameters (Table 3): Adam
        with lr 1e-4 and batch size 256.  ``patience`` enables early
        stopping on the validation reconstruction error.

        Runs on the fused fast path: preallocated kernels
        (:class:`_FusedTrainer`), hoisted parameter/gradient dicts, and the
        shared :class:`~repro.nn.minibatch.MinibatchIterator` — bit-identical
        for a fixed seed to the frozen
        :class:`repro.nn.reference.ReferenceVAETrainer` (pinned by tests).
        Each epoch is recorded as one ``train_epoch`` instrumentation stage.
        """
        x = check_matrix(x, name="X")
        if x.shape[1] != self.input_dim:
            raise ValueError(f"X has {x.shape[1]} features, model expects {self.input_dim}")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        opt = optimizer if optimizer is not None else Adam(learning_rate)
        history = TrainingHistory()
        n = x.shape[0]
        if self._fused is None:
            self._fused = _FusedTrainer(self)
        trainer = self._fused
        params = trainer.packed_params
        grads = trainer.packed_grads
        batches = MinibatchIterator(x, batch_size, rng=self._rng, shuffle=shuffle)
        inst = get_instrumentation()
        best_val = np.inf
        best_params: dict[str, np.ndarray] | None = None
        stale = 0
        stop = False
        for _ in range(epochs):
            with inst.stage("train_epoch", items=n):
                ep_loss = ep_recon = ep_kl = 0.0
                n_batches = 0
                for batch in batches.epoch():
                    loss, recon, kl = trainer.step(batch)
                    opt.step(params, grads)
                    ep_loss += loss
                    ep_recon += recon
                    ep_kl += kl
                    n_batches += 1
                history.loss.append(ep_loss / n_batches)
                history.reconstruction.append(ep_recon / n_batches)
                history.kl.append(ep_kl / n_batches)
                if validation_data is not None:
                    val = float(np.mean(self.reconstruction_error(validation_data)))
                    history.val_reconstruction.append(val)
                    if patience is not None:
                        if val < best_val - 1e-9:
                            best_val = val
                            best_params = {
                                k: v.copy() for k, v in self.named_params().items()
                            }
                            stale = 0
                        else:
                            stale += 1
                            if stale > patience:
                                stop = True
            if stop:
                break
        if best_params is not None:
            self.load_params(best_params)
        return history
