"""End-to-end Prodigy facade.

A convenience wrapper for the most common usage: give it labeled (or
healthy-only) node series, get a deployed detector with its feature
pipeline, persistence, and CoMTE explanations — one object instead of five.
The pieces remain fully accessible for anything bespoke.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.prodigy import ProdigyDetector
from repro.features.extraction import FeatureExtractor
from repro.pipeline.datapipeline import DataPipeline
from repro.pipeline.modeltrainer import (
    ModelTrainer,
    load_detector,
    reference_arrays,
    training_fingerprint,
)
from repro.runtime.config import ExecutionConfig
from repro.telemetry.frame import NodeSeries
from repro.util.rng import derive_seed, ensure_rng
from repro.util.validation import NotFittedError

__all__ = ["Prodigy"]


class Prodigy:
    """High-level train/predict/explain interface over raw node series.

    Parameters mirror :class:`ProdigyDetector` plus the feature-pipeline
    knobs; see those classes for details.

    Example
    -------
    >>> prodigy = Prodigy(n_features=512, seed=0)
    >>> prodigy.fit(series_list, labels)            # labels optional
    >>> prodigy.predict(new_series)                 # [0, 1, ...]
    >>> prodigy.explain(flagged_series)             # CoMTE counterfactual
    """

    def __init__(
        self,
        *,
        n_features: int = 2048,
        hidden_dims: Sequence[int] = (128, 64),
        latent_dim: int = 16,
        epochs: int = 300,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        threshold_percentile: float = 99.0,
        validation_fraction: float = 0.2,
        patience: int | None = 40,
        extractor: FeatureExtractor | None = None,
        execution: ExecutionConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        self._rng = ensure_rng(seed)
        self.pipeline = DataPipeline(
            extractor if extractor is not None else FeatureExtractor(),
            n_features=n_features,
            execution=execution,
        )
        self.detector = ProdigyDetector(
            hidden_dims=hidden_dims,
            latent_dim=latent_dim,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            threshold_percentile=threshold_percentile,
            validation_fraction=validation_fraction,
            patience=patience,
            seed=derive_seed(self._rng),
        )
        self._healthy_references: list[NodeSeries] = []
        self._fitted = False

    # -- training --------------------------------------------------------------

    def fit(
        self,
        series: Sequence[NodeSeries],
        labels: Sequence[int] | np.ndarray | None = None,
    ) -> "Prodigy":
        """Extract, select, scale, and train on healthy samples.

        Without labels every run is assumed healthy (the production
        assumption); Chi-square selection then degrades to variance ranking
        inside the pipeline's fallback, so supplying even a few labeled
        anomalous runs is recommended.
        """
        series = list(series)
        y = None if labels is None else np.asarray(labels, dtype=np.int64)
        mixed = len({s.schema_digest for s in series}) > 1
        if mixed:
            samples = self.pipeline.extractor.extract_mixed(series, y)
        else:
            samples = self.pipeline.engine.extract(series, y)
        if y is not None and samples.n_anomalous > 0:
            self.pipeline.fit(samples)
        else:
            # Healthy-only: keep the top-variance features (no labels for chi2).
            features = samples.features
            from repro.features.scaling import make_scaler
            from repro.features.selection import ChiSquareSelector

            if samples.present is None:
                var = features.var(axis=0)
            else:
                # Mask-aware variance: absent cells are not observations.
                p = samples.present
                cnt = p.sum(axis=0).astype(np.float64)
                with np.errstate(divide="ignore", invalid="ignore"):
                    mean = np.where(p, features, 0.0).sum(axis=0) / cnt
                    mean_sq = np.where(p, features * features, 0.0).sum(axis=0) / cnt
                var = mean_sq - mean**2
                var[~np.isfinite(var)] = 0.0
            order = np.lexsort((np.arange(var.size), -var))
            keep = np.sort(order[: self.pipeline.n_features])
            names = [samples.feature_names[i] for i in keep]

            self.pipeline.selected_names_ = tuple(names)
            scaler = make_scaler(self.pipeline.scaler_kind)
            if samples.present is None:
                scaler.fit(features[:, keep])
            else:
                scaler.fit(features[:, keep], present=samples.present[:, keep])
            self.pipeline.scaler_ = scaler
            self.pipeline.selector_ = ChiSquareSelector.sentinel(
                names, var[keep], k=self.pipeline.n_features
            )

        transformed = self.pipeline.transform_samples(samples)
        self.detector.fit(transformed.features, y, present=transformed.present)
        # Lineage + drift reference, persisted by save() for the lifecycle layer.
        self._fingerprint = training_fingerprint(samples)
        self._reference = reference_arrays(self.detector, transformed.features, y)
        self._healthy_references = [
            s for s, label in zip(series, samples.labels) if label != 1
        ][:25]
        self._fitted = True
        return self

    # -- inference ----------------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError("Prodigy is not fitted; call fit() first")

    def anomaly_score(self, series: Sequence[NodeSeries]) -> np.ndarray:
        self._require_fitted()
        x, present = self.pipeline.transform_series_masked(list(series))
        return self.detector.anomaly_score(x, present=present)

    def predict(self, series: Sequence[NodeSeries]) -> np.ndarray:
        """Binary prediction per node run (1 = anomalous)."""
        self._require_fitted()
        x, present = self.pipeline.transform_series_masked(list(series))
        return self.detector.predict(x, present=present)

    def explain(self, series: NodeSeries, *, max_metrics: int = 5):
        """CoMTE counterfactual for one (typically flagged) run."""
        self._require_fitted()
        if not self._healthy_references:
            raise RuntimeError("no healthy reference series retained from fit()")
        from repro.explain.comte import OptimizedSearch
        from repro.explain.evaluators import FeatureSpaceEvaluator

        # CoMTE substitutes whole metric series between the flagged run and
        # a reference, so references must share the run's column layout —
        # on a mixed fleet only same-schema nodes are comparable.
        references = [
            r
            for r in self._healthy_references
            if r.schema_digest == series.schema_digest
        ]
        if not references:
            raise RuntimeError(
                "no healthy reference series share the flagged run's metric "
                "schema; cannot build a counterfactual across schemas"
            )
        evaluator = FeatureSpaceEvaluator(self.pipeline, self.detector)
        search = OptimizedSearch(
            evaluator, references, max_metrics=max_metrics
        )
        # The search itself records the ``explain`` stage.
        return search.explain(series)

    # -- persistence -------------------------------------------------------------------

    def save(self, artifact_dir: str | Path) -> Path:
        """Persist the deployment (weights + scaler + metadata)."""
        self._require_fitted()
        trainer = ModelTrainer(self.pipeline, self.detector, artifact_dir)
        trainer.fingerprint_ = getattr(self, "_fingerprint", None)
        trainer.reference_ = getattr(self, "_reference", None)
        return trainer.save()

    @classmethod
    def load(cls, artifact_dir: str | Path, *, seed=None) -> "Prodigy":
        """Reload a persisted deployment (references for explain() excluded)."""
        pipeline, detector = load_detector(artifact_dir)
        obj = cls(seed=seed)
        obj.pipeline = pipeline
        obj.detector = detector
        obj._fitted = True
        return obj
