"""Anomaly-threshold strategies (paper Sec. 3.3 and 5.4.4).

After training, Prodigy sets the acceptable reconstruction-error range from
the *healthy training errors alone* — typically the 99th percentile (the
default, requiring no manual intervention) or the maximum.  For the
baseline-comparison protocol the paper instead sweeps candidate thresholds
in 0.001 increments and keeps the best-F1 value; :func:`f1_sweep_threshold`
reproduces that protocol.
"""

from __future__ import annotations

import numpy as np

from repro.eval.metrics import f1_score_macro
from repro.util.validation import check_labels, check_vector

__all__ = ["percentile_threshold", "max_threshold", "f1_sweep_threshold"]


def percentile_threshold(errors: np.ndarray, percentile: float = 99.0) -> float:
    """The *percentile*-th percentile of healthy training errors."""
    errors = check_vector(errors, name="errors")
    if not 0.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (0,100], got {percentile}")
    return float(np.percentile(errors, percentile))


def max_threshold(errors: np.ndarray) -> float:
    """The maximum healthy training error (the strictest paper variant)."""
    errors = check_vector(errors, name="errors")
    return float(np.max(errors))


def f1_sweep_threshold(
    scores: np.ndarray,
    labels: np.ndarray,
    *,
    lo: float = 0.0,
    hi: float = 1.0,
    step: float = 0.001,
) -> tuple[float, float]:
    """Best-macro-F1 threshold over a labeled calibration set.

    Iterates candidate thresholds from *lo* to *hi* in *step* increments
    (the paper's 0-to-1-by-0.001 sweep) and returns ``(threshold, f1)``.
    Note the paper applies this sweep against its test set; callers choose
    which labeled set to pass.
    """
    scores = check_vector(scores, name="scores")
    y = check_labels(labels, n_samples=scores.shape[0])
    if step <= 0 or hi <= lo:
        raise ValueError("need step > 0 and hi > lo")
    candidates = np.arange(lo, hi + step / 2, step)
    # Vectorised sweep: predictions for all candidates at once would be a
    # (C, N) boolean matrix; C ~ 1000 and N ~ 1e4 fits easily.
    preds = scores[None, :] > candidates[:, None]
    best_f1, best_thr = -1.0, float(candidates[0])
    for i in range(candidates.size):
        f1 = f1_score_macro(y, preds[i].astype(np.int64))
        if f1 > best_f1:
            best_f1, best_thr = f1, float(candidates[i])
    return best_thr, best_f1
