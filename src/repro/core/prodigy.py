"""The Prodigy anomaly detector (the paper's primary contribution).

Training (Sec. 3.3): fit the VAE on healthy samples only, then set the
anomaly threshold from the healthy reconstruction errors (99th percentile
by default).  Detection (Sec. 3.4): a sample whose reconstruction MAE
exceeds the threshold is anomalous.

For the baseline-comparison protocol (Sec. 5.4.4) the threshold can instead
be calibrated by the 0-to-1 F1 sweep via :meth:`calibrate_threshold`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.thresholds import f1_sweep_threshold, percentile_threshold
from repro.core.vae import VAE, TrainingHistory
from repro.models.base import ThresholdDetector
from repro.runtime.instrumentation import get_instrumentation
from repro.util.rng import derive_seed, ensure_rng
from repro.util.validation import check_fitted

__all__ = ["ProdigyDetector"]


class ProdigyDetector(ThresholdDetector):
    """VAE-based unsupervised performance-anomaly detector.

    Parameters
    ----------
    hidden_dims, latent_dim, beta:
        VAE architecture (encoder trunk widths mirrored in the decoder).
    epochs, batch_size, learning_rate:
        Training schedule; defaults are the paper's starred values scaled
        to the synthetic dataset sizes.
    threshold_percentile:
        Percentile of healthy training reconstruction errors used as the
        detection threshold.
    validation_fraction:
        Healthy-data fraction held out for early stopping and threshold
        sweeps (the paper's 80-20 split).
    patience:
        Early-stopping patience in epochs (``None`` disables).
    """

    name = "prodigy"

    def __init__(
        self,
        hidden_dims: Sequence[int] = (128, 64),
        latent_dim: int = 16,
        *,
        beta: float = 1.0,
        epochs: int = 400,
        batch_size: int = 256,
        learning_rate: float = 1e-4,
        threshold_percentile: float = 99.0,
        validation_fraction: float = 0.2,
        patience: int | None = 40,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        self.hidden_dims = tuple(hidden_dims)
        self.latent_dim = latent_dim
        self.beta = beta
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.threshold_percentile = threshold_percentile
        self.validation_fraction = validation_fraction
        self.patience = patience
        self._rng = ensure_rng(seed)
        self.vae_: VAE | None = None
        self.history_: TrainingHistory | None = None
        self.validation_errors_: np.ndarray | None = None

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray | None = None,
        *,
        present: np.ndarray | None = None,
    ) -> "ProdigyDetector":
        """Train on healthy samples.

        If labels are provided, anomalous samples are removed first (the
        paper's protocol when evaluating on labeled collections); otherwise
        all samples are assumed healthy — the production deployment
        assumption that anomalies are exceedingly rare.

        With a *present* mask (mixed-schema fleets) the VAE still trains on
        the 0-filled dense matrix, but the detection threshold is set from
        mask-aware reconstruction errors so it matches how mixed samples
        are scored at inference time.
        """
        x = self._check_input(x)
        if present is not None:
            present = np.asarray(present, dtype=bool)
            if present.shape != x.shape:
                raise ValueError(
                    f"present mask shape {present.shape} != X shape {x.shape}"
                )
        if y is not None:
            y = np.asarray(y)
            keep = y == 0
            x = x[keep]
            if present is not None:
                present = present[keep]
            if x.shape[0] == 0:
                raise ValueError("no healthy samples to train on")

        n = x.shape[0]
        n_val = int(round(self.validation_fraction * n))
        idx = self._rng.permutation(n)
        val = x[idx[:n_val]] if n_val else None
        train = x[idx[n_val:]]
        if train.shape[0] == 0:
            train, val = x, None

        self.vae_ = VAE(
            input_dim=x.shape[1],
            hidden_dims=self.hidden_dims,
            latent_dim=self.latent_dim,
            beta=self.beta,
            seed=derive_seed(self._rng),
        )
        self.history_ = self.vae_.fit(
            train,
            epochs=self.epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            validation_data=val,
            patience=self.patience if val is not None else None,
        )
        # Threshold from healthy errors (train + validation combined so the
        # percentile reflects everything known-healthy).
        errors = self.vae_.reconstruction_error(x, present=present)
        self.threshold_ = percentile_threshold(errors, self.threshold_percentile)
        self.validation_errors_ = (
            self.vae_.reconstruction_error(val) if val is not None else errors
        )
        return self

    def anomaly_score(
        self, x: np.ndarray, *, present: np.ndarray | None = None
    ) -> np.ndarray:
        """Reconstruction mean-absolute-error per sample.

        *present* (mixed-schema fleets) restricts each row's mean to its
        observed feature columns; see :meth:`VAE.reconstruction_error`.
        """
        check_fitted(self, ["vae_"])
        x = self._check_input(x)
        with get_instrumentation().stage("score", items=x.shape[0]):
            return self.vae_.reconstruction_error(x, present=present)

    def predict(
        self, x: np.ndarray, *, present: np.ndarray | None = None
    ) -> np.ndarray:
        check_fitted(self, ["threshold_"])
        return (self.anomaly_score(x, present=present) > self.threshold_).astype(np.int64)

    def calibrate_threshold(
        self, scores_or_x: np.ndarray, labels: np.ndarray, *, step: float = 0.001
    ) -> float:
        """Re-set the threshold by the paper's F1 sweep on a labeled set.

        Accepts either precomputed scores (1-D) or feature rows (2-D).
        Returns the selected threshold.
        """
        check_fitted(self, ["vae_"])
        arr = np.asarray(scores_or_x, dtype=np.float64)
        scores = self.anomaly_score(arr) if arr.ndim == 2 else arr
        hi = max(float(scores.max()) * 1.05, 1.0)
        thr, _ = f1_sweep_threshold(scores, labels, lo=0.0, hi=hi, step=step)
        self.threshold_ = thr
        return thr

    # -- persistence ---------------------------------------------------------

    def get_state(self) -> tuple[dict[str, np.ndarray], dict]:
        """(weights, config) pair for the deployment artifact store."""
        check_fitted(self, ["vae_", "threshold_"])
        config = {
            "input_dim": self.vae_.input_dim,
            "hidden_dims": list(self.hidden_dims),
            "latent_dim": self.latent_dim,
            "beta": self.beta,
            "threshold": self.threshold_,
            "threshold_percentile": self.threshold_percentile,
        }
        return dict(self.vae_.named_params()), config

    @classmethod
    def from_state(
        cls, weights: dict[str, np.ndarray], config: dict, *, seed=None
    ) -> "ProdigyDetector":
        """Reconstruct a trained detector from persisted artifacts."""
        det = cls(
            hidden_dims=tuple(config["hidden_dims"]),
            latent_dim=int(config["latent_dim"]),
            beta=float(config["beta"]),
            threshold_percentile=float(config["threshold_percentile"]),
            seed=seed,
        )
        det.vae_ = VAE(
            input_dim=int(config["input_dim"]),
            hidden_dims=tuple(config["hidden_dims"]),
            latent_dim=int(config["latent_dim"]),
            beta=float(config["beta"]),
            seed=seed,
        )
        det.vae_.load_params(weights)
        det.threshold_ = float(config["threshold"])
        return det
