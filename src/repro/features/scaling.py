"""Feature scalers (the paper's Scaler module, Fig. 3).

Scalers are fitted on the training split only and persisted with the model
so online inference applies the identical transform.  MinMax is the paper's
default (it also makes features non-negative for the Chi-square stage and
bounds the VAE reconstruction target).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.util.validation import check_fitted, check_matrix

__all__ = ["Scaler", "MinMaxScaler", "StandardScaler", "RobustScaler", "make_scaler"]


class Scaler(ABC):
    """Fit/transform interface with ``.npz``-friendly state."""

    #: registry key, set by subclasses
    kind: str = "abstract"

    @abstractmethod
    def fit(self, x: np.ndarray) -> "Scaler": ...

    @abstractmethod
    def transform(self, x: np.ndarray) -> np.ndarray: ...

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)

    @abstractmethod
    def state(self) -> dict[str, np.ndarray]:
        """Arrays needed to reconstruct the fitted scaler."""

    @classmethod
    @abstractmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "Scaler": ...

    def _check_width(self, x: np.ndarray, width: int) -> np.ndarray:
        x = check_matrix(x, name="X")
        if x.shape[1] != width:
            raise ValueError(f"X has {x.shape[1]} features, scaler fitted on {width}")
        return x


class MinMaxScaler(Scaler):
    """Scale each feature to [0, 1] by its training min/max.

    Test values outside the training range are clipped (an unseen extreme
    value would otherwise leave the VAE's sigmoid output range and dominate
    the reconstruction error for the wrong reason).
    """

    kind = "minmax"

    def __init__(self, *, clip: bool = True):
        self.clip = clip
        self.min_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray, *, present: np.ndarray | None = None) -> "MinMaxScaler":
        """Fit per-column min/max, optionally over a presence mask.

        With *present* (mixed-schema feature tables), each column's range
        comes from its observed cells only; a column no row observes maps
        to 0.  A dense mask fits identically to the unmasked path.
        """
        x = check_matrix(x, name="X")
        if present is None:
            self.min_ = x.min(axis=0)
            rng = x.max(axis=0) - self.min_
        else:
            p = np.asarray(present, dtype=bool)
            if p.shape != x.shape:
                raise ValueError(f"present mask shape {p.shape} != X shape {x.shape}")
            any_obs = p.any(axis=0)
            self.min_ = np.where(any_obs, np.where(p, x, np.inf).min(axis=0), 0.0)
            rng = np.where(any_obs, np.where(p, x, -np.inf).max(axis=0), 0.0) - self.min_
        # Subnormal ranges overflow 1/rng to inf (0 * inf = NaN downstream);
        # treat them as constant columns like an exact zero range.
        rng[rng < np.finfo(np.float64).tiny] = 1.0  # constant features map to 0
        self.scale_ = 1.0 / rng
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, ["min_", "scale_"])
        x = self._check_width(x, self.min_.shape[0])
        out = (x - self.min_) * self.scale_
        if self.clip:
            np.clip(out, 0.0, 1.0, out=out)
        return out

    def state(self) -> dict[str, np.ndarray]:
        check_fitted(self, ["min_", "scale_"])
        return {"min": self.min_, "scale": self.scale_, "clip": np.array([self.clip])}

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "MinMaxScaler":
        obj = cls(clip=bool(state["clip"][0]))
        obj.min_ = np.asarray(state["min"], dtype=np.float64)
        obj.scale_ = np.asarray(state["scale"], dtype=np.float64)
        return obj


class StandardScaler(Scaler):
    """Zero-mean, unit-variance scaling per feature."""

    kind = "standard"

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = check_matrix(x, name="X")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0] = 1.0
        self.std_ = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, ["mean_", "std_"])
        x = self._check_width(x, self.mean_.shape[0])
        return (x - self.mean_) / self.std_

    def state(self) -> dict[str, np.ndarray]:
        check_fitted(self, ["mean_", "std_"])
        return {"mean": self.mean_, "std": self.std_}

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "StandardScaler":
        obj = cls()
        obj.mean_ = np.asarray(state["mean"], dtype=np.float64)
        obj.std_ = np.asarray(state["std"], dtype=np.float64)
        return obj


class RobustScaler(Scaler):
    """Median/IQR scaling — resistant to the heavy tails of HPC telemetry."""

    kind = "robust"

    def __init__(self) -> None:
        self.center_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "RobustScaler":
        x = check_matrix(x, name="X")
        self.center_ = np.median(x, axis=0)
        iqr = np.quantile(x, 0.75, axis=0) - np.quantile(x, 0.25, axis=0)
        iqr[iqr == 0] = 1.0
        self.scale_ = 1.0 / iqr
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, ["center_", "scale_"])
        x = self._check_width(x, self.center_.shape[0])
        return (x - self.center_) * self.scale_

    def state(self) -> dict[str, np.ndarray]:
        check_fitted(self, ["center_", "scale_"])
        return {"center": self.center_, "scale": self.scale_}

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "RobustScaler":
        obj = cls()
        obj.center_ = np.asarray(state["center"], dtype=np.float64)
        obj.scale_ = np.asarray(state["scale"], dtype=np.float64)
        return obj


_SCALERS: dict[str, type[Scaler]] = {
    MinMaxScaler.kind: MinMaxScaler,
    StandardScaler.kind: StandardScaler,
    RobustScaler.kind: RobustScaler,
}


def make_scaler(kind: str) -> Scaler:
    """Construct a scaler by registry name (``minmax``/``standard``/``robust``)."""
    try:
        return _SCALERS[kind]()
    except KeyError:
        raise KeyError(f"unknown scaler {kind!r}; known: {sorted(_SCALERS)}") from None


def scaler_from_state(kind: str, state: dict[str, np.ndarray]) -> Scaler:
    """Reconstruct a persisted scaler (used by the deployment pipeline)."""
    try:
        cls = _SCALERS[kind]
    except KeyError:
        raise KeyError(f"unknown scaler {kind!r}; known: {sorted(_SCALERS)}") from None
    return cls.from_state(state)
