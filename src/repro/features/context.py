"""Shared-intermediate context for one ``(N, T)`` metric slab.

Profiling the extraction hot path shows the calculators recomputing the
same handful of intermediates over and over: per-row means and central
moments, first differences, sorted copies, centered series, |x|, the rFFT
power spectrum, and — in the expensive tier — pairwise Chebyshev window
distances.  :class:`MetricBlockContext` computes each of those **once per
slab**, lazily, and every context-aware calculator draws from it instead
of re-deriving its own.

Bit-compatibility is a hard requirement: cached intermediates are produced
by the *same NumPy call sequences* the standalone kernels used (e.g.
``std`` is ``values.std(axis=1)``, not ``sqrt(m2)``), so context-backed
cheap-tier features are bit-identical to the frozen references in
:mod:`repro.features.reference`.

The entropy profile (the shared core of approximate and sample entropy)
is the one genuinely new kernel: both features need Chebyshev distances
between all sliding windows of length ``m`` and ``m+1`` at the same
tolerance ``r``, so the context computes the distance tensors once —
incrementally, ``E_L = max(E_{L-1}[:-1, :-1], E_1[L-1:, L-1:])`` — and
serves the four statistics (phi_m, phi_{m+1}, A, B) out of a single pass.
Row-chunking bounds the ``(n, W, W)`` tensors to a fixed memory budget.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

__all__ = ["MetricBlockContext", "EntropyProfile", "as_context"]

#: Soft cap on the pairwise-distance workspace per row chunk (bytes).  The
#: entropy kernels hold ~3 ``(rows, T, T)`` float64 tensors at once.
_ENTROPY_CHUNK_BYTES = 96 * 1024 * 1024


class EntropyProfile(NamedTuple):
    """Shared statistics behind approximate and sample entropy.

    ``phi_m`` / ``phi_m1`` are Pincus phi values at template lengths ``m``
    and ``m+1``; ``a`` / ``b`` are sample-entropy match counts at ``m+1``
    and ``m``; ``valid`` marks rows with a usable tolerance (non-degenerate
    std) and enough samples (``T > m+1``).
    """

    phi_m: np.ndarray
    phi_m1: np.ndarray
    a: np.ndarray
    b: np.ndarray
    valid: np.ndarray


def _lazy(compute):
    """Per-instance memoisation keyed by the wrapped method's name."""
    name = compute.__name__

    @property
    def wrapper(self):
        try:
            return self._memo[name]
        except KeyError:
            value = compute(self)
            self._memo[name] = value
            return value

    wrapper.fget.__doc__ = compute.__doc__
    return wrapper


class MetricBlockContext:
    """Lazily memoised intermediates over one ``(N, T)`` metric slab.

    Every intermediate is computed at most once per context; contexts live
    for exactly one slab inside ``compute_block``, so memory is bounded by
    one slab's worth of derived arrays.
    """

    __slots__ = ("values", "_memo", "_acf", "_pairwise")

    def __init__(self, values: np.ndarray):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"expected a (N, T) slab, got shape {values.shape}")
        self.values = np.ascontiguousarray(values)
        self._memo: dict[str, np.ndarray] = {}
        self._acf: dict[int, np.ndarray] = {}
        self._pairwise: dict[int, EntropyProfile] = {}

    @property
    def n(self) -> int:
        return self.values.shape[0]

    @property
    def t(self) -> int:
        return self.values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape

    # -- first-order statistics (one reduction each) ---------------------------

    @_lazy
    def mean(self) -> np.ndarray:
        return self.values.mean(axis=1)

    @_lazy
    def std(self) -> np.ndarray:
        return self.values.std(axis=1)

    @_lazy
    def var(self) -> np.ndarray:
        return self.values.var(axis=1)

    @_lazy
    def median(self) -> np.ndarray:
        return np.median(self.values, axis=1)

    @_lazy
    def minimum(self) -> np.ndarray:
        return self.values.min(axis=1)

    @_lazy
    def maximum(self) -> np.ndarray:
        return self.values.max(axis=1)

    # -- derived slabs ---------------------------------------------------------

    @_lazy
    def centered(self) -> np.ndarray:
        """``x - mean`` — shared by moments, trend, CID, and the rFFT."""
        return self.values - self.mean[:, None]

    @_lazy
    def abs_centered(self) -> np.ndarray:
        return np.abs(self.centered)

    @_lazy
    def squared(self) -> np.ndarray:
        """``x**2`` — energy, RMS, and chunked energy ratios."""
        return self.values**2

    @_lazy
    def abs_values(self) -> np.ndarray:
        return np.abs(self.values)

    @_lazy
    def abs_cumsum(self) -> np.ndarray:
        """Cumulative ``|x|`` — the index-mass-quantile family."""
        return np.cumsum(self.abs_values, axis=1)

    @_lazy
    def abs_total(self) -> np.ndarray:
        return self.abs_values.sum(axis=1, keepdims=True)

    @_lazy
    def diffs(self) -> np.ndarray:
        """First differences — the change-statistics family."""
        return np.diff(self.values, axis=1)

    @_lazy
    def sorted_values(self) -> np.ndarray:
        return np.sort(self.values, axis=1)

    @_lazy
    def sorted_diffs(self) -> np.ndarray:
        return np.diff(self.sorted_values, axis=1)

    @_lazy
    def above_mean(self) -> np.ndarray:
        return self.values > self.mean[:, None]

    @_lazy
    def below_mean(self) -> np.ndarray:
        return self.values < self.mean[:, None]

    # -- central moments -------------------------------------------------------

    @_lazy
    def m2(self) -> np.ndarray:
        return np.mean(self.centered**2, axis=1)

    @_lazy
    def m3(self) -> np.ndarray:
        return np.mean(self.centered**3, axis=1)

    @_lazy
    def m4(self) -> np.ndarray:
        return np.mean(self.centered**4, axis=1)

    # -- spectral --------------------------------------------------------------

    @_lazy
    def power_spectrum(self) -> np.ndarray:
        """``|rfft(x - mean)|**2`` with the DC bin dropped."""
        spec = np.abs(np.fft.rfft(self.centered, axis=1)) ** 2
        return spec[:, 1:]

    # -- keyed intermediates ---------------------------------------------------

    def windows(self, width: int) -> np.ndarray:
        """Sliding-window view ``(N, T - width + 1, width)`` (zero-copy)."""
        return sliding_window_view(self.values, width, axis=1)

    def autocorrelation(self, lag: int) -> np.ndarray:
        """ACF at *lag*, memoised so individual lags and the aggregate share."""
        acf = self._acf.get(lag)
        if acf is None:
            if lag >= self.t:
                acf = np.zeros(self.n)
            else:
                cov = np.mean(self.centered[:, :-lag] * self.centered[:, lag:], axis=1)
                out = np.zeros(self.n)
                ok = np.abs(self.var) > 1e-12
                np.divide(cov, self.var, out=out, where=ok)
                acf = out
            self._acf[lag] = acf
        return acf

    def entropy_profile(self, m: int = 2, r_factor: float = 0.2) -> EntropyProfile:
        """Chebyshev-distance statistics shared by ApEn and SampEn.

        One row-chunked pass builds the pairwise window-distance tensors for
        template lengths ``m`` and ``m+1`` and reduces them to the four
        per-row statistics both entropies need.  Matches the per-row
        reference semantics exactly: windows of length ``L`` number
        ``T - L + 1``, tolerance is ``r_factor * row.std()``, counts include
        self-matches for phi and exclude them for A/B.
        """
        key = (m, r_factor)
        profile = self._pairwise.get(key)
        if profile is not None:
            return profile

        n, t = self.shape
        r = r_factor * self.std
        # Mirrors the reference guard `r < 1e-12 or t <= m + 1` (NaN r stays
        # "valid" there too, and degrades the same way downstream).
        valid = ~(r < 1e-12) if t > m + 1 else np.zeros(n, dtype=bool)
        phi_m = np.zeros(n)
        phi_m1 = np.zeros(n)
        a = np.zeros(n)
        b = np.zeros(n)

        idx = np.flatnonzero(valid)
        if idx.size:
            rows_per_chunk = max(1, int(_ENTROPY_CHUNK_BYTES // (3 * 8 * t * t)))
            with np.errstate(divide="ignore", invalid="ignore"):
                for lo in range(0, idx.size, rows_per_chunk):
                    rows = idx[lo : lo + rows_per_chunk]
                    v = self.values[rows]
                    rr = r[rows, None, None]
                    # E_1[i, j] = |x_i - x_j|; E_L extends the diagonal max.
                    e1 = np.abs(v[:, :, None] - v[:, None, :])
                    e = e1
                    for width in range(1, m + 2):
                        if width > 1:
                            e = np.maximum(e[:, :-1, :-1], e1[:, width - 1 :, width - 1 :])
                        if width == m:
                            le = e <= rr
                            phi_m[rows] = np.mean(np.log(np.mean(le, axis=2)), axis=1)
                            b[rows] = (le.sum(axis=(1, 2)) - le.shape[1]) / 2.0
                    le = e <= rr
                    phi_m1[rows] = np.mean(np.log(np.mean(le, axis=2)), axis=1)
                    a[rows] = (le.sum(axis=(1, 2)) - le.shape[1]) / 2.0

        profile = EntropyProfile(phi_m, phi_m1, a, b, valid)
        self._pairwise[key] = profile
        return profile


def as_context(x: np.ndarray | MetricBlockContext) -> MetricBlockContext:
    """Wrap a raw slab into a context; pass an existing context through."""
    if isinstance(x, MetricBlockContext):
        return x
    return MetricBlockContext(x)
