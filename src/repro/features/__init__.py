"""Feature pipeline: TSFRESH-style extraction, Chi-square selection, scaling."""

from repro.features.calculators import (
    Calculator,
    calculator_names,
    default_calculators,
    full_calculators,
)
from repro.features.extraction import FeatureExtractor
from repro.features.scaling import (
    MinMaxScaler,
    RobustScaler,
    Scaler,
    StandardScaler,
    make_scaler,
    scaler_from_state,
)
from repro.features.selection import ChiSquareSelector, VarianceThreshold, chi2_scores

__all__ = [
    "Calculator",
    "ChiSquareSelector",
    "FeatureExtractor",
    "MinMaxScaler",
    "RobustScaler",
    "Scaler",
    "StandardScaler",
    "VarianceThreshold",
    "calculator_names",
    "chi2_scores",
    "default_calculators",
    "full_calculators",
    "make_scaler",
    "scaler_from_state",
]
