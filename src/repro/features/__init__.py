"""Feature pipeline: TSFRESH-style extraction, Chi-square selection, scaling."""

from repro.features.alignment import FeatureTable, align_feature_groups
from repro.features.calculators import (
    KERNEL_VERSION,
    Calculator,
    calculator_names,
    calculator_set_digest,
    default_calculators,
    full_calculators,
)
from repro.features.context import EntropyProfile, MetricBlockContext, as_context
from repro.features.extraction import FeatureExtractor
from repro.features.ringbuffer import NodeRingBuffer
from repro.features.rolling import (
    ROLLING_LAGS,
    EntropySlabCache,
    RollingCrossings,
    RollingNodeEngine,
    RollingPlan,
)
from repro.features.scaling import (
    MinMaxScaler,
    RobustScaler,
    Scaler,
    StandardScaler,
    make_scaler,
    scaler_from_state,
)
from repro.features.selection import ChiSquareSelector, VarianceThreshold, chi2_scores

__all__ = [
    "Calculator",
    "ChiSquareSelector",
    "EntropyProfile",
    "FeatureExtractor",
    "FeatureTable",
    "align_feature_groups",
    "KERNEL_VERSION",
    "MetricBlockContext",
    "MinMaxScaler",
    "NodeRingBuffer",
    "ROLLING_LAGS",
    "EntropySlabCache",
    "RollingCrossings",
    "RollingNodeEngine",
    "RollingPlan",
    "RobustScaler",
    "Scaler",
    "StandardScaler",
    "VarianceThreshold",
    "as_context",
    "calculator_names",
    "calculator_set_digest",
    "chi2_scores",
    "default_calculators",
    "full_calculators",
    "make_scaler",
    "scaler_from_state",
]
