"""Feature selection (paper Sec. 3.2 / 5.4.3).

Prodigy selects the most discriminative features with the Chi-square test
between each (non-negative) feature and the class variable.  This is the
only stage that sees anomalous labels, and it needs very few of them (24-55
anomalous samples in the paper).  The selector here matches the
scikit-learn ``chi2`` contract the paper relies on: per-class feature sums
as observed counts against class-frequency-scaled totals as expected
counts.

Features are min-max normalised to [0, 1] internally before the test (the
Chi-square statistic requires non-negative "frequencies"; the paper applies
its scaler before selection for the same reason).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.telemetry.sampleset import SampleSet
from repro.util.validation import check_fitted, check_labels, check_matrix

__all__ = ["chi2_scores", "ChiSquareSelector", "VarianceThreshold"]


def chi2_scores(
    features: np.ndarray,
    labels: np.ndarray,
    *,
    present: np.ndarray | None = None,
) -> np.ndarray:
    """Chi-square statistic of each feature column against the labels.

    ``features`` must be non-negative; rows are samples.  Returns one score
    per column (larger = more class-dependent).  Columns with zero total
    mass score 0.

    With a boolean *present* mask (mixed-schema extraction), absent cells
    contribute no mass and the class frequencies are computed per column
    over the rows that actually observe it, so a feature only half the
    fleet produces is judged against its own population — not diluted by
    the other half's 0-fill.  A dense mask reproduces the unmasked scores
    exactly.
    """
    x = check_matrix(features, name="features")
    y = check_labels(labels, n_samples=x.shape[0])
    if np.any(x < 0):
        raise ValueError("chi2 requires non-negative features; scale first")
    classes = np.unique(y)
    if classes.size < 2:
        raise ValueError("chi2 needs both healthy and anomalous samples")
    if present is None:
        # observed[c, f]: total feature mass in class c.
        observed = np.stack([x[y == c].sum(axis=0) for c in classes])
        class_prob = np.array([(y == c).mean() for c in classes])
        feature_total = x.sum(axis=0)
        expected = class_prob[:, None] * feature_total[None, :]
    else:
        p = np.asarray(present, dtype=bool)
        if p.shape != x.shape:
            raise ValueError(f"present mask shape {p.shape} != features shape {x.shape}")
        xp = np.where(p, x, 0.0)
        observed = np.stack([xp[y == c].sum(axis=0) for c in classes])
        counts = np.stack([p[y == c].sum(axis=0) for c in classes]).astype(np.float64)
        total = p.sum(axis=0).astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            class_prob = counts / total[None, :]
        class_prob[~np.isfinite(class_prob)] = 0.0
        feature_total = xp.sum(axis=0)
        expected = class_prob * feature_total[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = (observed - expected) ** 2 / expected
    terms[~np.isfinite(terms)] = 0.0
    return terms.sum(axis=0)


class VarianceThreshold:
    """Drops (near-)constant feature columns before the Chi-square test."""

    def __init__(self, threshold: float = 1e-12):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.mask_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "VarianceThreshold":
        x = check_matrix(features, name="features")
        self.mask_ = x.var(axis=0) > self.threshold
        if not self.mask_.any():
            raise ValueError("all features are constant under the threshold")
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        check_fitted(self, ["mask_"])
        x = check_matrix(features, name="features")
        if x.shape[1] != self.mask_.shape[0]:
            raise ValueError(
                f"features has {x.shape[1]} columns, fitted on {self.mask_.shape[0]}"
            )
        return x[:, self.mask_]

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


class ChiSquareSelector:
    """Top-k Chi-square feature selection over a labeled :class:`SampleSet`.

    The fitted selector records the chosen feature *names*, so it can be
    applied to any later SampleSet sharing the extraction layout — this is
    what the deployment metadata persists.

    Parameters
    ----------
    k:
        Number of features to keep (paper sweeps 250/500/1000/2000 and
        settles on 2000; scaled datasets use proportionally fewer).
    variance_threshold:
        Pre-filter threshold for near-constant columns.
    """

    def __init__(self, k: int = 256, *, variance_threshold: float = 1e-12):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.variance_threshold = variance_threshold
        self.selected_names_: tuple[str, ...] | None = None
        self.scores_: np.ndarray | None = None

    @classmethod
    def sentinel(
        cls,
        names: Sequence[str],
        scores: np.ndarray | Sequence[float],
        *,
        k: int | None = None,
    ) -> "ChiSquareSelector":
        """A fitted selector carrying predetermined names and scores.

        Used when selection happened outside the Chi-square test — the
        healthy-only variance fallback and deployment-metadata reload —
        so those paths share one construction instead of hand-assembling
        selector internals.  ``scores`` must align with ``names``.
        """
        names = tuple(str(n) for n in names)
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (len(names),):
            raise ValueError(
                f"scores has shape {scores.shape}, expected ({len(names)},)"
            )
        selector = cls(k=len(names) if k is None else k)
        selector.selected_names_ = names
        selector.scores_ = scores
        selector._ranked = sorted(
            zip(names, (float(s) for s in scores)), key=lambda p: -p[1]
        )
        return selector

    def fit(self, samples: SampleSet) -> "ChiSquareSelector":
        """Select features on a SampleSet containing both classes.

        Mixed-schema SampleSets (those carrying a presence mask) are scored
        mask-aware: variance, min-max normalisation and the Chi-square test
        all run over each column's observed cells only, so 0-filled absent
        cells never masquerade as measurements.
        """
        labeled = samples.subset(samples.labels != -1)
        x = labeled.features
        y = labeled.labels
        if labeled.present is None:
            var_mask = x.var(axis=0) > self.variance_threshold
            if not var_mask.any():
                raise ValueError("all features are constant; nothing to select")
            x_var = x[:, var_mask]
            # Min-max to [0,1] per column so mass is non-negative and comparable.
            mn = x_var.min(axis=0)
            rng = x_var.max(axis=0) - mn
            rng[rng == 0] = 1.0
            scores_var = chi2_scores((x_var - mn) / rng, y)
        else:
            p = labeled.present
            cnt = p.sum(axis=0).astype(np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                mean = np.where(p, x, 0.0).sum(axis=0) / cnt
                mean_sq = np.where(p, x * x, 0.0).sum(axis=0) / cnt
            var = mean_sq - mean**2
            var[~np.isfinite(var)] = 0.0
            var_mask = (var > self.variance_threshold) & (cnt >= 2)
            if not var_mask.any():
                raise ValueError("all features are constant; nothing to select")
            x_var, p_var = x[:, var_mask], p[:, var_mask]
            mn = np.where(p_var, x_var, np.inf).min(axis=0)
            rng = np.where(p_var, x_var, -np.inf).max(axis=0) - mn
            rng[rng == 0] = 1.0
            scaled = np.where(p_var, (x_var - mn) / rng, 0.0)
            scores_var = chi2_scores(scaled, y, present=p_var)
        scores = np.zeros(x.shape[1])
        scores[var_mask] = scores_var
        k = min(self.k, int(var_mask.sum()))
        # Stable top-k: sort by (-score, column index).
        order = np.lexsort((np.arange(scores.size), -scores))
        top = np.sort(order[:k])
        names = np.asarray(samples.feature_names, dtype=object)
        self.selected_names_ = tuple(str(n) for n in names[top])
        self.scores_ = scores
        self._ranked = sorted(
            ((str(names[i]), float(scores[i])) for i in top), key=lambda p: -p[1]
        )
        return self

    def transform(self, samples: SampleSet) -> SampleSet:
        check_fitted(self, ["selected_names_"])
        return samples.select_features(self.selected_names_)

    def fit_transform(self, samples: SampleSet) -> SampleSet:
        return self.fit(samples).transform(samples)

    def top_features(self, n: int = 20) -> list[tuple[str, float]]:
        """The *n* highest-scoring selected features with their Chi-square scores."""
        check_fitted(self, ["selected_names_", "scores_"])
        return self._ranked[:n]
