"""Vectorised time-series feature calculators (TSFRESH equivalent).

The paper extracts 794 TSFRESH features per metric from 63 characterisation
methods.  This module reproduces the methodology with a calculator registry
covering the same families — descriptive statistics, change statistics,
run/strike structure, entropy, spectral density, nonlinearity (C3, time
reversal asymmetry), Benford correlation, autocorrelation — implemented as
batched NumPy kernels.

Every calculator maps a ``(N, T)`` batch (N samples of one metric, T
time steps) to ``(N,)`` or ``(N, k)`` feature values.  Two layers of
batching keep extraction tractable in pure Python:

* one vectorised call per (metric, calculator) pair instead of
  ``N * M * F`` scalar calls, and
* a shared-intermediate :class:`~repro.features.context.MetricBlockContext`
  per metric slab, so the moments, diffs, sorts, centered series, and
  pairwise window distances that many calculators need are computed once
  and memoised instead of once per calculator.

The expensive tier (approximate/sample entropy, permutation entropy,
Lempel-Ziv complexity) is vectorised across the N axis — no kernel loops
over rows in Python.  The frozen pre-vectorization implementations live in
:mod:`repro.features.reference` for parity testing and benchmarking.

Degenerate inputs (constant series, zero variance) yield well-defined
finite values (0.0 by convention) rather than NaN, so downstream scalers
and models never see non-finite features.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from math import factorial as _factorial
from typing import Callable, Sequence

import numpy as np
from scipy import signal as _signal

from repro.features.context import MetricBlockContext, as_context

__all__ = [
    "Calculator",
    "KERNEL_VERSION",
    "COST_WEIGHTS",
    "calculator_cost_weight",
    "calculator_set_digest",
    "default_calculators",
    "full_calculators",
    "calculator_names",
]

#: Bumped whenever any kernel's numerics change, so FeatureCache keys built
#: before the change can never serve stale rows computed by old kernels.
KERNEL_VERSION = 2

#: Relative per-metric cost of one calculator by tier, used by the runtime
#: layer's cost-aware chunk scheduler.  Calibrated on the check_perf feature
#: workload (32 x 128 slabs): one expensive kernel costs roughly 25 cheap
#: ones even after vectorisation.
COST_WEIGHTS = {"cheap": 1.0, "moderate": 4.0, "expensive": 25.0}


@dataclass(frozen=True)
class Calculator:
    """One feature calculator.

    ``func`` maps ``(N, T) -> (N,)`` or ``(N, k)``; ``output_names`` has one
    entry per output column.  ``cost`` tags expensive kernels excluded from
    the default set (mirroring TSFRESH's EfficientFCParameters) and weights
    the parallel engine's chunk scheduling.  Context-aware calculators
    (``uses_context=True``, all builtins) receive the slab's shared
    :class:`MetricBlockContext`; plain ones (the default, so third-party
    calculators keep working) receive the raw ``(N, T)`` array.
    """

    name: str
    func: Callable[[np.ndarray], np.ndarray]
    output_names: tuple[str, ...]
    cost: str = "cheap"
    uses_context: bool = field(default=False, compare=False)
    #: Sliding-update family the streaming engine can compute this
    #: calculator with ("moments", "extrema", "diffs", "autocorr",
    #: "indicator", "entropy"); None means not incrementalizable — the
    #: rolling path falls back to the batch kernel on the window view.
    #: A capability hint, not identity: excluded from eq and the digest.
    rolling: str | None = field(default=None, compare=False)

    def __call__(self, x: np.ndarray | MetricBlockContext) -> np.ndarray:
        ctx = as_context(x)
        out = self.func(ctx if self.uses_context else ctx.values)
        out = np.asarray(out, dtype=np.float64)
        if out.ndim == 1:
            out = out[:, None]
        if out.shape != (ctx.n, len(self.output_names)):
            raise ValueError(
                f"calculator {self.name!r} returned shape {out.shape}, "
                f"expected ({ctx.n}, {len(self.output_names)})"
            )
        # Features must stay finite for the scaler/model stack.
        return np.nan_to_num(out, nan=0.0, posinf=0.0, neginf=0.0)


def calculator_cost_weight(calc: Calculator) -> float:
    """Scheduling weight of one calculator (unknown tiers priced as cheap)."""
    return COST_WEIGHTS.get(calc.cost, COST_WEIGHTS["cheap"])


def calculator_set_digest(calculators: Sequence[Calculator]) -> bytes:
    """16-byte content digest of a calculator set, including kernel version.

    Covers everything that shapes output values and layout: the kernel
    generation, each calculator's name, column names, and cost tier.  Part
    of every :class:`~repro.runtime.cache.FeatureCache` key, so vectorised
    kernel changes can never serve feature rows cached by older kernels.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(f"kernels:v{KERNEL_VERSION}".encode())
    for calc in calculators:
        h.update(b"\x00")
        h.update(calc.name.encode())
        h.update(b"\x01")
        h.update("\x1f".join(calc.output_names).encode())
        h.update(b"\x01")
        h.update(calc.cost.encode())
    return h.digest()


def _safe_div(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """Elementwise division that returns 0 where the denominator is ~0."""
    den = np.asarray(den, dtype=np.float64)
    out = np.zeros(np.broadcast(num, den).shape)
    ok = np.abs(den) > 1e-12
    np.divide(num, den, out=out, where=ok)
    return out


# -- descriptive statistics ---------------------------------------------------


def _skewness(x) -> np.ndarray:
    c = as_context(x)
    return _safe_div(c.m3, c.m2**1.5)


def _kurtosis(x) -> np.ndarray:
    c = as_context(x)
    return _safe_div(c.m4, c.m2**2) - 3.0


def _variation_coefficient(x) -> np.ndarray:
    c = as_context(x)
    return _safe_div(c.std, c.mean)


def _mean_n_absolute_max(x, n: int) -> np.ndarray:
    c = as_context(x)
    n = min(n, c.t)
    part = np.partition(c.abs_values, c.t - n, axis=1)
    return part[:, -n:].mean(axis=1)


# -- change statistics --------------------------------------------------------


def _mean_abs_change(x) -> np.ndarray:
    return np.mean(np.abs(as_context(x).diffs), axis=1)


def _mean_change(x) -> np.ndarray:
    c = as_context(x)
    return _safe_div(c.values[:, -1] - c.values[:, 0], float(c.t - 1))


def _mean_second_derivative_central(x) -> np.ndarray:
    c = as_context(x)
    if c.t < 3:
        return np.zeros(c.n)
    v = c.values
    return np.mean(0.5 * (v[:, 2:] - 2.0 * v[:, 1:-1] + v[:, :-2]), axis=1)


def _absolute_sum_of_changes(x) -> np.ndarray:
    return np.sum(np.abs(as_context(x).diffs), axis=1)


def _cid_ce(x, normalize: bool) -> np.ndarray:
    c = as_context(x)
    if normalize:
        z = _safe_div(c.centered, c.std[:, None])
        return np.sqrt(np.sum(np.diff(z, axis=1) ** 2, axis=1))
    return np.sqrt(np.sum(c.diffs**2, axis=1))


# -- location / run structure ---------------------------------------------------


def _first_location_of_maximum(x) -> np.ndarray:
    c = as_context(x)
    return c.values.argmax(axis=1) / c.t


def _last_location_of_maximum(x) -> np.ndarray:
    c = as_context(x)
    return 1.0 - c.values[:, ::-1].argmax(axis=1) / c.t


def _first_location_of_minimum(x) -> np.ndarray:
    c = as_context(x)
    return c.values.argmin(axis=1) / c.t


def _last_location_of_minimum(x) -> np.ndarray:
    c = as_context(x)
    return 1.0 - c.values[:, ::-1].argmin(axis=1) / c.t


def _count_above_mean(x) -> np.ndarray:
    return np.sum(as_context(x).above_mean, axis=1).astype(np.float64)


def _count_below_mean(x) -> np.ndarray:
    return np.sum(as_context(x).below_mean, axis=1).astype(np.float64)


def _longest_run(mask: np.ndarray) -> np.ndarray:
    """Longest run of True per row of a boolean matrix, vectorised."""
    counts = np.cumsum(mask, axis=1, dtype=np.int64)
    # At each False position remember the cumulative count; the running max
    # of those is what has been "spent" before the current run started.
    spent = np.where(~mask, counts, 0)
    spent = np.maximum.accumulate(spent, axis=1)
    return np.max(counts - spent, axis=1).astype(np.float64)


def _longest_strike_above_mean(x) -> np.ndarray:
    return _longest_run(as_context(x).above_mean)


def _longest_strike_below_mean(x) -> np.ndarray:
    return _longest_run(as_context(x).below_mean)


def _number_crossings_mean(x) -> np.ndarray:
    above = as_context(x).above_mean
    return np.sum(above[:, 1:] != above[:, :-1], axis=1).astype(np.float64)


def _number_peaks(x, n: int) -> np.ndarray:
    """Peaks with support *n*: strictly larger than n neighbours each side."""
    c = as_context(x)
    t, v = c.t, c.values
    if t < 2 * n + 1:
        return np.zeros(c.n)
    center = v[:, n : t - n]
    is_peak = np.ones(center.shape, dtype=bool)
    for k in range(1, n + 1):
        is_peak &= center > v[:, n - k : t - n - k]
        is_peak &= center > v[:, n + k : t - n + k]
    return is_peak.sum(axis=1).astype(np.float64)


def _index_mass_quantile(x, q: float) -> np.ndarray:
    c = as_context(x)
    # For all-zero rows every index qualifies; argmax returns 0 which is fine.
    reached = c.abs_cumsum >= q * c.abs_total
    return (reached.argmax(axis=1) + 1) / c.t


# -- dispersion ratios -----------------------------------------------------------


def _ratio_beyond_r_sigma(x, r: float) -> np.ndarray:
    c = as_context(x)
    return np.mean(c.abs_centered > r * c.std[:, None], axis=1)


def _large_standard_deviation(x, r: float = 0.25) -> np.ndarray:
    c = as_context(x)
    rng = c.maximum - c.minimum
    return (c.std > r * rng).astype(np.float64)


def _symmetry_looking(x, r: float = 0.05) -> np.ndarray:
    c = as_context(x)
    rng = c.maximum - c.minimum
    return (np.abs(c.mean - c.median) < r * rng).astype(np.float64)


def _variance_larger_than_std(x) -> np.ndarray:
    v = as_context(x).var
    return (v > np.sqrt(v)).astype(np.float64)


def _range_count_within_sigma(x) -> np.ndarray:
    c = as_context(x)
    return np.mean(c.abs_centered <= c.std[:, None], axis=1)


def _ratio_unique_values(x) -> np.ndarray:
    c = as_context(x)
    distinct = 1 + np.sum(c.sorted_diffs != 0, axis=1)
    return distinct / c.t


def _percentage_reoccurring(x) -> np.ndarray:
    same_prev = as_context(x).sorted_diffs == 0
    # A value participates in a reoccurrence if it equals a neighbour.
    occurs = np.concatenate(
        [same_prev[:, :1], same_prev[:, 1:] | same_prev[:, :-1], same_prev[:, -1:]], axis=1
    )
    return occurs.mean(axis=1)


# -- trend / autocorrelation -------------------------------------------------------


def _linear_trend(x) -> np.ndarray:
    """Slope, correlation coefficient, and residual std of an OLS line fit."""
    c = as_context(x)
    t = c.t
    time = np.arange(t, dtype=np.float64)
    tc = time - time.mean()
    denom = np.sum(tc**2)
    xc = c.centered
    slope = (xc @ tc) / denom
    rvalue = _safe_div(slope * np.sqrt(denom / t), c.std)
    resid = xc - slope[:, None] * tc
    return np.stack([slope, rvalue, resid.std(axis=1)], axis=1)


def _autocorrelation(x, lag: int) -> np.ndarray:
    return as_context(x).autocorrelation(lag)


def _agg_autocorrelation(x, max_lag: int = 40) -> np.ndarray:
    """Mean and std of the autocorrelation function over lags 1..max_lag."""
    c = as_context(x)
    lags = range(1, min(max_lag, c.t - 1) + 1)
    if not len(lags):
        return np.zeros((c.n, 2))
    acf = np.stack([c.autocorrelation(lag) for lag in lags], axis=1)
    return np.stack([acf.mean(axis=1), acf.std(axis=1)], axis=1)


def _c3(x, lag: int) -> np.ndarray:
    """Schreiber & Schmitz C3 nonlinearity statistic."""
    c = as_context(x)
    t, v = c.t, c.values
    if 2 * lag >= t:
        return np.zeros(c.n)
    return np.mean(v[:, 2 * lag :] * v[:, lag : t - lag] * v[:, : t - 2 * lag], axis=1)


def _time_reversal_asymmetry(x, lag: int) -> np.ndarray:
    c = as_context(x)
    t, v = c.t, c.values
    if 2 * lag >= t:
        return np.zeros(c.n)
    a = v[:, 2 * lag :]
    b = v[:, lag : t - lag]
    d = v[:, : t - 2 * lag]
    return np.mean(a**2 * b - b * d**2, axis=1)


# -- entropy / distribution ----------------------------------------------------------


def _binned_entropy(x, bins: int = 10) -> np.ndarray:
    c = as_context(x)
    mn = c.minimum[:, None]
    rng = c.maximum[:, None] - mn
    norm = _safe_div(c.values - mn, rng)
    idx = np.minimum((norm * bins).astype(np.int64), bins - 1)
    ent = np.zeros(c.n)
    for k in range(bins):
        p = np.mean(idx == k, axis=1)
        ent -= np.where(p > 0, p * np.log(np.where(p > 0, p, 1.0)), 0.0)
    # Constant rows have range 0 -> all mass in bin 0 -> entropy 0: correct.
    return ent


def _benford_correlation(x) -> np.ndarray:
    """Correlation of the first-significant-digit histogram with Benford's law."""
    c = as_context(x)
    absx = c.abs_values
    valid = absx > 1e-12
    safe = np.where(valid, absx, 1.0)
    exponent = np.floor(np.log10(safe))
    digit = np.floor(safe / 10.0**exponent).astype(np.int64)
    digit = np.clip(digit, 1, 9)
    benford = np.log10(1.0 + 1.0 / np.arange(1, 10))
    counts = np.stack([np.sum((digit == d) & valid, axis=1) for d in range(1, 10)], axis=1)
    total = counts.sum(axis=1, keepdims=True)
    probs = _safe_div(counts, total)
    pc = probs - probs.mean(axis=1, keepdims=True)
    bc = benford - benford.mean()
    num = pc @ bc
    den = np.sqrt(np.sum(pc**2, axis=1) * np.sum(bc**2))
    return _safe_div(num, den)


def _quantiles(x, qs: Sequence[float]) -> np.ndarray:
    return np.quantile(as_context(x).values, qs, axis=1).T


def _iqr(x) -> np.ndarray:
    v = as_context(x).values
    return np.quantile(v, 0.75, axis=1) - np.quantile(v, 0.25, axis=1)


def _energy_ratio_by_chunks(x, n_chunks: int = 10) -> np.ndarray:
    c = as_context(x)
    edges = np.linspace(0, c.t, n_chunks + 1).astype(int)
    total = np.sum(c.squared, axis=1)
    out = np.empty((c.n, n_chunks))
    for i in range(n_chunks):
        seg = c.squared[:, edges[i] : edges[i + 1]]
        out[:, i] = _safe_div(np.sum(seg, axis=1), total)
    return out


# -- spectral -----------------------------------------------------------------------


def _fft_aggregated(x) -> np.ndarray:
    """Centroid, variance, skew, kurtosis, entropy of the power spectrum."""
    spec = as_context(x).power_spectrum  # DC removed with the mean anyway
    freqs = np.arange(1, spec.shape[1] + 1, dtype=np.float64)
    total = spec.sum(axis=1)
    p = _safe_div(spec, total[:, None])
    centroid = p @ freqs
    dev = freqs[None, :] - centroid[:, None]
    var = np.sum(p * dev**2, axis=1)
    skew = _safe_div(np.sum(p * dev**3, axis=1), var**1.5)
    kurt = _safe_div(np.sum(p * dev**4, axis=1), var**2)
    ent = -np.sum(np.where(p > 0, p * np.log(np.where(p > 0, p, 1.0)), 0.0), axis=1)
    return np.stack([centroid, var, skew, kurt, ent], axis=1)


def _welch_psd(x) -> np.ndarray:
    """Peak PSD, peak frequency, and total power from Welch's method."""
    c = as_context(x)
    nperseg = min(64, c.t)
    freqs, psd = _signal.welch(c.values, fs=1.0, nperseg=nperseg, axis=-1)
    peak = psd.max(axis=1)
    peak_freq = freqs[psd.argmax(axis=1)]
    power = psd.sum(axis=1)
    return np.stack([peak, peak_freq, power], axis=1)


# -- expensive kernels (full set only), vectorised across rows --------------------


def _approximate_entropy(x, m: int = 2, r_factor: float = 0.2) -> np.ndarray:
    """Pincus approximate entropy, batched over the N axis.

    Draws phi(m) and phi(m+1) from the context's shared entropy profile, so
    sample entropy over the same slab reuses the distance tensors for free.
    """
    profile = as_context(x).entropy_profile(m, r_factor)
    return np.where(profile.valid, profile.phi_m - profile.phi_m1, 0.0)


def _sample_entropy(x, m: int = 2, r_factor: float = 0.2) -> np.ndarray:
    profile = as_context(x).entropy_profile(m, r_factor)
    ok = profile.valid & (profile.a > 0) & (profile.b > 0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(ok, profile.a, 1.0) / np.where(ok, profile.b, 1.0)
        return np.where(ok, -np.log(ratio), 0.0)


def _permutation_entropy(x, order: int = 3) -> np.ndarray:
    c = as_context(x)
    n, t = c.shape
    if t < order:
        return np.zeros(n)
    windows = c.windows(order)  # (N, T-order+1, order)
    ranks = np.argsort(windows, axis=2, kind="stable")
    weights = (order ** np.arange(order)).astype(np.int64)
    codes = ranks @ weights  # unique int per permutation
    # Histogram all rows in one bincount over row-offset codes.
    span = int(order**order)
    n_windows = codes.shape[1]
    offsets = np.arange(n, dtype=np.int64)[:, None] * span
    counts = np.bincount((codes + offsets).ravel(), minlength=n * span).reshape(n, span)
    p = counts / n_windows
    ent = -np.sum(np.where(p > 0, p * np.log(np.where(p > 0, p, 1.0)), 0.0), axis=1)
    return ent / np.log(float(_factorial(order)))


def _lempel_ziv_complexity(x) -> np.ndarray:
    """Normalised LZ76 complexity of the series binarised at its median.

    All rows advance through the LZ76 parse in lockstep: per step, a
    vectorised membership test decides for every unfinished row whether its
    current phrase candidate ``s[start:start+len]`` occurs earlier, growing
    the candidate or emitting a phrase accordingly.  The match set — the
    positions ``j < start`` where ``s[j:j+len]`` equals the candidate — is
    maintained incrementally, so each step costs one ``(N, T)`` gather
    instead of a substring scan per row.
    """
    c = as_context(x)
    bits = (c.values > c.median[:, None]).astype(np.uint8)
    n, t = bits.shape
    rows = np.arange(n)
    col = np.arange(t)[None, :]
    start = np.zeros(n, dtype=np.int64)
    length = np.ones(n, dtype=np.int64)
    phrases = np.zeros(n, dtype=np.int64)
    match = np.zeros((n, t), dtype=bool)  # start == 0: no earlier positions
    active = (start + length) <= t
    while active.any():
        contained = match.any(axis=1) & active
        emit = active & ~contained
        if emit.any():
            phrases[emit] += 1
            start[emit] += length[emit]
            length[emit] = 1
            anchor = np.minimum(start, t - 1)
            fresh = (col < start[:, None]) & (bits == bits[rows, anchor][:, None])
            match = np.where(emit[:, None], fresh, match)
        if contained.any():
            # Candidate grows by one symbol: keep positions whose next
            # symbol matches the candidate's next symbol.
            cmp_idx = np.minimum(col + length[:, None], t - 1)
            tgt_idx = np.minimum(start + length, t - 1)
            still = np.take_along_axis(bits, cmp_idx, axis=1) == bits[rows, tgt_idx][:, None]
            match = np.where(contained[:, None], match & still, match)
            length[contained] += 1
        active = (start + length) <= t
    counts = phrases + (length > 1)
    return counts / (t / np.log2(max(t, 2)))


# -- registry ---------------------------------------------------------------------


def _simple(name: str, func, cost: str = "cheap", rolling: str | None = None) -> Calculator:
    return Calculator(name, func, (name,), cost, uses_context=True, rolling=rolling)


def default_calculators() -> list[Calculator]:
    """The efficient calculator set used by the experiments (~95 features)."""
    qs = (0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95)
    calcs: list[Calculator] = [
        _simple("mean", lambda c: c.mean, rolling="moments"),
        _simple("median", lambda c: c.median),
        _simple("std", lambda c: c.std, rolling="moments"),
        _simple("variance", lambda c: c.var, rolling="moments"),
        _simple("minimum", lambda c: c.minimum, rolling="extrema"),
        _simple("maximum", lambda c: c.maximum, rolling="extrema"),
        _simple("range", lambda c: c.maximum - c.minimum, rolling="extrema"),
        _simple("sum_values", lambda c: c.values.sum(axis=1), rolling="moments"),
        _simple("abs_energy", lambda c: np.sum(c.squared, axis=1), rolling="moments"),
        _simple("root_mean_square", lambda c: np.sqrt(np.mean(c.squared, axis=1)), rolling="moments"),
        _simple("absolute_maximum", lambda c: c.abs_values.max(axis=1), rolling="extrema"),
        _simple("skewness", _skewness, rolling="moments"),
        _simple("kurtosis", _kurtosis, rolling="moments"),
        _simple("variation_coefficient", _variation_coefficient, rolling="moments"),
        _simple("iqr", _iqr),
        _simple("mean_abs_deviation", lambda c: np.mean(c.abs_centered, axis=1)),
        _simple(
            "median_abs_deviation",
            lambda c: np.median(np.abs(c.values - c.median[:, None]), axis=1),
        ),
        Calculator(
            "quantile",
            lambda c: _quantiles(c, qs),
            tuple(f"quantile_q{q:g}" for q in qs),
            uses_context=True,
        ),
        _simple("mean_abs_change", _mean_abs_change, rolling="diffs"),
        _simple("mean_change", _mean_change, rolling="diffs"),
        _simple("mean_second_derivative_central", _mean_second_derivative_central, rolling="diffs"),
        _simple("absolute_sum_of_changes", _absolute_sum_of_changes, rolling="diffs"),
        _simple("cid_ce", lambda c: _cid_ce(c, normalize=False), rolling="diffs"),
        _simple("cid_ce_normalized", lambda c: _cid_ce(c, normalize=True), rolling="diffs"),
        _simple("mean_n_absolute_max_7", lambda c: _mean_n_absolute_max(c, 7)),
        _simple("first_location_of_maximum", _first_location_of_maximum),
        _simple("last_location_of_maximum", _last_location_of_maximum),
        _simple("first_location_of_minimum", _first_location_of_minimum),
        _simple("last_location_of_minimum", _last_location_of_minimum),
        _simple("count_above_mean", _count_above_mean),
        _simple("count_below_mean", _count_below_mean),
        _simple("longest_strike_above_mean", _longest_strike_above_mean),
        _simple("longest_strike_below_mean", _longest_strike_below_mean),
        _simple("number_crossings_mean", _number_crossings_mean),
        _simple("number_peaks_1", lambda c: _number_peaks(c, 1)),
        _simple("number_peaks_5", lambda c: _number_peaks(c, 5)),
        _simple("index_mass_quantile_q25", lambda c: _index_mass_quantile(c, 0.25)),
        _simple("index_mass_quantile_q50", lambda c: _index_mass_quantile(c, 0.5)),
        _simple("index_mass_quantile_q75", lambda c: _index_mass_quantile(c, 0.75)),
        _simple("ratio_beyond_1_sigma", lambda c: _ratio_beyond_r_sigma(c, 1.0)),
        _simple("ratio_beyond_2_sigma", lambda c: _ratio_beyond_r_sigma(c, 2.0)),
        _simple("ratio_beyond_3_sigma", lambda c: _ratio_beyond_r_sigma(c, 3.0)),
        _simple("large_standard_deviation", _large_standard_deviation, rolling="indicator"),
        _simple("symmetry_looking", _symmetry_looking),
        _simple("variance_larger_than_std", _variance_larger_than_std, rolling="indicator"),
        _simple("range_count_within_sigma", _range_count_within_sigma),
        _simple("ratio_unique_values", _ratio_unique_values),
        _simple("percentage_reoccurring_values", _percentage_reoccurring),
        Calculator(
            "linear_trend",
            _linear_trend,
            ("trend_slope", "trend_rvalue", "trend_residual_std"),
            uses_context=True,
        ),
        _simple("autocorrelation_lag1", lambda c: _autocorrelation(c, 1), rolling="autocorr"),
        _simple("autocorrelation_lag2", lambda c: _autocorrelation(c, 2), rolling="autocorr"),
        _simple("autocorrelation_lag3", lambda c: _autocorrelation(c, 3), rolling="autocorr"),
        _simple("autocorrelation_lag5", lambda c: _autocorrelation(c, 5), rolling="autocorr"),
        _simple("autocorrelation_lag10", lambda c: _autocorrelation(c, 10), rolling="autocorr"),
        Calculator(
            "agg_autocorrelation",
            _agg_autocorrelation,
            ("acf_mean", "acf_std"),
            cost="moderate",
            uses_context=True,
        ),
        _simple("c3_lag1", lambda c: _c3(c, 1)),
        _simple("c3_lag2", lambda c: _c3(c, 2)),
        _simple("c3_lag3", lambda c: _c3(c, 3)),
        _simple("time_reversal_asymmetry_lag1", lambda c: _time_reversal_asymmetry(c, 1)),
        _simple("time_reversal_asymmetry_lag2", lambda c: _time_reversal_asymmetry(c, 2)),
        _simple("time_reversal_asymmetry_lag3", lambda c: _time_reversal_asymmetry(c, 3)),
        _simple("binned_entropy_10", _binned_entropy),
        _simple("benford_correlation", _benford_correlation),
        Calculator(
            "fft_aggregated",
            _fft_aggregated,
            ("fft_centroid", "fft_variance", "fft_skew", "fft_kurtosis", "fft_entropy"),
            uses_context=True,
        ),
        Calculator(
            "welch_psd",
            _welch_psd,
            ("psd_peak", "psd_peak_freq", "psd_total_power"),
            uses_context=True,
        ),
        Calculator(
            "energy_ratio_by_chunks",
            _energy_ratio_by_chunks,
            tuple(f"energy_chunk_{i}" for i in range(10)),
            uses_context=True,
        ),
    ]
    return calcs


def full_calculators() -> list[Calculator]:
    """Default set plus the expensive entropy/complexity kernels."""
    extra = [
        Calculator(
            "approximate_entropy", _approximate_entropy, ("approximate_entropy",),
            "expensive", uses_context=True, rolling="entropy",
        ),
        Calculator(
            "sample_entropy", _sample_entropy, ("sample_entropy",),
            "expensive", uses_context=True, rolling="entropy",
        ),
        Calculator(
            "permutation_entropy", _permutation_entropy, ("permutation_entropy",),
            "moderate", uses_context=True,
        ),
        Calculator(
            "lempel_ziv_complexity", _lempel_ziv_complexity, ("lempel_ziv_complexity",),
            "expensive", uses_context=True,
        ),
    ]
    return default_calculators() + extra


def calculator_names(calculators: Sequence[Calculator]) -> tuple[str, ...]:
    """Flat tuple of output feature names across *calculators*."""
    names: list[str] = []
    for calc in calculators:
        names.extend(calc.output_names)
    if len(set(names)) != len(names):
        raise ValueError("calculator output names collide")
    return tuple(names)
