"""Frozen pre-vectorization feature kernels — the parity/perf baseline.

This module is a verbatim snapshot of the calculator implementations as they
stood before the shared-intermediate context engine landed: the expensive
tier loops over rows in Python with O(T^2) broadcasting per row, and every
kernel recomputes moments/diffs/sorts from the raw ``(N, T)`` slab.

It exists for two consumers and must not be "improved":

* parity tests assert the context-backed kernels agree with these references
  (bit-identical for the cheap tier, <= 1e-9 for the vectorized tier);
* ``benchmarks/check_perf.py`` times the full reference set as the pre-PR
  baseline that ``BENCH_features.json`` speedups are measured against.

Reference calculators reuse calculator names, so never feed them to a
process-pool engine (the worker factory spec resolves names against the
*live* registries); the benches pin them to the serial path.
"""

from __future__ import annotations

from math import factorial as _factorial
from typing import Callable, Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view
from scipy import signal as _signal

from repro.features.calculators import Calculator

__all__ = ["reference_default_calculators", "reference_full_calculators"]


def _safe_div(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """Elementwise division that returns 0 where the denominator is ~0."""
    den = np.asarray(den, dtype=np.float64)
    out = np.zeros(np.broadcast(num, den).shape)
    ok = np.abs(den) > 1e-12
    np.divide(num, den, out=out, where=ok)
    return out


# -- descriptive statistics ---------------------------------------------------


def _moments(x: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    mu = x.mean(axis=1)
    d = x - mu[:, None]
    m2 = np.mean(d**2, axis=1)
    m3 = np.mean(d**3, axis=1)
    m4 = np.mean(d**4, axis=1)
    return mu, m2, m3, m4


def _skewness(x: np.ndarray) -> np.ndarray:
    _, m2, m3, _ = _moments(x)
    return _safe_div(m3, m2**1.5)


def _kurtosis(x: np.ndarray) -> np.ndarray:
    _, m2, _, m4 = _moments(x)
    return _safe_div(m4, m2**2) - 3.0


def _variation_coefficient(x: np.ndarray) -> np.ndarray:
    return _safe_div(x.std(axis=1), x.mean(axis=1))


def _mean_n_absolute_max(x: np.ndarray, n: int) -> np.ndarray:
    n = min(n, x.shape[1])
    part = np.partition(np.abs(x), x.shape[1] - n, axis=1)
    return part[:, -n:].mean(axis=1)


# -- change statistics --------------------------------------------------------


def _mean_abs_change(x: np.ndarray) -> np.ndarray:
    return np.mean(np.abs(np.diff(x, axis=1)), axis=1)


def _mean_change(x: np.ndarray) -> np.ndarray:
    return _safe_div(x[:, -1] - x[:, 0], float(x.shape[1] - 1))


def _mean_second_derivative_central(x: np.ndarray) -> np.ndarray:
    if x.shape[1] < 3:
        return np.zeros(x.shape[0])
    return np.mean(0.5 * (x[:, 2:] - 2.0 * x[:, 1:-1] + x[:, :-2]), axis=1)


def _absolute_sum_of_changes(x: np.ndarray) -> np.ndarray:
    return np.sum(np.abs(np.diff(x, axis=1)), axis=1)


def _cid_ce(x: np.ndarray, normalize: bool) -> np.ndarray:
    z = x
    if normalize:
        z = _safe_div(x - x.mean(axis=1, keepdims=True), x.std(axis=1, keepdims=True))
    return np.sqrt(np.sum(np.diff(z, axis=1) ** 2, axis=1))


# -- location / run structure ---------------------------------------------------


def _first_location_of_maximum(x: np.ndarray) -> np.ndarray:
    return x.argmax(axis=1) / x.shape[1]


def _last_location_of_maximum(x: np.ndarray) -> np.ndarray:
    return 1.0 - x[:, ::-1].argmax(axis=1) / x.shape[1]


def _first_location_of_minimum(x: np.ndarray) -> np.ndarray:
    return x.argmin(axis=1) / x.shape[1]


def _last_location_of_minimum(x: np.ndarray) -> np.ndarray:
    return 1.0 - x[:, ::-1].argmin(axis=1) / x.shape[1]


def _count_above_mean(x: np.ndarray) -> np.ndarray:
    return np.sum(x > x.mean(axis=1, keepdims=True), axis=1).astype(np.float64)


def _count_below_mean(x: np.ndarray) -> np.ndarray:
    return np.sum(x < x.mean(axis=1, keepdims=True), axis=1).astype(np.float64)


def _longest_run(mask: np.ndarray) -> np.ndarray:
    """Longest run of True per row of a boolean matrix, vectorised."""
    n, t = mask.shape
    counts = np.cumsum(mask, axis=1, dtype=np.int64)
    # At each False position remember the cumulative count; the running max
    # of those is what has been "spent" before the current run started.
    spent = np.where(~mask, counts, 0)
    spent = np.maximum.accumulate(spent, axis=1)
    return np.max(counts - spent, axis=1).astype(np.float64)


def _longest_strike_above_mean(x: np.ndarray) -> np.ndarray:
    return _longest_run(x > x.mean(axis=1, keepdims=True))


def _longest_strike_below_mean(x: np.ndarray) -> np.ndarray:
    return _longest_run(x < x.mean(axis=1, keepdims=True))


def _number_crossings_mean(x: np.ndarray) -> np.ndarray:
    above = x > x.mean(axis=1, keepdims=True)
    return np.sum(above[:, 1:] != above[:, :-1], axis=1).astype(np.float64)


def _number_peaks(x: np.ndarray, n: int) -> np.ndarray:
    """Peaks with support *n*: strictly larger than n neighbours each side."""
    t = x.shape[1]
    if t < 2 * n + 1:
        return np.zeros(x.shape[0])
    center = x[:, n : t - n]
    is_peak = np.ones(center.shape, dtype=bool)
    for k in range(1, n + 1):
        is_peak &= center > x[:, n - k : t - n - k]
        is_peak &= center > x[:, n + k : t - n + k]
    return is_peak.sum(axis=1).astype(np.float64)


def _index_mass_quantile(x: np.ndarray, q: float) -> np.ndarray:
    absx = np.abs(x)
    total = absx.sum(axis=1, keepdims=True)
    cs = np.cumsum(absx, axis=1)
    # For all-zero rows every index qualifies; argmax returns 0 which is fine.
    reached = cs >= q * total
    return (reached.argmax(axis=1) + 1) / x.shape[1]


# -- dispersion ratios -----------------------------------------------------------


def _ratio_beyond_r_sigma(x: np.ndarray, r: float) -> np.ndarray:
    mu = x.mean(axis=1, keepdims=True)
    sd = x.std(axis=1, keepdims=True)
    return np.mean(np.abs(x - mu) > r * sd, axis=1)


def _large_standard_deviation(x: np.ndarray, r: float = 0.25) -> np.ndarray:
    rng = x.max(axis=1) - x.min(axis=1)
    return (x.std(axis=1) > r * rng).astype(np.float64)


def _symmetry_looking(x: np.ndarray, r: float = 0.05) -> np.ndarray:
    rng = x.max(axis=1) - x.min(axis=1)
    return (np.abs(x.mean(axis=1) - np.median(x, axis=1)) < r * rng).astype(np.float64)


def _variance_larger_than_std(x: np.ndarray) -> np.ndarray:
    v = x.var(axis=1)
    return (v > np.sqrt(v)).astype(np.float64)


def _range_count_within_sigma(x: np.ndarray) -> np.ndarray:
    mu = x.mean(axis=1, keepdims=True)
    sd = x.std(axis=1, keepdims=True)
    return np.mean(np.abs(x - mu) <= sd, axis=1)


def _ratio_unique_values(x: np.ndarray) -> np.ndarray:
    s = np.sort(x, axis=1)
    distinct = 1 + np.sum(np.diff(s, axis=1) != 0, axis=1)
    return distinct / x.shape[1]


def _percentage_reoccurring(x: np.ndarray) -> np.ndarray:
    s = np.sort(x, axis=1)
    same_prev = np.diff(s, axis=1) == 0
    # A value participates in a reoccurrence if it equals a neighbour.
    occurs = np.concatenate(
        [same_prev[:, :1], same_prev[:, 1:] | same_prev[:, :-1], same_prev[:, -1:]], axis=1
    )
    return occurs.mean(axis=1)


# -- trend / autocorrelation -------------------------------------------------------


def _linear_trend(x: np.ndarray) -> np.ndarray:
    """Slope, correlation coefficient, and residual std of an OLS line fit."""
    n, t = x.shape
    time = np.arange(t, dtype=np.float64)
    tc = time - time.mean()
    denom = np.sum(tc**2)
    xc = x - x.mean(axis=1, keepdims=True)
    slope = (xc @ tc) / denom
    xstd = x.std(axis=1)
    rvalue = _safe_div(slope * np.sqrt(denom / t), xstd)
    resid = xc - slope[:, None] * tc
    return np.stack([slope, rvalue, resid.std(axis=1)], axis=1)


def _autocorrelation(x: np.ndarray, lag: int) -> np.ndarray:
    t = x.shape[1]
    if lag >= t:
        return np.zeros(x.shape[0])
    mu = x.mean(axis=1, keepdims=True)
    var = x.var(axis=1)
    cov = np.mean((x[:, :-lag] - mu) * (x[:, lag:] - mu), axis=1)
    return _safe_div(cov, var)


def _agg_autocorrelation(x: np.ndarray, max_lag: int = 40) -> np.ndarray:
    """Mean and std of the autocorrelation function over lags 1..max_lag."""
    t = x.shape[1]
    lags = range(1, min(max_lag, t - 1) + 1)
    acf = np.stack([_autocorrelation(x, lag) for lag in lags], axis=1)
    return np.stack([acf.mean(axis=1), acf.std(axis=1)], axis=1)


def _c3(x: np.ndarray, lag: int) -> np.ndarray:
    """Schreiber & Schmitz C3 nonlinearity statistic."""
    t = x.shape[1]
    if 2 * lag >= t:
        return np.zeros(x.shape[0])
    return np.mean(x[:, 2 * lag :] * x[:, lag : t - lag] * x[:, : t - 2 * lag], axis=1)


def _time_reversal_asymmetry(x: np.ndarray, lag: int) -> np.ndarray:
    t = x.shape[1]
    if 2 * lag >= t:
        return np.zeros(x.shape[0])
    a = x[:, 2 * lag :]
    b = x[:, lag : t - lag]
    c = x[:, : t - 2 * lag]
    return np.mean(a**2 * b - b * c**2, axis=1)


# -- entropy / distribution ----------------------------------------------------------


def _binned_entropy(x: np.ndarray, bins: int = 10) -> np.ndarray:
    mn = x.min(axis=1, keepdims=True)
    rng = x.max(axis=1, keepdims=True) - mn
    norm = _safe_div(x - mn, rng)
    idx = np.minimum((norm * bins).astype(np.int64), bins - 1)
    t = x.shape[1]
    ent = np.zeros(x.shape[0])
    for k in range(bins):
        p = np.mean(idx == k, axis=1)
        ent -= np.where(p > 0, p * np.log(np.where(p > 0, p, 1.0)), 0.0)
    # Constant rows have range 0 -> all mass in bin 0 -> entropy 0: correct.
    return ent


def _benford_correlation(x: np.ndarray) -> np.ndarray:
    """Correlation of the first-significant-digit histogram with Benford's law."""
    absx = np.abs(x)
    valid = absx > 1e-12
    safe = np.where(valid, absx, 1.0)
    exponent = np.floor(np.log10(safe))
    digit = np.floor(safe / 10.0**exponent).astype(np.int64)
    digit = np.clip(digit, 1, 9)
    benford = np.log10(1.0 + 1.0 / np.arange(1, 10))
    counts = np.stack([np.sum((digit == d) & valid, axis=1) for d in range(1, 10)], axis=1)
    total = counts.sum(axis=1, keepdims=True)
    probs = _safe_div(counts, total)
    pc = probs - probs.mean(axis=1, keepdims=True)
    bc = benford - benford.mean()
    num = pc @ bc
    den = np.sqrt(np.sum(pc**2, axis=1) * np.sum(bc**2))
    return _safe_div(num, den)


def _quantiles(x: np.ndarray, qs: Sequence[float]) -> np.ndarray:
    return np.quantile(x, qs, axis=1).T


def _energy_ratio_by_chunks(x: np.ndarray, n_chunks: int = 10) -> np.ndarray:
    n, t = x.shape
    edges = np.linspace(0, t, n_chunks + 1).astype(int)
    total = np.sum(x**2, axis=1)
    out = np.empty((n, n_chunks))
    for i in range(n_chunks):
        seg = x[:, edges[i] : edges[i + 1]]
        out[:, i] = _safe_div(np.sum(seg**2, axis=1), total)
    return out


# -- spectral -----------------------------------------------------------------------


def _fft_aggregated(x: np.ndarray) -> np.ndarray:
    """Centroid, variance, skew, kurtosis, entropy of the power spectrum."""
    spec = np.abs(np.fft.rfft(x - x.mean(axis=1, keepdims=True), axis=1)) ** 2
    spec = spec[:, 1:]  # DC removed with the mean anyway
    freqs = np.arange(1, spec.shape[1] + 1, dtype=np.float64)
    total = spec.sum(axis=1)
    p = _safe_div(spec, total[:, None])
    centroid = p @ freqs
    dev = freqs[None, :] - centroid[:, None]
    var = np.sum(p * dev**2, axis=1)
    skew = _safe_div(np.sum(p * dev**3, axis=1), var**1.5)
    kurt = _safe_div(np.sum(p * dev**4, axis=1), var**2)
    ent = -np.sum(np.where(p > 0, p * np.log(np.where(p > 0, p, 1.0)), 0.0), axis=1)
    return np.stack([centroid, var, skew, kurt, ent], axis=1)


def _welch_psd(x: np.ndarray) -> np.ndarray:
    """Peak PSD, peak frequency, and total power from Welch's method."""
    t = x.shape[1]
    nperseg = min(64, t)
    freqs, psd = _signal.welch(x, fs=1.0, nperseg=nperseg, axis=-1)
    peak = psd.max(axis=1)
    peak_freq = freqs[psd.argmax(axis=1)]
    power = psd.sum(axis=1)
    return np.stack([peak, peak_freq, power], axis=1)


# -- expensive kernels (full set only) --------------------------------------------


def _approximate_entropy(x: np.ndarray, m: int = 2, r_factor: float = 0.2) -> np.ndarray:
    """Pincus approximate entropy, per sample (O(T^2) per row)."""
    n, t = x.shape
    out = np.empty(n)
    for i in range(n):
        row = x[i]
        r = r_factor * row.std()
        if r < 1e-12 or t <= m + 1:
            out[i] = 0.0
            continue
        out[i] = _phi(row, m, r) - _phi(row, m + 1, r)
    return out


def _phi(row: np.ndarray, m: int, r: float) -> float:
    windows = sliding_window_view(row, m)
    # Chebyshev distances between all window pairs via broadcasting.
    dist = np.max(np.abs(windows[:, None, :] - windows[None, :, :]), axis=2)
    counts = np.mean(dist <= r, axis=1)
    return float(np.mean(np.log(counts)))


def _sample_entropy(x: np.ndarray, m: int = 2, r_factor: float = 0.2) -> np.ndarray:
    n, t = x.shape
    out = np.empty(n)
    for i in range(n):
        row = x[i]
        r = r_factor * row.std()
        if r < 1e-12 or t <= m + 1:
            out[i] = 0.0
            continue
        a = _matches(row, m + 1, r)
        b = _matches(row, m, r)
        out[i] = -np.log(a / b) if a > 0 and b > 0 else 0.0
    return out


def _matches(row: np.ndarray, m: int, r: float) -> float:
    windows = sliding_window_view(row, m)
    dist = np.max(np.abs(windows[:, None, :] - windows[None, :, :]), axis=2)
    k = dist.shape[0]
    # Self-matches excluded.
    return float((np.sum(dist <= r) - k) / 2.0)


def _permutation_entropy(x: np.ndarray, order: int = 3) -> np.ndarray:
    n, t = x.shape
    if t < order:
        return np.zeros(n)
    windows = sliding_window_view(x, order, axis=1)  # (N, T-order+1, order)
    ranks = np.argsort(windows, axis=2, kind="stable")
    weights = (order ** np.arange(order)).astype(np.int64)
    codes = ranks @ weights  # unique int per permutation
    n_patterns = _factorial(order)
    # Entropy over observed pattern frequencies.
    ent = np.zeros(n)
    for code in np.unique(codes):
        p = np.mean(codes == code, axis=1)
        ent -= np.where(p > 0, p * np.log(np.where(p > 0, p, 1.0)), 0.0)
    max_ent = np.log(float(n_patterns))
    return ent / max_ent


def _lempel_ziv_complexity(x: np.ndarray) -> np.ndarray:
    """Normalised LZ76 complexity of the series binarised at its median."""
    med = np.median(x, axis=1, keepdims=True)
    bits = (x > med).astype(np.uint8)
    n, t = bits.shape
    out = np.empty(n)
    for i in range(n):
        s = bits[i].tobytes()
        phrases, start, length = 0, 0, 1
        while start + length <= t:
            if s[start : start + length] in s[: start + length - 1]:
                length += 1
            else:
                phrases += 1
                start += length
                length = 1
        out[i] = (phrases + (1 if length > 1 else 0)) / (t / np.log2(max(t, 2)))
    return out


# -- registry ---------------------------------------------------------------------


def _simple(name: str, func, cost: str = "cheap") -> Calculator:
    return Calculator(name, func, (name,), cost)


def reference_default_calculators() -> list[Calculator]:
    """Frozen copy of the pre-PR efficient calculator set."""
    qs = (0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95)
    calcs: list[Calculator] = [
        _simple("mean", lambda x: x.mean(axis=1)),
        _simple("median", lambda x: np.median(x, axis=1)),
        _simple("std", lambda x: x.std(axis=1)),
        _simple("variance", lambda x: x.var(axis=1)),
        _simple("minimum", lambda x: x.min(axis=1)),
        _simple("maximum", lambda x: x.max(axis=1)),
        _simple("range", lambda x: x.max(axis=1) - x.min(axis=1)),
        _simple("sum_values", lambda x: x.sum(axis=1)),
        _simple("abs_energy", lambda x: np.sum(x**2, axis=1)),
        _simple("root_mean_square", lambda x: np.sqrt(np.mean(x**2, axis=1))),
        _simple("absolute_maximum", lambda x: np.abs(x).max(axis=1)),
        _simple("skewness", _skewness),
        _simple("kurtosis", _kurtosis),
        _simple("variation_coefficient", _variation_coefficient),
        _simple("iqr", lambda x: np.quantile(x, 0.75, axis=1) - np.quantile(x, 0.25, axis=1)),
        _simple(
            "mean_abs_deviation",
            lambda x: np.mean(np.abs(x - x.mean(axis=1, keepdims=True)), axis=1),
        ),
        _simple(
            "median_abs_deviation",
            lambda x: np.median(np.abs(x - np.median(x, axis=1, keepdims=True)), axis=1),
        ),
        Calculator("quantile", lambda x: _quantiles(x, qs), tuple(f"quantile_q{q:g}" for q in qs)),
        _simple("mean_abs_change", _mean_abs_change),
        _simple("mean_change", _mean_change),
        _simple("mean_second_derivative_central", _mean_second_derivative_central),
        _simple("absolute_sum_of_changes", _absolute_sum_of_changes),
        _simple("cid_ce", lambda x: _cid_ce(x, normalize=False)),
        _simple("cid_ce_normalized", lambda x: _cid_ce(x, normalize=True)),
        _simple("mean_n_absolute_max_7", lambda x: _mean_n_absolute_max(x, 7)),
        _simple("first_location_of_maximum", _first_location_of_maximum),
        _simple("last_location_of_maximum", _last_location_of_maximum),
        _simple("first_location_of_minimum", _first_location_of_minimum),
        _simple("last_location_of_minimum", _last_location_of_minimum),
        _simple("count_above_mean", _count_above_mean),
        _simple("count_below_mean", _count_below_mean),
        _simple("longest_strike_above_mean", _longest_strike_above_mean),
        _simple("longest_strike_below_mean", _longest_strike_below_mean),
        _simple("number_crossings_mean", _number_crossings_mean),
        _simple("number_peaks_1", lambda x: _number_peaks(x, 1)),
        _simple("number_peaks_5", lambda x: _number_peaks(x, 5)),
        _simple("index_mass_quantile_q25", lambda x: _index_mass_quantile(x, 0.25)),
        _simple("index_mass_quantile_q50", lambda x: _index_mass_quantile(x, 0.5)),
        _simple("index_mass_quantile_q75", lambda x: _index_mass_quantile(x, 0.75)),
        _simple("ratio_beyond_1_sigma", lambda x: _ratio_beyond_r_sigma(x, 1.0)),
        _simple("ratio_beyond_2_sigma", lambda x: _ratio_beyond_r_sigma(x, 2.0)),
        _simple("ratio_beyond_3_sigma", lambda x: _ratio_beyond_r_sigma(x, 3.0)),
        _simple("large_standard_deviation", _large_standard_deviation),
        _simple("symmetry_looking", _symmetry_looking),
        _simple("variance_larger_than_std", _variance_larger_than_std),
        _simple("range_count_within_sigma", _range_count_within_sigma),
        _simple("ratio_unique_values", _ratio_unique_values),
        _simple("percentage_reoccurring_values", _percentage_reoccurring),
        Calculator("linear_trend", _linear_trend, ("trend_slope", "trend_rvalue", "trend_residual_std")),
        _simple("autocorrelation_lag1", lambda x: _autocorrelation(x, 1)),
        _simple("autocorrelation_lag2", lambda x: _autocorrelation(x, 2)),
        _simple("autocorrelation_lag3", lambda x: _autocorrelation(x, 3)),
        _simple("autocorrelation_lag5", lambda x: _autocorrelation(x, 5)),
        _simple("autocorrelation_lag10", lambda x: _autocorrelation(x, 10)),
        Calculator(
            "agg_autocorrelation",
            _agg_autocorrelation,
            ("acf_mean", "acf_std"),
            cost="moderate",
        ),
        _simple("c3_lag1", lambda x: _c3(x, 1)),
        _simple("c3_lag2", lambda x: _c3(x, 2)),
        _simple("c3_lag3", lambda x: _c3(x, 3)),
        _simple("time_reversal_asymmetry_lag1", lambda x: _time_reversal_asymmetry(x, 1)),
        _simple("time_reversal_asymmetry_lag2", lambda x: _time_reversal_asymmetry(x, 2)),
        _simple("time_reversal_asymmetry_lag3", lambda x: _time_reversal_asymmetry(x, 3)),
        _simple("binned_entropy_10", _binned_entropy),
        _simple("benford_correlation", _benford_correlation),
        Calculator(
            "fft_aggregated",
            _fft_aggregated,
            ("fft_centroid", "fft_variance", "fft_skew", "fft_kurtosis", "fft_entropy"),
        ),
        Calculator("welch_psd", _welch_psd, ("psd_peak", "psd_peak_freq", "psd_total_power")),
        Calculator(
            "energy_ratio_by_chunks",
            _energy_ratio_by_chunks,
            tuple(f"energy_chunk_{i}" for i in range(10)),
        ),
    ]
    return calcs


def reference_full_calculators() -> list[Calculator]:
    """Frozen copy of the pre-PR full set (per-row expensive kernels)."""
    extra = [
        Calculator("approximate_entropy", _approximate_entropy, ("approximate_entropy",), "expensive"),
        Calculator("sample_entropy", _sample_entropy, ("sample_entropy",), "expensive"),
        Calculator("permutation_entropy", _permutation_entropy, ("permutation_entropy",), "moderate"),
        Calculator("lempel_ziv_complexity", _lempel_ziv_complexity, ("lempel_ziv_complexity",), "expensive"),
    ]
    return reference_default_calculators() + extra
