"""Sparse-aware alignment of per-schema feature groups.

Heterogeneous fleets extract features per schema partition: all nodes
sharing a column layout are batched together (the dense fast path), and the
per-group matrices are then aligned onto the *union* feature axis.  A GPU
node contributes per-card feature columns a CPU node simply does not have —
that absence is not a zero measurement, so the aligned table carries an
explicit boolean ``present`` mask alongside the 0-filled feature matrix.
Downstream consumers (Chi-square selection, min-max scaling, masked VAE
scoring) treat absent cells as "no evidence", never as an observed value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["FeatureTable", "align_feature_groups"]


@dataclass(frozen=True)
class FeatureTable:
    """An ``(N, F)`` feature matrix with explicit per-cell presence.

    ``features`` is 0-filled where ``present`` is False; the mask is the
    source of truth for which cells were actually extracted.
    """

    features: np.ndarray
    feature_names: tuple[str, ...]
    present: np.ndarray

    def __post_init__(self) -> None:
        feats = np.asarray(self.features, dtype=np.float64)
        pres = np.asarray(self.present, dtype=bool)
        if feats.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {feats.shape}")
        if pres.shape != feats.shape:
            raise ValueError(
                f"present mask shape {pres.shape} != features shape {feats.shape}"
            )
        if feats.shape[1] != len(self.feature_names):
            raise ValueError(
                f"features has {feats.shape[1]} columns but "
                f"{len(self.feature_names)} feature names"
            )
        object.__setattr__(self, "features", feats)
        object.__setattr__(self, "present", pres)
        object.__setattr__(self, "feature_names", tuple(self.feature_names))

    @property
    def n_samples(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.features.shape[1])

    @property
    def is_dense(self) -> bool:
        """True when every cell is present (homogeneous input)."""
        return bool(self.present.all())


def align_feature_groups(
    groups: Sequence[tuple[Sequence[int], np.ndarray, Sequence[str]]],
    n_rows: int,
) -> FeatureTable:
    """Scatter per-schema feature groups onto the union feature axis.

    Parameters
    ----------
    groups:
        ``(row_indices, features, feature_names)`` triples — one per schema
        partition.  ``row_indices`` give each group row's position in the
        output table; together the groups must cover ``0..n_rows-1`` exactly
        once.
    n_rows:
        Total number of output rows.

    The union feature axis lists columns in first-appearance order across
    groups, so a homogeneous input (one group covering all rows) yields a
    table with the group's exact column order and an all-True mask.
    """
    if not groups:
        raise ValueError("need at least one feature group")
    union: list[str] = []
    pos: dict[str, int] = {}
    for _, feats, names in groups:
        feats = np.asarray(feats)
        if feats.ndim != 2 or feats.shape[1] != len(names):
            raise ValueError(
                f"group features shape {feats.shape} does not match "
                f"{len(names)} feature names"
            )
        for name in names:
            if name not in pos:
                pos[name] = len(union)
                union.append(name)

    features = np.zeros((n_rows, len(union)))
    present = np.zeros((n_rows, len(union)), dtype=bool)
    seen = np.zeros(n_rows, dtype=bool)
    for rows, feats, names in groups:
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
            raise ValueError(f"row indices out of range for {n_rows} rows")
        if np.any(seen[rows]):
            raise ValueError("feature groups overlap: a row appears in two groups")
        seen[rows] = True
        cols = np.array([pos[n] for n in names], dtype=np.int64)
        features[np.ix_(rows, cols)] = np.asarray(feats, dtype=np.float64)
        present[np.ix_(rows, cols)] = True
    if not seen.all():
        raise ValueError(
            f"feature groups cover {int(seen.sum())} of {n_rows} rows"
        )
    return FeatureTable(features, tuple(union), present)
