"""Batched statistical feature extraction from node telemetry.

Implements the paper's feature-extraction stage (Sec. 3.1): each node run's
``Time x M metrics`` series becomes one ``1 x N features`` sample.  The
extractor groups all runs of a dataset into one ``(N, T)`` batch per metric
and applies every calculator once per metric — a few thousand vectorised
NumPy calls instead of hundreds of millions of scalar ones.

Runs of unequal length are linearly resampled onto a common grid first
(controlled by ``resample_points``); the paper's runs are 20-45 min and
edge-trimmed, so a fixed grid preserves the phase structure the features
measure.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.features.alignment import FeatureTable, align_feature_groups
from repro.features.calculators import Calculator, calculator_names, default_calculators
from repro.features.context import MetricBlockContext
from repro.telemetry.frame import NodeSeries
from repro.telemetry.sampleset import SampleSet

__all__ = [
    "FeatureExtractor",
    "compute_block",
    "compute_block_columns",
    "calculator_offsets",
    "validate_aligned",
]


def calculator_offsets(calculators: Sequence[Calculator]) -> tuple[tuple[int, int], ...]:
    """Per-calculator ``(column_offset, width)`` within one metric's F columns."""
    offsets = []
    col = 0
    for calc in calculators:
        width = len(calc.output_names)
        offsets.append((col, width))
        col += width
    return tuple(offsets)


def compute_block(calculators: Sequence[Calculator], block: np.ndarray) -> np.ndarray:
    """Apply *calculators* to an ``(N, T, K)`` metric block -> ``(N, K*F)``.

    One :class:`MetricBlockContext` is built per metric slab, so all
    calculators applied to that metric share its memoised intermediates
    (moments, diffs, sorts, FFT, pairwise window distances).  The
    metric-major inner loop is the unit of work the runtime layer's parallel
    engine distributes: each metric's columns depend only on that metric's
    ``(N, T)`` slab, so chunking along K (or along the calculator axis via
    :func:`compute_block_columns`) preserves bit-identical output.
    """
    n, _, k = block.shape
    f_per = sum(len(c.output_names) for c in calculators)
    out = np.empty((n, k * f_per))
    for m in range(k):
        ctx = MetricBlockContext(block[:, :, m])
        col = m * f_per
        for calc in calculators:
            vals = calc(ctx)
            out[:, col : col + vals.shape[1]] = vals
            col += vals.shape[1]
    return out


def compute_block_columns(
    calculators: Sequence[Calculator],
    block: np.ndarray,
    calc_indices: Sequence[int],
) -> np.ndarray:
    """Apply a calculator *subset* to an ``(N, T, K)`` block -> ``(N, K*F_sub)``.

    Work unit of the cost-aware scheduler: a chunk covers a K-axis metric
    range crossed with a calculator subset, and the parent scatters the
    partial columns back into the full metric-major layout.  The subset
    shares one context per slab, exactly like :func:`compute_block`, so
    splitting the calculator axis changes nothing numerically.
    """
    n, _, k = block.shape
    subset = [calculators[i] for i in calc_indices]
    f_sub = sum(len(c.output_names) for c in subset)
    out = np.empty((n, k * f_sub))
    for m in range(k):
        ctx = MetricBlockContext(block[:, :, m])
        col = m * f_sub
        for calc in subset:
            vals = calc(ctx)
            out[:, col : col + vals.shape[1]] = vals
            col += vals.shape[1]
    return out


def validate_aligned(n_series: int, **named: Sequence | np.ndarray | None) -> None:
    """Require every non-None metadata sequence to have *n_series* entries."""
    for name, value in named.items():
        if value is None:
            continue
        length = len(value)
        if length != n_series:
            raise ValueError(
                f"{name} has {length} entries but there are {n_series} series"
            )


class FeatureExtractor:
    """Turns node series into feature samples.

    Parameters
    ----------
    calculators:
        Feature calculators to apply per metric; defaults to the efficient
        set of :func:`~repro.features.calculators.default_calculators`.
    resample_points:
        Common series length T.  ``None`` requires all inputs to already
        share one length.
    metrics:
        Restrict extraction to this metric subset (default: all metrics of
        the first series).
    """

    def __init__(
        self,
        calculators: Sequence[Calculator] | None = None,
        *,
        resample_points: int | None = 128,
        metrics: Sequence[str] | None = None,
    ):
        self.calculators = list(calculators) if calculators is not None else default_calculators()
        if not self.calculators:
            raise ValueError("need at least one calculator")
        self.per_metric_names = calculator_names(self.calculators)
        self.resample_points = resample_points
        self.metrics = tuple(metrics) if metrics is not None else None
        # Layout cache for the online path: extract_single is called once per
        # node window, and rebuilding the K*F name tuple (thousands of string
        # formats) per call dwarfed the actual NumPy work.
        self._names_cache: dict[tuple[str, ...], tuple[str, ...]] = {}

    # -- names -----------------------------------------------------------------

    def feature_names(self, metric_names: Sequence[str]) -> tuple[str, ...]:
        """Full feature-name layout for *metric_names* (metric-major order).

        Memoised per metric-name tuple; callers on the online path hit the
        cache on every window after the first.
        """
        key = tuple(metric_names)
        names = self._names_cache.get(key)
        if names is None:
            names = tuple(f"{m}|{f}" for m in key for f in self.per_metric_names)
            self._names_cache[key] = names
        return names

    @property
    def n_features_per_metric(self) -> int:
        return len(self.per_metric_names)

    # -- extraction --------------------------------------------------------------

    def stack(self, series: Sequence[NodeSeries]) -> tuple[np.ndarray, tuple[str, ...]]:
        """Resample and stack runs into a ``(N, T, M)`` block."""
        if not series:
            raise ValueError("need at least one NodeSeries")
        metric_names = self.metrics if self.metrics is not None else series[0].metric_names
        prepared = []
        for s in series:
            if self.metrics is not None:
                s = s.select_metrics(metric_names)
            elif s.metric_names != metric_names:
                ref, cur = set(metric_names), set(s.metric_names)
                missing = sorted(ref - cur)
                extra = sorted(cur - ref)
                parts = []
                if missing:
                    parts.append(f"missing {missing[:4]}")
                if extra:
                    parts.append(f"extra {extra[:4]}")
                detail = "; ".join(parts) if parts else "same metrics in a different order"
                raise ValueError(
                    f"series (job_id={s.job_id}, component_id={s.component_id}) "
                    f"diverges from the metric names of (job_id={series[0].job_id}, "
                    f"component_id={series[0].component_id}): {detail}; pass "
                    f"metrics=... or use extract_table() for mixed-schema fleets"
                )
            if self.resample_points is not None:
                s = s.resample(self.resample_points)
            prepared.append(s.values)
        lengths = {p.shape[0] for p in prepared}
        if len(lengths) != 1:
            raise ValueError(
                f"series have unequal lengths {sorted(lengths)}; set resample_points"
            )
        return np.stack(prepared, axis=0), tuple(metric_names)

    def extract_matrix(self, series: Sequence[NodeSeries]) -> tuple[np.ndarray, tuple[str, ...]]:
        """Extract the raw ``(N, F_total)`` feature matrix and its names."""
        block, metric_names = self.stack(series)
        return compute_block(self.calculators, block), self.feature_names(metric_names)

    def extract(
        self,
        series: Sequence[NodeSeries],
        labels: np.ndarray | Sequence[int] | None = None,
        *,
        app_names: Sequence[str] | None = None,
        anomaly_names: Sequence[str] | None = None,
    ) -> SampleSet:
        """Extract a :class:`SampleSet`, carrying run provenance along."""
        series = list(series)
        validate_aligned(
            len(series), labels=labels, app_names=app_names, anomaly_names=anomaly_names
        )
        features, names = self.extract_matrix(series)
        return self.package(
            series, features, names, labels,
            app_names=app_names, anomaly_names=anomaly_names,
        )

    def package(
        self,
        series: Sequence[NodeSeries],
        features: np.ndarray,
        names: tuple[str, ...],
        labels: np.ndarray | Sequence[int] | None = None,
        *,
        app_names: Sequence[str] | None = None,
        anomaly_names: Sequence[str] | None = None,
    ) -> SampleSet:
        """Wrap an already-extracted matrix into a provenance-carrying SampleSet."""
        return SampleSet(
            features,
            names,
            None if labels is None else np.asarray(labels),
            job_ids=np.array([s.job_id for s in series], dtype=np.int64),
            component_ids=np.array([s.component_id for s in series], dtype=np.int64),
            app_names=app_names,
            anomaly_names=anomaly_names,
        )

    def extract_single(self, series: NodeSeries) -> np.ndarray:
        """Feature row ``(1, F)`` for one run — the online-inference path."""
        features, _ = self.extract_matrix([series])
        return features

    # -- schema-partitioned extraction -------------------------------------------

    def extract_table(self, series: Sequence[NodeSeries]) -> FeatureTable:
        """Schema-partitioned extraction onto the union feature axis.

        Series are grouped by :attr:`~repro.telemetry.frame.NodeSeries.schema_digest`
        (first-appearance order), each group extracted as its own dense
        ``(N_g, T, M_g)`` batch, and the per-group matrices aligned into a
        :class:`~repro.features.alignment.FeatureTable` with an explicit
        presence mask.  A homogeneous fleet forms exactly one group, so its
        features and names are bit-identical to :meth:`extract_matrix`.
        """
        series = list(series)
        if not series:
            raise ValueError("need at least one NodeSeries")
        partitions: dict[str, list[int]] = {}
        for i, s in enumerate(series):
            partitions.setdefault(s.schema_digest, []).append(i)
        groups = []
        for rows in partitions.values():
            feats, names = self.extract_matrix([series[i] for i in rows])
            groups.append((rows, feats, names))
        return align_feature_groups(groups, len(series))

    def extract_mixed(
        self,
        series: Sequence[NodeSeries],
        labels: np.ndarray | Sequence[int] | None = None,
        *,
        app_names: Sequence[str] | None = None,
        anomaly_names: Sequence[str] | None = None,
    ) -> SampleSet:
        """Like :meth:`extract` but tolerates a mixed-schema fleet.

        The returned :class:`SampleSet` carries the presence mask; for a
        homogeneous fleet the mask is dense and the features match
        :meth:`extract` exactly.
        """
        series = list(series)
        validate_aligned(
            len(series), labels=labels, app_names=app_names, anomaly_names=anomaly_names
        )
        table = self.extract_table(series)
        return SampleSet(
            table.features,
            table.feature_names,
            None if labels is None else np.asarray(labels),
            job_ids=np.array([s.job_id for s in series], dtype=np.int64),
            component_ids=np.array([s.component_id for s in series], dtype=np.int64),
            app_names=app_names,
            anomaly_names=anomaly_names,
            present=None if table.is_dense else table.present,
        )
