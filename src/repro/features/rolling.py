"""O(1) rolling feature kernels over per-node ring buffers.

The batch streaming path recomputes every calculator from scratch on each
evaluation window, even though consecutive windows overlap by
``window_seconds - evaluate_every`` samples.  This module maintains
sliding accumulators that are *updated* as chunks admit and age out, so
the streaming-incrementalizable feature families cost O(chunk) per ingest
and O(1) per evaluation instead of O(window):

* **moments** — mean/std/variance/skew/kurtosis plus the plain power sums
  (sum, energy, RMS) via central-moment accumulators merged with Chan's
  parallel formulas on admit and *inverse*-merged on evict;
* **extrema** — min/max/range/absolute-max via monotonic index deques
  (admission is chunk-vectorised: the only candidates a chunk contributes
  are its strict suffix extrema);
* **diffs** — first-difference statistics via rolling |Δ| and Δ² sums plus
  O(1) endpoint identities (``mean_change``, the telescoped central
  second derivative);
* **autocorrelation** — shifted lag-product sums ``Σ (x_i-K)(x_{i+lag}-K)``
  with O(lag) boundary corrections at evaluation (K is re-anchored to the
  window mean at refresh so the expansion never cancels catastrophically);
* **threshold crossings** — :class:`RollingCrossings`, a level-crossing /
  count-above kernel for fixed alert levels (the default calculator set's
  *mean-relative* crossing counts cannot roll exactly, because the
  reference level moves with every window — they fall back);
* **entropy (amortized)** — the approximate/sample-entropy family recycles
  its pairwise Chebyshev distance-tensor slabs across overlapping windows
  (:class:`EntropySlabCache`): the kept region is a diagonal-shifted
  submatrix copy and only border strips are recomputed.  Distances are
  exact max/abs values, so the recycled profile is bit-identical.

Floating drift from repeated admit/evict is bounded by a periodic exact
refresh of every accumulator from the ring view (``refresh_every``
evaluations); between refreshes the accumulated error stays orders of
magnitude under the 1e-9 parity contract.

NaN semantics mirror the batch path *exactly*: accumulators are
NaN-masked (a NaN sample can never poison a sum forever), and any metric
whose current window still contains a non-finite sample is "dirty" — all
of its features are computed by the context-backed batch kernels on the
ring view, which reproduce the batch quirks bit-for-bit (e.g. kurtosis of
a NaN window is -3.0 through ``_safe_div``).  Features the rolling engine
does not support likewise fall back per calculator, driven by the
``Calculator.rolling`` capability flag.
"""

from __future__ import annotations

import numpy as np

from repro.features.calculators import Calculator, _safe_div
from repro.features.context import EntropyProfile, MetricBlockContext

__all__ = [
    "ROLLING_LAGS",
    "RollingCrossings",
    "RollingNodeEngine",
    "RollingPlan",
    "EntropySlabCache",
]

#: Autocorrelation lags carried by the rolling engine — the default
#: calculator set's ``autocorrelation_lag*`` family.
ROLLING_LAGS = (1, 2, 3, 5, 10)

_LAG_BY_NAME = {f"autocorrelation_lag{lag}": lag for lag in ROLLING_LAGS}

#: Default accumulator re-anchoring cadence (evaluations between exact
#: refreshes from the ring view).
DEFAULT_REFRESH_EVERY = 32


# -- accumulators --------------------------------------------------------------


def _part_stats(vals: np.ndarray):
    """Exact NaN-masked (n, mean, M2, M3, M4, Σx, Σx², bad) of a chunk.

    ``vals`` is ``(c, M)``; every output is ``(M,)``.  Non-finite samples
    contribute nothing and are counted in ``bad``.
    """
    fin = np.isfinite(vals)
    v = np.where(fin, vals, 0.0)
    n = fin.sum(axis=0).astype(np.float64)
    sx = v.sum(axis=0)
    sx2 = (v * v).sum(axis=0)
    mean = np.divide(sx, n, out=np.zeros_like(sx), where=n > 0)
    d = np.where(fin, vals - mean, 0.0)
    d2 = d * d
    return (
        n, mean, d2.sum(axis=0), (d2 * d).sum(axis=0), (d2 * d2).sum(axis=0),
        sx, sx2, (~fin).sum(axis=0).astype(np.int64),
    )


class _Moments:
    """Central-moment accumulators with Chan merge / inverse-merge."""

    __slots__ = ("n", "mean", "m2", "m3", "m4", "sum_x", "sum_x2", "bad")

    def __init__(self, n_metrics: int):
        z = lambda: np.zeros(n_metrics)  # noqa: E731 - tiny local factory
        self.n, self.mean, self.m2, self.m3, self.m4 = z(), z(), z(), z(), z()
        self.sum_x, self.sum_x2 = z(), z()
        self.bad = np.zeros(n_metrics, dtype=np.int64)

    def admit(self, vals: np.ndarray) -> None:
        nb, mb, m2b, m3b, m4b, sx, sx2, bad = _part_stats(vals)
        na, ma, m2a, m3a, m4a = self.n, self.mean, self.m2, self.m3, self.m4
        n = na + nb
        inv = np.divide(1.0, n, out=np.zeros_like(n), where=n > 0)
        d = mb - ma
        nanb = na * nb
        mean = ma + d * nb * inv
        m2 = m2a + m2b + d**2 * nanb * inv
        m3 = (m3a + m3b + d**3 * nanb * (na - nb) * inv**2
              + 3.0 * d * (na * m2b - nb * m2a) * inv)
        m4 = (m4a + m4b + d**4 * nanb * (na * na - nanb + nb * nb) * inv**3
              + 6.0 * d**2 * (na * na * m2b + nb * nb * m2a) * inv**2
              + 4.0 * d * (na * m3b - nb * m3a) * inv)
        upd = nb > 0
        self.n = np.where(upd, n, na)
        self.mean = np.where(upd, mean, ma)
        self.m2 = np.where(upd, m2, m2a)
        self.m3 = np.where(upd, m3, m3a)
        self.m4 = np.where(upd, m4, m4a)
        self.sum_x += sx
        self.sum_x2 += sx2
        self.bad += bad

    def evict(self, vals: np.ndarray) -> None:
        na, ma, m2a, m3a, m4a, sx, sx2, bad = _part_stats(vals)
        nc, mc = self.n, self.mean
        nb = nc - na
        okb = nb > 0
        inv_b = np.divide(1.0, nb, out=np.zeros_like(nb), where=okb)
        inv_c = np.divide(1.0, nc, out=np.zeros_like(nc), where=nc > 0)
        mb = (nc * mc - na * ma) * inv_b
        d = mb - ma
        nanb = na * nb
        m2b = self.m2 - m2a - d**2 * nanb * inv_c
        m3b = (self.m3 - m3a - d**3 * nanb * (na - nb) * inv_c**2
               - 3.0 * d * (na * m2b - nb * m2a) * inv_c)
        m4b = (self.m4 - m4a - d**4 * nanb * (na * na - nanb + nb * nb) * inv_c**3
               - 6.0 * d**2 * (na * na * m2b + nb * nb * m2a) * inv_c**2
               - 4.0 * d * (na * m3b - nb * m3a) * inv_c)
        upd = na > 0
        # Even-power moments cannot go negative; clamp the cancellation dust
        # so downstream sqrt()/power calls never see -1e-18.
        self.n = np.where(upd, np.where(okb, nb, 0.0), self.n)
        self.mean = np.where(upd, np.where(okb, mb, 0.0), self.mean)
        self.m2 = np.where(upd, np.where(okb, np.maximum(m2b, 0.0), 0.0), self.m2)
        self.m3 = np.where(upd, np.where(okb, m3b, 0.0), self.m3)
        self.m4 = np.where(upd, np.where(okb, np.maximum(m4b, 0.0), 0.0), self.m4)
        self.sum_x -= sx
        self.sum_x2 -= sx2
        self.bad -= bad

    def refresh(self, window_vals: np.ndarray) -> None:
        (self.n, self.mean, self.m2, self.m3, self.m4,
         self.sum_x, self.sum_x2, self.bad) = _part_stats(window_vals)


class _Diffs:
    """Rolling Σ|Δ| and ΣΔ² over in-window first-difference pairs."""

    __slots__ = ("sum_abs", "sum_sq")

    def __init__(self, n_metrics: int):
        self.sum_abs = np.zeros(n_metrics)
        self.sum_sq = np.zeros(n_metrics)

    @staticmethod
    def _contrib(seq: np.ndarray):
        if seq.shape[0] < 2:
            z = np.zeros(seq.shape[1])
            return z, z.copy()
        left, right = seq[:-1], seq[1:]
        fin = np.isfinite(left) & np.isfinite(right)
        d = np.where(fin, right - left, 0.0)
        return np.abs(d).sum(axis=0), (d * d).sum(axis=0)

    def admit(self, vals: np.ndarray, prev_row: np.ndarray) -> None:
        a, s = self._contrib(np.concatenate((prev_row, vals), axis=0))
        self.sum_abs += a
        self.sum_sq += s

    def evict(self, vals: np.ndarray, next_row: np.ndarray) -> None:
        a, s = self._contrib(np.concatenate((vals, next_row), axis=0))
        self.sum_abs -= a
        self.sum_sq -= s

    def refresh(self, window_vals: np.ndarray) -> None:
        self.sum_abs, self.sum_sq = self._contrib(window_vals)


class _Extrema:
    """Monotonic min/max deques per metric, admitted chunk-at-a-time.

    A chunk's only surviving max-deque candidates are its strict suffix
    maxima (an element followed by anything >= itself can never become the
    window max) — computed vectorised, then spliced per metric.  Entries
    carry global sample indices so front eviction is an index compare.
    """

    __slots__ = ("maxq", "minq")

    def __init__(self, n_metrics: int):
        from collections import deque

        self.maxq = [deque() for _ in range(n_metrics)]
        self.minq = [deque() for _ in range(n_metrics)]

    def admit(self, vals: np.ndarray, base: int) -> None:
        c = vals.shape[0]
        with np.errstate(invalid="ignore"):
            suf_max = np.fmax.accumulate(vals[::-1], axis=0)[::-1]
            suf_min = np.fmin.accumulate(vals[::-1], axis=0)[::-1]
        fin_last = np.isfinite(vals[-1])
        for m, (mq, nq) in enumerate(zip(self.maxq, self.minq)):
            v = vals[:, m]
            cand = list(np.flatnonzero(v[:-1] > suf_max[1:, m])) if c > 1 else []
            if fin_last[m]:
                cand.append(c - 1)
            if cand:
                top = suf_max[0, m]
                while mq and mq[-1][1] <= top:
                    mq.pop()
                mq.extend((base + i, v[i]) for i in cand)
            cand = list(np.flatnonzero(v[:-1] < suf_min[1:, m])) if c > 1 else []
            if fin_last[m]:
                cand.append(c - 1)
            if cand:
                bot = suf_min[0, m]
                while nq and nq[-1][1] >= bot:
                    nq.pop()
                nq.extend((base + i, v[i]) for i in cand)

    def evict(self, start: int) -> None:
        for mq, nq in zip(self.maxq, self.minq):
            while mq and mq[0][0] < start:
                mq.popleft()
            while nq and nq[0][0] < start:
                nq.popleft()

    def maxima(self) -> np.ndarray:
        return np.array([q[0][1] if q else np.nan for q in self.maxq])

    def minima(self) -> np.ndarray:
        return np.array([q[0][1] if q else np.nan for q in self.minq])


class _Autocorr:
    """Shifted lag-product sums ``S[lag] = Σ (x_i - K)(x_{i+lag} - K)``.

    K is a fixed per-metric anchor (first chunk mean, re-anchored at every
    refresh), so the expansion of the windowed covariance around the true
    window mean stays well-conditioned.  Pairs with a non-finite endpoint
    contribute exactly zero, symmetrically on admit and evict.
    """

    __slots__ = ("lags", "max_lag", "k", "s", "_anchored")

    def __init__(self, n_metrics: int, lags: tuple[int, ...] = ROLLING_LAGS):
        self.lags = tuple(lags)
        self.max_lag = max(self.lags) if self.lags else 0
        self.k = np.zeros(n_metrics)
        self.s = {lag: np.zeros(n_metrics) for lag in self.lags}
        self._anchored = False

    def _pairsum(self, seq: np.ndarray, lag: int, lo: int, hi: int) -> np.ndarray:
        """Σ over pairs (j-lag, j) for right endpoints j in [lo, hi)."""
        lo = max(lo, lag)
        if hi <= lo:
            return 0.0
        x = seq - self.k
        left, right = x[lo - lag : hi - lag], x[lo:hi]
        fin = np.isfinite(left) & np.isfinite(right)
        return np.where(fin, left * right, 0.0).sum(axis=0)

    def admit(self, vals: np.ndarray, tail: np.ndarray) -> None:
        if not self._anchored:
            # Anchor the shift to the first chunk's mean so products stay
            # O(variance) instead of O(mean²) from the very first window.
            self.k = _part_stats(vals)[1]
            self._anchored = True
        p = tail.shape[0]
        seq = np.concatenate((tail, vals), axis=0)
        for lag in self.lags:
            self.s[lag] += self._pairsum(seq, lag, p, seq.shape[0])

    def evict(self, vals: np.ndarray, head: np.ndarray) -> None:
        e = vals.shape[0]
        seq = np.concatenate((vals, head), axis=0)
        for lag in self.lags:
            # Pairs whose LEFT endpoint ages out: right endpoints in
            # [lag, e + lag), clipped to what exists.
            self.s[lag] -= self._pairsum(seq, lag, lag, min(e + lag, seq.shape[0]))

    def refresh(self, window_vals: np.ndarray, mean: np.ndarray) -> None:
        self.k = np.array(mean, dtype=np.float64)
        self._anchored = True
        for lag in self.lags:
            self.s[lag] = self._pairsum(window_vals, lag, lag, window_vals.shape[0])


class RollingCrossings:
    """O(1) level-crossing / count-above kernel for a fixed threshold.

    The default calculator set's crossing counts are *mean-relative* — the
    reference level moves with every window, which no sliding accumulator
    can track exactly — so those calculators fall back to the batch
    kernels.  Fixed operational alert levels (quota lines, saturation
    thresholds) *do* roll: this kernel maintains, per metric, the number
    of samples strictly above ``level`` and the number of sign changes of
    ``x - level`` between consecutive in-window samples.
    """

    __slots__ = ("level", "above", "crossings")

    def __init__(self, n_metrics: int, level: float | np.ndarray):
        self.level = np.broadcast_to(
            np.asarray(level, dtype=np.float64), (n_metrics,)
        ).copy()
        self.above = np.zeros(n_metrics)
        self.crossings = np.zeros(n_metrics)

    def _pair_crossings(self, seq: np.ndarray):
        if seq.shape[0] < 2:
            return np.zeros(seq.shape[1])
        gt = seq > self.level
        fin = np.isfinite(seq)
        ok = fin[:-1] & fin[1:]
        return (ok & (gt[:-1] != gt[1:])).sum(axis=0).astype(np.float64)

    def admit(self, vals: np.ndarray, prev_row: np.ndarray) -> None:
        fin = np.isfinite(vals)
        self.above += (fin & (vals > self.level)).sum(axis=0)
        self.crossings += self._pair_crossings(np.concatenate((prev_row, vals), axis=0))

    def evict(self, vals: np.ndarray, next_row: np.ndarray) -> None:
        fin = np.isfinite(vals)
        self.above -= (fin & (vals > self.level)).sum(axis=0)
        self.crossings -= self._pair_crossings(np.concatenate((vals, next_row), axis=0))


# -- amortized entropy slabs ---------------------------------------------------


class EntropySlabCache:
    """Recycled Chebyshev distance tensors for the entropy family.

    ``entropy_profile`` needs the pairwise window-distance tensors
    ``E_1 .. E_{m+1}`` of the current window.  When the window slides by
    ``s`` samples, the distances between kept samples are unchanged —
    ``E_L'[i, j] = E_L[i+s, j+s]`` — so each tensor is rebuilt as a
    diagonal-shifted submatrix copy plus freshly computed border strips
    (new-sample rows/cols for ``E_1``, the incremental-max recurrence
    ``E_L[i,j] = max(E_{L-1}[i,j], E_1[i+L-1, j+L-1])`` for the rest).
    Max/abs distances are exact, so a recycled profile is bit-identical
    to one built from scratch; only the tolerance comparison (``r`` moves
    with the window std) is redone per evaluation.
    """

    def __init__(self) -> None:
        self._cache: dict = {}
        self.reuses = 0
        self.rebuilds = 0

    @staticmethod
    def _build(v: np.ndarray, m: int) -> list[np.ndarray]:
        e1 = np.abs(v[:, :, None] - v[:, None, :])
        tensors = [e1]
        e = e1
        for width in range(2, m + 2):
            e = np.maximum(e[:, :-1, :-1], e1[:, width - 1 :, width - 1 :])
            tensors.append(e)
        return tensors

    @staticmethod
    def _slide(old: list[np.ndarray], v: np.ndarray, s: int, keep: int) -> list[np.ndarray]:
        w = v.shape[1]
        e1 = np.empty((v.shape[0], w, w))
        e1[:, :keep, :keep] = old[0][:, s : s + keep, s : s + keep]
        fresh = v[:, keep:]
        e1[:, keep:, :] = np.abs(fresh[:, :, None] - v[:, None, :])
        e1[:, :keep, keep:] = e1[:, keep:, :keep].transpose(0, 2, 1)
        tensors = [e1]
        prev = e1
        for width in range(2, len(old) + 1):
            side = w - width + 1
            a = max(keep - width + 1, 0)
            e = np.empty((v.shape[0], side, side))
            if a > 0:
                e[:, :a, :a] = old[width - 1][:, s : s + a, s : s + a]
            e[:, a:, :] = np.maximum(
                prev[:, a:side, :side], e1[:, a + width - 1 :, width - 1 :]
            )
            if a > 0:
                e[:, :a, a:] = np.maximum(
                    prev[:, :a, a:side], e1[:, width - 1 : a + width - 1, a + width - 1 :]
                )
            tensors.append(e)
            prev = e
        return tensors

    def profile(
        self,
        ctx: MetricBlockContext,
        rows_key: tuple[int, ...],
        g0: int,
        g1: int,
        m: int = 2,
        r_factor: float = 0.2,
    ) -> EntropyProfile:
        """Build (or recycle) the profile for *ctx* and memoise it there.

        ``rows_key`` identifies the metric rows of *ctx* (in order);
        ``[g0, g1)`` is the window's global sample index range.  The
        resulting :class:`EntropyProfile` is seeded into the context's
        pairwise memo, so the unmodified entropy calculators draw it
        instead of rebuilding the tensors.
        """
        key = (m, float(r_factor), rows_key)
        cached = self._cache.get(key)
        tensors = None
        if cached is not None:
            cg0, cg1, old = cached
            s, keep = g0 - cg0, cg1 - g0
            if 0 <= s and m + 1 < keep <= ctx.t and cg1 <= g1:
                tensors = self._slide(old, ctx.values, s, keep)
                self.reuses += 1
        if tensors is None:
            tensors = self._build(ctx.values, m)
            self.rebuilds += 1
        self._cache[key] = (g0, g1, tensors)

        n, t = ctx.shape
        r = r_factor * ctx.std
        valid = ~(r < 1e-12) if t > m + 1 else np.zeros(n, dtype=bool)
        phi_m, phi_m1 = np.zeros(n), np.zeros(n)
        a, b = np.zeros(n), np.zeros(n)
        idx = np.flatnonzero(valid)
        if idx.size:
            rr = r[idx, None, None]
            with np.errstate(divide="ignore", invalid="ignore"):
                le = tensors[m - 1][idx] <= rr
                phi_m[idx] = np.mean(np.log(np.mean(le, axis=2)), axis=1)
                b[idx] = (le.sum(axis=(1, 2)) - le.shape[1]) / 2.0
                le = tensors[m][idx] <= rr
                phi_m1[idx] = np.mean(np.log(np.mean(le, axis=2)), axis=1)
                a[idx] = (le.sum(axis=(1, 2)) - le.shape[1]) / 2.0
        profile = EntropyProfile(phi_m, phi_m1, a, b, valid)
        ctx._pairwise[(m, r_factor)] = profile
        return profile


# -- selection-aware evaluation plan -------------------------------------------


class _Cell:
    """One selected feature resolved against a node's metric layout."""

    __slots__ = ("sel_idx", "metric_idx", "calc", "col", "feature", "rolling")

    def __init__(self, sel_idx, metric_idx, calc, col, feature, rolling):
        self.sel_idx = sel_idx
        self.metric_idx = metric_idx
        self.calc = calc
        self.col = col
        self.feature = feature
        #: True when the rolling engine computes this cell from accumulators
        self.rolling = rolling


class RollingPlan:
    """Selected-feature layout resolved once per (pipeline, metric schema).

    Maps every fitted ``metric|feature`` name onto the node's metric index
    and owning calculator, splits the cells into rolling / batch-fallback /
    amortized-entropy groups, and precomputes which metrics and calculators
    the fallback context must cover.  Nodes sharing a metric schema share
    one plan.
    """

    def __init__(self, pipeline, metric_names: tuple[str, ...]):
        extractor = getattr(pipeline, "extractor", None)
        selected = getattr(pipeline, "selected_names_", None)
        if extractor is None or selected is None:
            raise ValueError(
                "rolling streaming mode needs a fitted DataPipeline "
                "(extractor + selected feature names); use streaming_mode='batch' "
                "for duck-typed pipelines"
            )
        self.metric_names = tuple(metric_names)
        self.selected = tuple(selected)
        metric_pos = {m: i for i, m in enumerate(self.metric_names)}
        allowed = set(extractor.metrics) if extractor.metrics is not None else None

        feature_map: dict[str, tuple[Calculator, int]] = {}
        for calc in extractor.calculators:
            for col, out in enumerate(calc.output_names):
                feature_map[out] = (calc, col)

        self.present = np.zeros(len(self.selected), dtype=bool)
        self.cells: list[_Cell] = []
        for j, name in enumerate(self.selected):
            metric, _, feature = name.rpartition("|")
            idx = metric_pos.get(metric)
            if idx is None or (allowed is not None and metric not in allowed):
                continue  # absent cell: stays 0 with a False mask, like batch
            entry = feature_map.get(feature)
            if entry is None:
                continue
            calc, col = entry
            rolling = calc.rolling in ("moments", "extrema", "diffs",
                                       "autocorr", "indicator")
            self.present[j] = True
            self.cells.append(_Cell(j, idx, calc, col, feature, rolling))

        self.rolling_cells = [c for c in self.cells if c.rolling]
        entropy = [c for c in self.cells if c.calc.rolling == "entropy"]
        self.entropy_cells = entropy
        self.fallback_cells = [c for c in self.cells if not c.rolling and c not in entropy]
        self.static_metrics = sorted({c.metric_idx for c in self.fallback_cells})
        self.static_calcs = list({id(c.calc): c.calc for c in self.fallback_cells}.values())
        self.entropy_metrics = sorted({c.metric_idx for c in entropy})
        self.entropy_calcs = list({id(c.calc): c.calc for c in entropy}.values())
        #: rolling cells grouped per metric — redirected to the fallback
        #: context whenever that metric's window is dirty
        self.rolling_by_metric: dict[int, list[_Cell]] = {}
        for c in self.rolling_cells:
            self.rolling_by_metric.setdefault(c.metric_idx, []).append(c)

    @property
    def n_selected(self) -> int:
        return len(self.selected)


# -- the per-node engine -------------------------------------------------------


class RollingNodeEngine:
    """Rolling accumulators + selection-aware evaluation for one node."""

    def __init__(
        self,
        plan: RollingPlan,
        ring,
        *,
        lags: tuple[int, ...] = ROLLING_LAGS,
        refresh_every: int = DEFAULT_REFRESH_EVERY,
    ):
        m = len(plan.metric_names)
        self.plan = plan
        self.ring = ring
        self.refresh_every = int(refresh_every)
        self.moments = _Moments(m)
        self.diffs = _Diffs(m)
        self.extrema = _Extrema(m)
        self.autocorr = _Autocorr(m, lags)
        self.slabs = EntropySlabCache() if plan.entropy_cells else None
        self.updates = 0
        self.evictions = 0
        self.fallback_calc_runs = 0
        self.evaluations = 0
        self._empty = np.empty((0, m))

    # -- ingest ----------------------------------------------------------------

    def admit(self, vals: np.ndarray, tail: np.ndarray) -> None:
        """Fold a new chunk in; ``tail`` is the ring's pre-append tail rows."""
        base = self.ring.end_index - vals.shape[0]
        self.moments.admit(vals)
        self.diffs.admit(vals, tail[-1:] if tail.shape[0] else self._empty)
        self.autocorr.admit(vals, tail)
        self.extrema.admit(vals, base)
        self.updates += 1

    def evict(self, vals: np.ndarray, head: np.ndarray) -> None:
        """Remove aged-out rows; ``head`` is the post-evict leading rows."""
        if vals.shape[0] == 0:
            return
        self.moments.evict(vals)
        self.diffs.evict(vals, head[:1] if head.shape[0] else self._empty)
        self.autocorr.evict(vals, head)
        self.extrema.evict(self.ring.start_index)
        self.evictions += vals.shape[0]

    def refresh(self) -> None:
        """Exact accumulator rebuild from the ring view (drift bound)."""
        window = self.ring.values_view()
        self.moments.refresh(window)
        self.diffs.refresh(window)
        self.autocorr.refresh(window, self.moments.mean)

    # -- evaluation ------------------------------------------------------------

    def dirty(self) -> np.ndarray:
        """Metrics whose current window still holds a non-finite sample."""
        return self.moments.bad > 0

    def _rolling_values(self, window_vals: np.ndarray) -> dict[str, np.ndarray]:
        """Every rolling feature as an ``(M,)`` vector, from accumulators.

        Valid only for clean metrics; dirty rows are redirected to the
        batch kernels by :meth:`evaluate` before these values are read.
        """
        mom, w = self.moments, window_vals.shape[0]
        fw = float(w)
        mean = mom.mean
        m2, m3, m4 = mom.m2 / fw, mom.m3 / fw, mom.m4 / fw
        std = np.sqrt(m2)
        mn, mx = self.extrema.minima(), self.extrema.maxima()
        v0, v1 = (window_vals[0], window_vals[1]) if w > 1 else (window_vals[0],) * 2
        vl, vl2 = (window_vals[-1], window_vals[-2]) if w > 1 else (window_vals[-1],) * 2
        out = {
            "mean": mean.copy(),
            "std": std,
            "variance": m2,
            "skewness": _safe_div(m3, m2**1.5),
            "kurtosis": _safe_div(m4, m2**2) - 3.0,
            "variation_coefficient": _safe_div(std, mean),
            "sum_values": mom.sum_x.copy(),
            "abs_energy": mom.sum_x2.copy(),
            "root_mean_square": np.sqrt(mom.sum_x2 / fw),
            "minimum": mn,
            "maximum": mx,
            "range": mx - mn,
            "absolute_maximum": np.maximum(np.abs(mn), np.abs(mx)),
            "mean_abs_change": self.diffs.sum_abs / max(w - 1, 1),
            "absolute_sum_of_changes": self.diffs.sum_abs.copy(),
            "mean_change": _safe_div(vl - v0, float(w - 1)),
            "mean_second_derivative_central": (
                np.zeros_like(mean) if w < 3
                else 0.5 * ((vl - vl2) - (v1 - v0)) / (w - 2)
            ),
            "cid_ce": np.sqrt(self.diffs.sum_sq),
            "cid_ce_normalized": _safe_div(np.sqrt(self.diffs.sum_sq), std),
            "variance_larger_than_std": (m2 > np.sqrt(m2)).astype(np.float64),
            "large_standard_deviation": (std > 0.25 * (mx - mn)).astype(np.float64),
        }
        ac = self.autocorr
        var = m2
        ok = np.abs(var) > 1e-12
        total = mom.sum_x - ac.k * fw
        for name, lag in _LAG_BY_NAME.items():
            if lag >= w:
                out[name] = np.zeros_like(mean)
                continue
            shift = mean - ac.k
            first = (window_vals[:lag] - ac.k).sum(axis=0)
            last = (window_vals[w - lag :] - ac.k).sum(axis=0)
            num = (ac.s[lag] - shift * (2.0 * total - last - first)
                   + (w - lag) * shift * shift)
            cov = num / (w - lag)
            acf = np.zeros_like(mean)
            np.divide(cov, var, out=acf, where=ok)
            out[name] = acf
        return out

    def evaluate(self) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the raw selected feature row ``(1, F)`` + presence mask.

        Rolling cells on clean metrics come from the accumulators; dirty
        metrics and batch-only calculators run through one shared
        :class:`MetricBlockContext` over the ring view (rows = metrics),
        which is bit-identical to the offline extraction path.  Entropy
        cells run on their own context seeded from the slab cache.
        """
        plan = self.plan
        self.evaluations += 1
        if self.refresh_every and self.evaluations % self.refresh_every == 0:
            self.refresh()
        window = self.ring.values_view()
        dirty = self.dirty()
        raw = np.zeros(plan.n_selected)

        ctx_metrics = list(plan.static_metrics)
        ctx_calcs = list(plan.static_calcs)
        redirected: list[_Cell] = []
        for midx, cells in plan.rolling_by_metric.items():
            if dirty[midx]:
                redirected.extend(cells)
                if midx not in ctx_metrics:
                    ctx_metrics.append(midx)
                for c in cells:
                    if all(c.calc is not k for k in ctx_calcs):
                        ctx_calcs.append(c.calc)
        ctx_metrics.sort()

        if plan.rolling_cells:
            rolled = self._rolling_values(window)
            for c in plan.rolling_cells:
                if not dirty[c.metric_idx]:
                    raw[c.sel_idx] = rolled[c.feature][c.metric_idx]

        if ctx_metrics and (plan.fallback_cells or redirected):
            row_of = {midx: r for r, midx in enumerate(ctx_metrics)}
            ctx = MetricBlockContext(window[:, ctx_metrics].T)
            outputs = {id(calc): calc(ctx) for calc in ctx_calcs}
            self.fallback_calc_runs += len(ctx_calcs)
            for c in plan.fallback_cells + redirected:
                raw[c.sel_idx] = outputs[id(c.calc)][row_of[c.metric_idx], c.col]

        if plan.entropy_cells:
            row_of = {midx: r for r, midx in enumerate(plan.entropy_metrics)}
            ctx_e = MetricBlockContext(window[:, plan.entropy_metrics].T)
            self.slabs.profile(
                ctx_e, tuple(plan.entropy_metrics),
                self.ring.start_index, self.ring.end_index,
            )
            outputs = {id(calc): calc(ctx_e) for calc in plan.entropy_calcs}
            self.fallback_calc_runs += len(plan.entropy_calcs)
            for c in plan.entropy_cells:
                raw[c.sel_idx] = outputs[id(c.calc)][row_of[c.metric_idx], c.col]

        # The batch Calculator wrapper pins non-finite outputs to 0 — the
        # rolling cells must honour the same contract.
        np.nan_to_num(raw, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
        return raw[None, :], plan.present
