"""Per-node telemetry ring buffer for the streaming hot path.

The legacy ``StreamingDetector`` buffered each node's telemetry as a
*list of chunk arrays* and rebuilt the evaluation window on every due
evaluation with ``np.concatenate`` + ``np.vstack`` + a boolean age mask —
O(buffered) allocation and copy per window.  :class:`NodeRingBuffer`
replaces that with one preallocated ``(capacity, M)`` float64 block and a
matching ``(capacity,)`` timestamp vector, written with wraparound:

* **append** is a vectorised scatter of the chunk rows (the buffer grows
  geometrically and re-linearises only when a window outgrows capacity);
* **evict** is a pointer advance — aged-out rows are *returned* (the
  rolling kernels need their values to inverse-update accumulators)
  before their slots are recycled;
* **window materialisation** is a zero-copy slice while the live region
  is contiguous and a single two-segment stitch after wraparound — never
  a per-chunk concatenation.

Rows are addressed by a monotonically increasing *global sample index*
(``start_index`` .. ``end_index``): the rolling extrema deques and the
entropy slab cache key their state on global indices, which survive both
wraparound and growth.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NodeRingBuffer"]


class NodeRingBuffer:
    """Preallocated ``(capacity, M)`` float64 ring with wraparound views."""

    __slots__ = (
        "capacity", "n_metrics", "_ts", "_vals", "_head", "size",
        "total_admitted", "total_evicted", "grows", "unwrap_copies",
    )

    def __init__(self, n_metrics: int, capacity: int = 64):
        if n_metrics < 1:
            raise ValueError(f"n_metrics must be >= 1, got {n_metrics}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.n_metrics = int(n_metrics)
        self._ts = np.empty(self.capacity, dtype=np.float64)
        self._vals = np.empty((self.capacity, self.n_metrics), dtype=np.float64)
        self._head = 0  # physical slot of the oldest live row
        self.size = 0
        #: global index bookkeeping: the live rows are exactly
        #: [total_evicted, total_admitted) in admission order.
        self.total_admitted = 0
        self.total_evicted = 0
        self.grows = 0
        self.unwrap_copies = 0

    # -- introspection -------------------------------------------------------

    @property
    def start_index(self) -> int:
        """Global index of the oldest live row."""
        return self.total_evicted

    @property
    def end_index(self) -> int:
        """One past the global index of the newest live row."""
        return self.total_admitted

    @property
    def last_timestamp(self) -> float:
        if self.size == 0:
            raise IndexError("ring buffer is empty")
        return float(self._ts[(self._head + self.size - 1) % self.capacity])

    @property
    def duration(self) -> float:
        """Wall-clock span of the live region (0 for < 2 rows)."""
        if self.size < 2:
            return 0.0
        first = float(self._ts[self._head])
        return self.last_timestamp - first

    @property
    def wrapped(self) -> bool:
        return self._head + self.size > self.capacity

    # -- mutation ------------------------------------------------------------

    def append(self, timestamps: np.ndarray, values: np.ndarray) -> None:
        """Admit chunk rows at the tail (grows the ring if needed)."""
        c = int(timestamps.shape[0])
        if c == 0:
            return
        if self.size + c > self.capacity:
            self._grow(self.size + c)
        idx = (self._head + self.size + np.arange(c)) % self.capacity
        self._ts[idx] = timestamps
        self._vals[idx] = values
        self.size += c
        self.total_admitted += c

    def evict_before(self, cutoff: float) -> tuple[np.ndarray, np.ndarray]:
        """Drop rows with ``timestamp < cutoff``; return their (ts, values).

        The returned arrays are copies taken before the slots are recycled,
        in admission order — exactly what the rolling kernels need to
        inverse-update their accumulators.
        """
        if self.size == 0:
            return (np.empty(0), np.empty((0, self.n_metrics)))
        ts = self.timestamps_view()
        # Rows are time-ordered, so the evicted set is a prefix.
        e = int(np.searchsorted(ts, cutoff, side="left"))
        if e == 0:
            return (np.empty(0), np.empty((0, self.n_metrics)))
        ev_ts = np.array(ts[:e])
        ev_vals = np.array(self.values_view()[:e])
        self._head = (self._head + e) % self.capacity
        self.size -= e
        self.total_evicted += e
        return ev_ts, ev_vals

    def _grow(self, needed: int) -> None:
        new_cap = max(self.capacity * 2, needed)
        ts = np.empty(new_cap, dtype=np.float64)
        vals = np.empty((new_cap, self.n_metrics), dtype=np.float64)
        if self.size:
            ts[: self.size] = self.timestamps_view()
            vals[: self.size] = self.values_view()
        self._ts, self._vals = ts, vals
        self.capacity = new_cap
        self._head = 0
        self.grows += 1

    # -- views ---------------------------------------------------------------

    def timestamps_view(self) -> np.ndarray:
        """Live timestamps ``(size,)`` — zero-copy unless wrapped."""
        lo, hi = self._head, self._head + self.size
        if hi <= self.capacity:
            return self._ts[lo:hi]
        self.unwrap_copies += 1
        return np.concatenate((self._ts[lo:], self._ts[: hi - self.capacity]))

    def values_view(self) -> np.ndarray:
        """Live values ``(size, M)`` — zero-copy unless wrapped."""
        lo, hi = self._head, self._head + self.size
        if hi <= self.capacity:
            return self._vals[lo:hi]
        return np.concatenate((self._vals[lo:], self._vals[: hi - self.capacity]))

    def window(self) -> tuple[np.ndarray, np.ndarray]:
        """Snapshot ``(timestamps, values)`` of the live region (copies).

        Evaluation windows outlive the ring slots backing them (feature
        caches, lifecycle healthy buffers, shadow harnesses all retain the
        window), so materialisation copies exactly once.
        """
        return np.array(self.timestamps_view()), np.array(self.values_view())

    def head_rows(self, k: int) -> np.ndarray:
        """Copy of the first ``min(k, size)`` live rows ``(k, M)``."""
        k = min(int(k), self.size)
        return np.array(self.values_view()[:k])

    def tail_rows(self, k: int) -> np.ndarray:
        """Copy of the last ``min(k, size)`` live rows ``(k, M)``."""
        k = min(int(k), self.size)
        return np.array(self.values_view()[self.size - k :])
