"""Scoring workers: per-shard streaming detectors behind bounded queues.

A :class:`ScoringWorker` owns one :class:`~repro.monitoring.streaming.
StreamingDetector` and a bounded FIFO ingest queue.  The coordinator
routes each node's chunks to its shard owner; the worker drains its queue
in micro-batches through ``ingest_many`` (one engine dispatch per batch).

Overload is handled by **drop-oldest load shedding**: when a chunk
arrives at a full queue, the oldest queued chunk is discarded and counted
(``shed_chunks`` / ``shed_samples``) — never silently.  Dropping the
oldest pending chunk keeps per-node time order intact (the victim was
never ingested, so later chunks still advance the node's buffer
monotonically) and biases the fleet toward fresh telemetry, which is what
an online detector should score.
"""

from __future__ import annotations

from collections import deque

from repro.monitoring.streaming import StreamingDetector, StreamVerdict
from repro.telemetry.frame import NodeSeries

__all__ = ["ScoringWorker"]


class ScoringWorker:
    """One shard of the fleet: a streaming detector fed by a bounded queue.

    This is the **inline** transport: the coordinator drains it on its own
    thread, so scoring is cooperative and deterministic — the parity
    oracle the process transport (:mod:`repro.fleet.transport`) is checked
    against.  Both transports expose the same handle surface (``enqueue``
    / ``drain`` / ``beating`` / ``finalize`` / fan-out setters), keeping
    the coordinator transport-blind.

    Parameters
    ----------
    worker_id:
        Ring identity; also the label under which per-shard stage timings
        are recorded (``shard:<worker_id>``).
    stream:
        The worker's private :class:`StreamingDetector`.  Workers must not
        share one — per-node buffers and alert streaks are shard state.
    queue_capacity:
        Maximum queued chunks before drop-oldest shedding kicks in.
    """

    transport = "inline"

    def __init__(
        self,
        worker_id: str,
        stream: StreamingDetector,
        *,
        queue_capacity: int = 256,
    ):
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.worker_id = str(worker_id)
        self.stream = stream
        self.queue_capacity = int(queue_capacity)
        self._queue: deque[NodeSeries] = deque()
        #: flipped by fault injection; an unresponsive worker neither
        #: accepts nor drains chunks, exactly like a hung process.
        self.responsive = True
        self.shed_chunks = 0
        self.shed_samples = 0
        self.drained_chunks = 0
        self.batches = 0
        self.verdicts = 0
        #: tracked-node count as of the last drain — what ``status()``
        #: reports, so snapshots never race an in-progress batch.
        self._tracked_snapshot = 0

    # -- ingest --------------------------------------------------------------

    def enqueue(self, chunk: NodeSeries) -> int:
        """Queue one chunk; returns how many chunks were shed to make room.

        Raises ``RuntimeError`` if the worker is unresponsive — the
        coordinator treats that as a delivery failure and requeues after
        rebalancing.
        """
        if not self.responsive:
            raise RuntimeError(f"worker {self.worker_id} is not responsive")
        shed = 0
        while len(self._queue) >= self.queue_capacity:
            victim = self._queue.popleft()
            self.shed_chunks += 1
            self.shed_samples += victim.n_timestamps
            shed += 1
        self._queue.append(chunk)
        return shed

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- scoring -------------------------------------------------------------

    def drain(self, max_chunks: int | None = None) -> list[StreamVerdict]:
        """Score up to *max_chunks* queued chunks as one micro-batch."""
        if not self.responsive or not self._queue:
            return []
        take = len(self._queue) if max_chunks is None else min(max_chunks, len(self._queue))
        batch = [self._queue.popleft() for _ in range(take)]
        verdicts = self.stream.ingest_many(batch)
        self.drained_chunks += take
        self.batches += 1
        self.verdicts += len(verdicts)
        self._tracked_snapshot = len(self.stream.tracked_nodes())
        return verdicts

    def beating(self) -> bool:
        """Inline liveness is synchronous: responsive means beating."""
        return self.responsive

    def busy(self) -> bool:
        """Chunks are waiting that the next drain would score."""
        return self.responsive and bool(self._queue)

    # -- deployment fan-out --------------------------------------------------

    @property
    def threshold(self) -> float:
        return self.stream.threshold_

    def set_threshold(self, value: float) -> None:
        self.stream.threshold_ = float(value)

    def swap_detector(self, detector) -> None:
        self.stream._swap_detector(detector)

    def reset_node(self, job_id: int, component_id: int) -> None:
        self.stream.reset(job_id, component_id)

    # -- failure / rebalance -------------------------------------------------

    def kill(self) -> None:
        """Fault injection: stop responding (simulated worker crash)."""
        self.responsive = False

    def take_pending(self) -> list[NodeSeries]:
        """Salvage the queued chunks (in FIFO order) for requeueing."""
        pending = list(self._queue)
        self._queue.clear()
        return pending

    def finalize(self) -> tuple[list[StreamVerdict], list[NodeSeries]]:
        """Post-mortem: nothing published late inline, just the salvage."""
        return [], self.take_pending()

    def close(self, timeout: float = 0.0) -> None:
        """Inline workers own no OS resources; shutdown is a no-op."""

    # -- reporting -----------------------------------------------------------

    def tracked_nodes(self) -> list[tuple[int, int]]:
        return self.stream.tracked_nodes()

    def queued_keys(self) -> list[tuple[int, int]]:
        """Node keys with chunks waiting in the ingest queue (FIFO order)."""
        return [(c.job_id, c.component_id) for c in self._queue]

    def status(self) -> dict:
        """Counter snapshot; ``tracked_nodes`` is the last drain's value,
        never a live call into detector state (see the process transport,
        where that state belongs to another OS process)."""
        return {
            "worker_id": self.worker_id,
            "transport": self.transport,
            "responsive": self.responsive,
            "queued": self.queue_depth,
            "queue_capacity": self.queue_capacity,
            "shed_chunks": self.shed_chunks,
            "shed_samples": self.shed_samples,
            "drained_chunks": self.drained_chunks,
            "batches": self.batches,
            "verdicts": self.verdicts,
            "tracked_nodes": self._tracked_snapshot,
        }
