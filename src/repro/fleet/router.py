"""Consistent-hash shard routing for the fleet layer.

Per-node telemetry streams are keyed by ``(job_id, component_id)``.  The
router places each key on a hash ring shared with the scoring workers'
virtual nodes, so any coordinator replica computes the same assignment
without coordination, and membership changes move only the keys that
hashed onto the departed/arrived worker's arcs — the classic consistent
hashing bound of ~``K/W`` moved keys per membership change instead of the
``K (W-1)/W`` a modulo scheme reshuffles.

Hashes come from ``blake2b`` (seeded by ring construction only, never by
``PYTHONHASHSEED``), so assignments are deterministic across processes —
a requirement for the fleet parity tests and for replaying an audit log
against the routing decisions that produced it.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from hashlib import blake2b

__all__ = ["ShardRouter"]

NodeKey = tuple[int, int]


def _hash64(token: str) -> int:
    """Deterministic 64-bit ring position for *token*."""
    return int.from_bytes(blake2b(token.encode(), digest_size=8).digest(), "big")


class ShardRouter:
    """Consistent-hash ring mapping node keys to scoring workers.

    Parameters
    ----------
    workers:
        Initial worker ids to place on the ring.
    replicas:
        Virtual nodes per worker.  More replicas smooth the load split at
        the cost of a larger ring; 64 keeps the max/mean key imbalance
        within ~25% for fleets of up to a few dozen workers.
    """

    def __init__(self, workers: list[str] | None = None, *, replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = int(replicas)
        self._points: list[int] = []          # sorted ring positions
        self._owner: dict[int, str] = {}      # position -> worker id
        self._workers: set[str] = set()
        for worker_id in workers or []:
            self.add_worker(worker_id)

    # -- membership ----------------------------------------------------------

    def add_worker(self, worker_id: str) -> None:
        if worker_id in self._workers:
            raise ValueError(f"worker {worker_id!r} already on the ring")
        self._workers.add(worker_id)
        for r in range(self.replicas):
            point = _hash64(f"{worker_id}#{r}")
            # Collisions across 64-bit hashes are vanishingly rare; keep the
            # incumbent so the mapping never silently flips.
            if point in self._owner:
                continue
            self._owner[point] = worker_id
            insort(self._points, point)

    def remove_worker(self, worker_id: str) -> None:
        if worker_id not in self._workers:
            raise KeyError(f"worker {worker_id!r} not on the ring")
        self._workers.discard(worker_id)
        dropped = [p for p, w in self._owner.items() if w == worker_id]
        for point in dropped:
            del self._owner[point]
        self._points = sorted(self._owner)

    @property
    def workers(self) -> list[str]:
        return sorted(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    def __len__(self) -> int:
        return len(self._workers)

    # -- routing -------------------------------------------------------------

    def assign(self, key: NodeKey) -> str:
        """The worker owning *key*: first ring point clockwise of its hash."""
        if not self._points:
            raise RuntimeError("no workers on the ring")
        point = _hash64(f"{key[0]}:{key[1]}")
        idx = bisect_right(self._points, point)
        if idx == len(self._points):
            idx = 0  # wrap around the ring
        return self._owner[self._points[idx]]

    def assignment(self, keys: list[NodeKey]) -> dict[NodeKey, str]:
        """Assignments for many keys at once."""
        return {key: self.assign(key) for key in keys}

    def moved_keys(
        self, keys: list[NodeKey], other: "ShardRouter"
    ) -> list[NodeKey]:
        """Keys whose owner differs between this ring and *other*."""
        mine = self.assignment(keys)
        theirs = other.assignment(keys)
        return sorted(k for k in mine if mine[k] != theirs[k])

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready ring description: workers, replicas, point counts."""
        per_worker: dict[str, int] = {w: 0 for w in self._workers}
        for worker_id in self._owner.values():
            per_worker[worker_id] += 1
        return {
            "workers": self.workers,
            "replicas": self.replicas,
            "ring_points": len(self._points),
            "points_per_worker": dict(sorted(per_worker.items())),
        }
