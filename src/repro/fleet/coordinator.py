"""FleetCoordinator: the dispatch loop of the sharded scoring service.

The coordinator owns the ring (:class:`~repro.fleet.router.ShardRouter`),
the workers, and the rollup (:class:`~repro.fleet.rollup.ClusterRollup`).
Workers come in two **transports** behind one handle interface:

* ``inline`` — :class:`~repro.fleet.worker.ScoringWorker`, drained
  cooperatively on this thread.  Deterministic, zero IPC: the parity
  oracle.
* ``process`` — :class:`~repro.fleet.transport.ProcessWorkerHandle`, one
  OS process per worker fed over the shared-memory rings of
  :mod:`repro.fleet.shm`.  ``drain`` only moves bytes (non-blocking push
  of staged chunks, batched verdict collection), so every worker's
  scoring overlaps the coordinator's dispatch loop.

Telemetry chunks enter via :meth:`submit` (routed by ``(job_id,
component_id)``), and :meth:`pump` runs one cycle of the dispatch loop:

1. drain every responsive worker (inline: score its queue as one
   micro-batch; process: push staged chunks into its ring and collect
   published verdicts), recording a per-shard stage timing
   (``shard:<worker_id>``) and stamping heartbeats — inline workers beat
   synchronously, process workers through a heartbeat word in their
   segment's status block;
2. declare dead workers and **rebalance**: an inline worker that missed
   ``heartbeat_timeout`` consecutive pumps, or a worker process that the
   OS reports dead (or whose heartbeat word stalled past
   ``heartbeat_grace`` seconds), has its ring arcs removed, its final
   published verdicts collected, its unscored chunks salvaged (staged,
   in-ring, and popped-but-unscored alike — the worker's ``scored_seq``
   is the salvage watermark) and redelivered to the new owners, with
   every count surfaced (never silent);
3. apply any lifecycle promotion **atomically between batches**
   (inline transport only — per-window lifecycle observation is
   coordinator-side state a forked scorer cannot share);
4. fold the cycle's verdicts into the cluster rollup.

Backpressure: :meth:`submit` returns ``False`` once the target queue
crosses its high-watermark — the producer should pump before submitting
more.  If it does not, the worker sheds oldest-first with counted drops.
Shedding ownership is **coordinator-side** in both transports: only
staged chunks are ever dropped, never payloads already in a ring.

The coordinator also keeps an **owner table** — ``(job, component) ->
worker_id`` for every key it has ever delivered — so
:meth:`tracked_nodes` and :meth:`status` are pure coordinator state and
never race a scoring process (a ``fleet status`` probe cannot block on,
or crash into, a worker mid-batch).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterable, Protocol

from repro.core.prodigy import ProdigyDetector
from repro.fleet.rollup import ClusterRollup
from repro.fleet.router import ShardRouter
from repro.fleet.shm import RingSpec
from repro.fleet.transport import ProcessWorkerHandle, process_transport_available
from repro.fleet.worker import ScoringWorker
from repro.monitoring.streaming import StreamingDetector, StreamVerdict
from repro.pipeline.datapipeline import DataPipeline
from repro.runtime.config import get_execution_config
from repro.runtime.instrumentation import Instrumentation, get_instrumentation
from repro.telemetry.frame import NodeSeries

__all__ = ["FleetCoordinator"]


class FaultSchedule(Protocol):
    """Anything that injects worker failures during a stream replay."""

    def due(self, n_submitted: int) -> list[str]: ...


class FleetCoordinator:
    """Sharded multi-worker scoring over one fitted deployment.

    Parameters
    ----------
    pipeline, detector:
        The fitted deployment every worker scores with.  Inline workers
        share the pipeline object; process workers inherit a forked copy
        (copy-on-write) and privatize its engine.
    n_workers / worker_ids:
        Pool size (ids default to ``w0..wN-1``).
    transport:
        ``"inline"`` or ``"process"``; ``None`` resolves from
        :func:`~repro.runtime.config.get_execution_config` (the
        ``PRODIGY_FLEET_TRANSPORT`` environment knob).  ``"process"``
        falls back to inline — with the reason recorded in
        :attr:`transport_fallback` and ``status()`` — where ``fork`` is
        unavailable.
    queue_capacity:
        Per-worker ingest bound (drop-oldest beyond it).
    high_watermark:
        Queue depth at which :meth:`submit` signals backpressure;
        defaults to half the capacity.
    heartbeat_timeout:
        Missed pump cycles before a silent worker is *eligible* to be
        declared dead.  Process workers additionally require either an
        OS-confirmed death or ``heartbeat_grace`` seconds of wall-clock
        heartbeat silence — pump ticks can outrun a descheduled-but-alive
        process on a loaded machine, and a false death declaration is a
        full rebalance.
    heartbeat_grace:
        Wall-clock seconds of heartbeat silence after which an alive
        worker process is considered wedged.
    stall_timeout:
        Wall-clock seconds :meth:`run_stream` tolerates busy workers
        making zero progress before raising (a wedged fleet should fail
        loudly, not hang the caller).
    ring_spec:
        Shared-memory ring geometry for process workers; ``None`` uses
        the :class:`~repro.fleet.shm.RingSpec` defaults.  Size
        ``slot_samples``/``slot_metrics`` to the workload's chunk shape.
    stream_kwargs:
        Passed to every worker's :class:`StreamingDetector`
        (``window_seconds``, ``evaluate_every``, ``consecutive_alerts``).
    lifecycle:
        Optional :class:`LifecycleManager`; put into deferred-promotion
        mode so hot-swaps happen only at pump boundaries, fleet-wide.
        Inline transport only.
    rollup:
        Cluster rollup; a default one is built if omitted.
    """

    def __init__(
        self,
        pipeline: DataPipeline,
        detector: ProdigyDetector,
        *,
        n_workers: int = 2,
        worker_ids: list[str] | None = None,
        transport: str | None = None,
        queue_capacity: int = 256,
        high_watermark: int | None = None,
        heartbeat_timeout: int = 2,
        heartbeat_grace: float = 5.0,
        stall_timeout: float = 120.0,
        replicas: int = 64,
        ring_spec: RingSpec | None = None,
        stream_kwargs: dict | None = None,
        lifecycle=None,
        rollup: ClusterRollup | None = None,
        instrumentation: Instrumentation | None = None,
    ):
        if worker_ids is None:
            if n_workers < 1:
                raise ValueError("n_workers must be >= 1")
            worker_ids = [f"w{i}" for i in range(n_workers)]
        if len(set(worker_ids)) != len(worker_ids):
            raise ValueError("worker ids must be unique")
        if heartbeat_timeout < 1:
            raise ValueError("heartbeat_timeout must be >= 1")
        if transport is None:
            transport = get_execution_config().fleet_transport
        if transport not in ("inline", "process"):
            raise ValueError(f"unknown fleet transport {transport!r}")
        self.transport_fallback: str | None = None
        if transport == "process" and not process_transport_available():
            self.transport_fallback = (
                "process transport needs the fork start method; running inline"
            )
            transport = "inline"
        if transport == "process" and lifecycle is not None:
            raise ValueError(
                "lifecycle integration requires the inline transport: per-window "
                "observation feeds coordinator-side drift/shadow state that a "
                "forked scorer cannot share"
            )
        self.transport = transport
        self.pipeline = pipeline
        self.detector = detector
        self.queue_capacity = int(queue_capacity)
        self.high_watermark = (
            max(1, queue_capacity // 2) if high_watermark is None else int(high_watermark)
        )
        self.heartbeat_timeout = int(heartbeat_timeout)
        self.heartbeat_grace = float(heartbeat_grace)
        self.stall_timeout = float(stall_timeout)
        self.ring_spec = ring_spec
        self.stream_kwargs = dict(stream_kwargs or {})
        self.lifecycle = lifecycle
        if lifecycle is not None:
            lifecycle.defer_promotions = True
        engine = getattr(pipeline, "engine", None)
        self.instrumentation = (
            instrumentation
            if instrumentation is not None
            else (engine.instrumentation if engine is not None else get_instrumentation())
        )
        self.rollup = rollup if rollup is not None else ClusterRollup()
        self.router = ShardRouter(worker_ids, replicas=replicas)
        self._threshold = float(detector.threshold_)
        self.workers: dict[str, ScoringWorker | ProcessWorkerHandle] = {
            worker_id: self._build_worker(worker_id) for worker_id in worker_ids
        }
        self.dead_workers: dict[str, dict] = {}
        self._tick = 0
        self._last_beat: dict[str, int] = {w: 0 for w in worker_ids}
        self._last_beat_time: dict[str, float] = {
            w: time.monotonic() for w in worker_ids
        }
        #: owner table: every key the fleet has delivered, and whose shard
        #: is minding it.  Pure coordinator state — reporting never calls
        #: into live detector state (which may be another OS process).
        self._node_owner: dict[tuple[int, int], str] = {}
        #: chunks whose delivery failed (unresponsive owner); redelivered
        #: after the next rebalance, shed-oldest beyond queue_capacity.
        self._retry: deque[NodeSeries] = deque()
        self.submitted = 0
        self.backpressure_events = 0
        self.redelivered = 0
        self.retry_shed_chunks = 0
        self.rebalances = 0
        self.moved_keys = 0
        self.promotion_fanouts = 0

    def _build_worker(self, worker_id: str):
        if self.transport == "process":
            return ProcessWorkerHandle(
                worker_id,
                self.pipeline,
                self.detector,
                self.stream_kwargs,
                queue_capacity=self.queue_capacity,
                spec=self.ring_spec,
                instrumentation=self.instrumentation,
                threshold=self._threshold,
            )
        stream = StreamingDetector(
            self.pipeline, self.detector,
            lifecycle=self.lifecycle, **self.stream_kwargs,
        )
        worker = ScoringWorker(worker_id, stream, queue_capacity=self.queue_capacity)
        worker.set_threshold(self._threshold)
        return worker

    # -- membership ----------------------------------------------------------

    def add_worker(self, worker_id: str):
        """Scale out: place a fresh worker on the ring.

        Only the keys landing on the newcomer's ring arcs move (bounded by
        consistent hashing); their buffered window tails on the previous
        owners are dropped so exactly one shard minds each node.
        """
        worker = self._build_worker(worker_id)
        self.router.add_worker(worker_id)
        self.workers[worker_id] = worker
        self._last_beat[worker_id] = self._tick
        self._last_beat_time[worker_id] = time.monotonic()
        moved = 0
        for key, owner_id in list(self._node_owner.items()):
            new_owner = self.router.assign(key)
            if new_owner == owner_id:
                continue
            old = self.workers.get(owner_id)
            if old is not None and old.responsive:
                old.reset_node(*key)
            self._node_owner[key] = new_owner
            moved += 1
        self.moved_keys += moved
        if moved:
            self.instrumentation.count("fleet_moved_keys", moved)
        return worker

    def kill_worker(self, worker_id: str) -> None:
        """Fault injection: the worker stops responding.

        Inline workers flip their responsive flag; process workers take a
        real ``SIGKILL``.  Either way the coordinator is *not* told — it
        finds out through liveness detection, exactly like production.
        """
        self.workers[worker_id].kill()

    def alive_workers(self) -> list[str]:
        return self.router.workers

    # -- ingest --------------------------------------------------------------

    def submit(self, chunk: NodeSeries) -> bool:
        """Route one chunk to its shard owner.

        Returns ``False`` when the owner's queue is past its
        high-watermark (backpressure: pump before submitting more).
        Chunks addressed to an unresponsive-but-undetected worker are
        parked for redelivery after the rebalance.
        """
        self.submitted += 1
        self.instrumentation.count("fleet_submitted", 1)
        key = (chunk.job_id, chunk.component_id)
        worker_id = self.router.assign(key)
        worker = self.workers[worker_id]
        try:
            shed = worker.enqueue(chunk)
        except RuntimeError:
            self._park_for_retry(chunk)
            return True
        self._node_owner[key] = worker_id
        if shed:
            self.instrumentation.count("fleet_shed_chunks", shed)
        if worker.queue_depth >= self.high_watermark:
            self.backpressure_events += 1
            self.instrumentation.count("fleet_backpressure", 1)
            return False
        return True

    def _park_for_retry(self, chunk: NodeSeries) -> None:
        while len(self._retry) >= self.queue_capacity:
            self._retry.popleft()
            self.retry_shed_chunks += 1
            self.instrumentation.count("fleet_shed_chunks", 1)
        self._retry.append(chunk)

    # -- the dispatch loop ---------------------------------------------------

    def pump(self) -> list[StreamVerdict]:
        """One dispatch cycle; returns the verdicts it produced."""
        self._tick += 1
        verdicts: list[StreamVerdict] = []
        pending_promotion = None
        for worker_id in self.alive_workers():
            worker = self.workers[worker_id]
            if not worker.responsive:
                continue  # no heartbeat this cycle
            start = time.perf_counter()
            batch = worker.drain()
            self.instrumentation.record(
                f"shard:{worker_id}", time.perf_counter() - start, items=len(batch)
            )
            if worker.beating():
                self._last_beat[worker_id] = self._tick
                self._last_beat_time[worker_id] = time.monotonic()
            verdicts.extend(batch)
            if self.lifecycle is not None:
                promoted = self.lifecycle.take_pending_promotion()
                if promoted is not None:
                    pending_promotion = promoted
        verdicts.extend(self._check_heartbeats())
        self._flush_retries()
        if pending_promotion is not None:
            self._fanout_swap(pending_promotion)
        with self.instrumentation.stage("rollup", items=len(verdicts)):
            self.rollup.observe_many(verdicts)
        return verdicts

    def _check_heartbeats(self) -> list[StreamVerdict]:
        """Declare dead workers; returns verdicts salvaged post-mortem."""
        salvaged: list[StreamVerdict] = []
        now = time.monotonic()
        for worker_id in self.alive_workers():
            worker = self.workers[worker_id]
            tick_stale = self._tick - self._last_beat[worker_id] > self.heartbeat_timeout
            if worker.transport == "process":
                # Real death is OS-confirmed; a silent-but-alive process
                # additionally needs wall-clock grace — pump ticks can
                # outrun a descheduled scorer on a loaded machine.
                wall_stale = now - self._last_beat_time[worker_id] > self.heartbeat_grace
                if not worker.responsive or (tick_stale and wall_stale):
                    salvaged.extend(self._handle_dead(worker_id))
            elif tick_stale:
                salvaged.extend(self._handle_dead(worker_id))
        return salvaged

    def _handle_dead(self, worker_id: str) -> list[StreamVerdict]:
        """Rebalance a dead worker's shards onto the survivors.

        Returns the worker's final published-but-uncollected verdicts
        (process transport; a chunk's verdicts are published *before* its
        ``scored_seq`` advances, so nothing a dead worker scored is lost).
        """
        worker = self.workers[worker_id]
        worker.responsive = False
        if len(self.router) <= 1:
            self.close()
            raise RuntimeError(
                f"worker {worker_id} died and no replacement remains on the ring"
            )
        final_verdicts, pending = worker.finalize()
        lost_nodes = [k for k, w in self._node_owner.items() if w == worker_id]
        self.router.remove_worker(worker_id)
        self.rebalances += 1
        moved = {(c.job_id, c.component_id) for c in pending} | set(lost_nodes)
        for key in moved:
            self._node_owner[key] = self.router.assign(key)
        self.moved_keys += len(moved)
        self.instrumentation.count("fleet_rebalances", 1)
        self.instrumentation.count("fleet_moved_keys", len(moved))
        self.dead_workers[worker_id] = {
            "at_tick": self._tick,
            "moved_keys": len(moved),
            "requeued_chunks": len(pending),
            "salvaged_verdicts": len(final_verdicts),
        }
        # Unacked chunks redeliver to the new shard owners.  They predate
        # anything parked via the delivery-failure path, so they go to the
        # FRONT of the retry buffer — per-node time order must survive the
        # rebalance or the new owner rejects the stream as out-of-order.
        merged = deque(pending)
        merged.extend(self._retry)
        self._retry = merged
        while len(self._retry) > self.queue_capacity:
            self._retry.popleft()
            self.retry_shed_chunks += 1
            self.instrumentation.count("fleet_shed_chunks", 1)
        return final_verdicts

    def _flush_retries(self) -> None:
        """Redeliver parked chunks to their (possibly new) shard owners.

        A chunk whose owner is still unresponsive-but-undetected is parked
        again without counting as redelivered — only a successful enqueue
        is a redelivery.  Chunks were counted as submitted on first entry.
        """
        if not self._retry:
            return
        parked = list(self._retry)
        self._retry.clear()
        for chunk in parked:
            key = (chunk.job_id, chunk.component_id)
            worker_id = self.router.assign(key)
            try:
                shed = self.workers[worker_id].enqueue(chunk)
            except RuntimeError:
                self._park_for_retry(chunk)
                continue
            self._node_owner[key] = worker_id
            self.redelivered += 1
            self.instrumentation.count("fleet_redelivered", 1)
            if shed:
                self.instrumentation.count("fleet_shed_chunks", shed)

    def _fanout_swap(self, promoted: ProdigyDetector) -> None:
        """Hot-swap every worker onto the promoted model, between batches."""
        self.detector = promoted
        self._threshold = float(promoted.threshold_)
        for worker in self.workers.values():
            worker.swap_detector(promoted)
        self.promotion_fanouts += 1
        self.instrumentation.count("fleet_promotion_fanouts", 1)

    # -- stream replay -------------------------------------------------------

    def run_stream(
        self,
        chunks: Iterable[NodeSeries],
        *,
        pump_every: int = 8,
        faults: FaultSchedule | None = None,
    ) -> list[StreamVerdict]:
        """Feed a chunk stream through the fleet, pumping as it goes.

        Pumps every *pump_every* submissions and whenever backpressure is
        signalled, then drains until every queue is empty.  *faults* may
        inject worker failures keyed on the running submission count.
        """
        if pump_every < 1:
            raise ValueError("pump_every must be >= 1")
        verdicts: list[StreamVerdict] = []
        for i, chunk in enumerate(chunks, 1):
            if faults is not None:
                for worker_id in faults.due(i):
                    self.kill_worker(worker_id)
            accepted = self.submit(chunk)
            if not accepted or i % pump_every == 0:
                verdicts.extend(self.pump())
        # Drain what remains.  Three distinct states keep the loop honest:
        # progress (verdicts / rebalances / redeliveries) resets the idle
        # clock; a busy worker (process transport scoring asynchronously)
        # means wait, not exit; and only quiet-with-nothing-pending idles
        # toward termination — after heartbeat_timeout extra pumps for
        # death detection to fire on silent workers.
        idle = 0
        last_progress = time.monotonic()
        while self._work_remaining():
            before = (len(verdicts), self.rebalances, self.redelivered)
            verdicts.extend(self.pump())
            if (len(verdicts), self.rebalances, self.redelivered) != before:
                idle = 0
                last_progress = time.monotonic()
                continue
            if any(
                self.workers[w].busy() for w in self.alive_workers()
            ):
                idle = 0
                if time.monotonic() - last_progress > self.stall_timeout:
                    self.close()
                    raise RuntimeError(
                        f"fleet stalled: busy workers made no progress for "
                        f"{self.stall_timeout:.0f}s"
                    )
                time.sleep(0.001)  # let the scorers have the cores
                continue
            idle += 1
            if idle > self.heartbeat_timeout:
                break
        return verdicts

    def _work_remaining(self) -> bool:
        if self._retry:
            return True
        for worker_id in self.alive_workers():
            worker = self.workers[worker_id]
            if not worker.responsive:
                return True  # death detection still pending
            if worker.queue_depth or worker.busy():
                return True
        return False

    # -- shutdown ------------------------------------------------------------

    def close(self) -> None:
        """Graceful shutdown: every worker joined, every segment unlinked.

        Inline workers are no-ops; process workers get a stop sentinel,
        drain their rings, and are joined (terminated if wedged).  Safe to
        call repeatedly; dead workers were already disposed at rebalance.
        """
        for worker in self.workers.values():
            worker.close()

    def __enter__(self) -> "FleetCoordinator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- deployment-wide controls -------------------------------------------

    @property
    def threshold_(self) -> float:
        return self._threshold

    def set_threshold(self, value: float) -> None:
        """Fan a window threshold out to every worker."""
        self._threshold = float(value)
        for worker in self.workers.values():
            worker.set_threshold(self._threshold)

    def calibrate(self, healthy_series: list[NodeSeries], *, percentile: float = 99.0) -> float:
        """Window-threshold calibration (Sec. 3.3 streaming analogue), fleet-wide.

        Calibrates one scratch detector and fans the threshold out, so all
        shards agree regardless of which nodes they own.
        """
        scratch = StreamingDetector(self.pipeline, self.detector, **self.stream_kwargs)
        threshold = scratch.calibrate(healthy_series, percentile=percentile)
        self.set_threshold(threshold)
        return threshold

    # -- reporting -----------------------------------------------------------

    def tracked_nodes(self) -> list[tuple[int, int]]:
        """Every node the fleet is minding: scored, queued, or in redelivery.

        Read from the coordinator's owner table — never from live worker
        detector state, which (process transport) belongs to another OS
        process mid-batch.
        """
        keys = set(self._node_owner)
        keys.update((c.job_id, c.component_id) for c in self._retry)
        return sorted(keys)

    def status(self) -> dict:
        """JSON-ready fleet snapshot: workers, totals, ring, rollup.

        Safe to call during an active stream: every field is coordinator
        state or a shared-memory counter snapshot.
        """
        alive = set(self.alive_workers())
        workers = []
        for worker_id in sorted(self.workers):
            entry = self.workers[worker_id].status()
            entry["alive"] = worker_id in alive
            entry["last_beat_tick"] = self._last_beat.get(worker_id, 0)
            if worker_id in self.dead_workers:
                entry.update(self.dead_workers[worker_id])
            workers.append(entry)
        shed_chunks = (
            sum(w.shed_chunks for w in self.workers.values()) + self.retry_shed_chunks
        )
        shed_samples = sum(w.shed_samples for w in self.workers.values())
        status = {
            "tick": self._tick,
            "transport": self.transport,
            "transport_fallback": self.transport_fallback,
            "n_workers": len(self.workers),
            "alive": sorted(alive),
            "dead": sorted(self.dead_workers),
            "workers": workers,
            "totals": {
                "submitted": self.submitted,
                "verdicts": sum(w.verdicts for w in self.workers.values()),
                "shed_chunks": shed_chunks,
                "shed_samples": shed_samples,
                "backpressure_events": self.backpressure_events,
                "redelivered": self.redelivered,
                "rebalances": self.rebalances,
                "moved_keys": self.moved_keys,
                "promotion_fanouts": self.promotion_fanouts,
                "tracked_nodes": len(self.tracked_nodes()),
            },
            "shard_timings": {
                name.split(":", 1)[1]: {
                    "calls": s.calls,
                    "seconds": s.seconds,
                    "items": s.items,
                    "mean_ms": s.mean_ms,
                }
                for name, s in self.instrumentation.prefixed_stages("shard:").items()
            },
            "router": self.router.summary(),
            "rollup": self.rollup.summary(),
            "threshold": self.threshold_,
        }
        if self.transport == "process":
            handles = [
                w for w in self.workers.values()
                if isinstance(w, ProcessWorkerHandle)
            ]
            status["ipc"] = {
                "pushed_chunks": sum(w.pushed_chunks for w in handles),
                "ring_full_events": sum(w.ring_full_events for w in handles),
                "ctl_messages": sum(w.ctl_messages for w in handles),
                "timings": {
                    name.split(":", 1)[1]: {
                        "calls": s.calls,
                        "seconds": s.seconds,
                        "items": s.items,
                        "mean_ms": s.mean_ms,
                    }
                    for name, s in self.instrumentation.prefixed_stages("ipc:").items()
                },
            }
        return status
