"""FleetCoordinator: the dispatch loop of the sharded scoring service.

The coordinator owns the ring (:class:`~repro.fleet.router.ShardRouter`),
the workers (:class:`~repro.fleet.worker.ScoringWorker`), and the rollup
(:class:`~repro.fleet.rollup.ClusterRollup`).  Telemetry chunks enter via
:meth:`submit` (routed by ``(job_id, component_id)``), and :meth:`pump`
runs one cycle of the dispatch loop:

1. drain every responsive worker's queue as one micro-batch
   (``StreamingDetector.ingest_many`` — one engine dispatch per shard),
   recording a per-shard stage timing (``shard:<worker_id>``);
2. stamp heartbeats; a worker that missed ``heartbeat_timeout``
   consecutive pumps is declared dead and its shards **rebalance**: its
   ring arcs are removed (only its keys move — consistent hashing), its
   salvageable queued chunks are redelivered to the new owners, and the
   counts are surfaced (never silent);
3. apply any lifecycle promotion **atomically between batches**: with a
   :class:`~repro.lifecycle.manager.LifecycleManager` attached, promotions
   are deferred during draining and fanned out to every worker at the
   pump boundary, so no batch ever mixes model versions;
4. fold the cycle's verdicts into the cluster rollup.

Backpressure: :meth:`submit` returns ``False`` once the target queue
crosses its high-watermark — the producer should pump before submitting
more.  If it does not, the worker queue sheds oldest-first with counted
drops (see :class:`ScoringWorker`).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Iterable, Protocol

from repro.core.prodigy import ProdigyDetector
from repro.fleet.rollup import ClusterRollup
from repro.fleet.router import ShardRouter
from repro.fleet.worker import ScoringWorker
from repro.monitoring.streaming import StreamingDetector, StreamVerdict
from repro.pipeline.datapipeline import DataPipeline
from repro.runtime.instrumentation import Instrumentation, get_instrumentation
from repro.telemetry.frame import NodeSeries

__all__ = ["FleetCoordinator"]


class FaultSchedule(Protocol):
    """Anything that injects worker failures during a stream replay."""

    def due(self, n_submitted: int) -> list[str]: ...


class FleetCoordinator:
    """Sharded multi-worker scoring over one fitted deployment.

    Parameters
    ----------
    pipeline, detector:
        The fitted deployment every worker scores with.  The pipeline
        (and its runtime engine) is shared; per-node buffers and streaks
        live in each worker's private :class:`StreamingDetector`.
    n_workers / worker_ids:
        Pool size (ids default to ``w0..wN-1``).
    queue_capacity:
        Per-worker ingest queue bound (drop-oldest beyond it).
    high_watermark:
        Queue depth at which :meth:`submit` signals backpressure;
        defaults to half the capacity.
    heartbeat_timeout:
        Missed pump cycles before a silent worker is declared dead.
    stream_kwargs:
        Passed to every worker's :class:`StreamingDetector`
        (``window_seconds``, ``evaluate_every``, ``consecutive_alerts``).
    lifecycle:
        Optional :class:`LifecycleManager`; put into deferred-promotion
        mode so hot-swaps happen only at pump boundaries, fleet-wide.
    rollup:
        Cluster rollup; a default one is built if omitted.
    """

    def __init__(
        self,
        pipeline: DataPipeline,
        detector: ProdigyDetector,
        *,
        n_workers: int = 2,
        worker_ids: list[str] | None = None,
        queue_capacity: int = 256,
        high_watermark: int | None = None,
        heartbeat_timeout: int = 2,
        replicas: int = 64,
        stream_kwargs: dict | None = None,
        lifecycle=None,
        rollup: ClusterRollup | None = None,
        instrumentation: Instrumentation | None = None,
    ):
        if worker_ids is None:
            if n_workers < 1:
                raise ValueError("n_workers must be >= 1")
            worker_ids = [f"w{i}" for i in range(n_workers)]
        if len(set(worker_ids)) != len(worker_ids):
            raise ValueError("worker ids must be unique")
        if heartbeat_timeout < 1:
            raise ValueError("heartbeat_timeout must be >= 1")
        self.pipeline = pipeline
        self.detector = detector
        self.queue_capacity = int(queue_capacity)
        self.high_watermark = (
            max(1, queue_capacity // 2) if high_watermark is None else int(high_watermark)
        )
        self.heartbeat_timeout = int(heartbeat_timeout)
        self.stream_kwargs = dict(stream_kwargs or {})
        self.lifecycle = lifecycle
        if lifecycle is not None:
            lifecycle.defer_promotions = True
        engine = getattr(pipeline, "engine", None)
        self.instrumentation = (
            instrumentation
            if instrumentation is not None
            else (engine.instrumentation if engine is not None else get_instrumentation())
        )
        self.rollup = rollup if rollup is not None else ClusterRollup()
        self.router = ShardRouter(worker_ids, replicas=replicas)
        self.workers: dict[str, ScoringWorker] = {
            worker_id: self._build_worker(worker_id) for worker_id in worker_ids
        }
        self.dead_workers: dict[str, dict] = {}
        self._tick = 0
        self._last_beat: dict[str, int] = {w: 0 for w in worker_ids}
        #: chunks whose delivery failed (unresponsive owner); redelivered
        #: after the next rebalance, shed-oldest beyond queue_capacity.
        self._retry: deque[NodeSeries] = deque()
        self.submitted = 0
        self.backpressure_events = 0
        self.redelivered = 0
        self.retry_shed_chunks = 0
        self.rebalances = 0
        self.moved_keys = 0
        self.promotion_fanouts = 0

    def _build_worker(self, worker_id: str) -> ScoringWorker:
        stream = StreamingDetector(
            self.pipeline, self.detector,
            lifecycle=self.lifecycle, **self.stream_kwargs,
        )
        return ScoringWorker(worker_id, stream, queue_capacity=self.queue_capacity)

    # -- membership ----------------------------------------------------------

    def add_worker(self, worker_id: str) -> ScoringWorker:
        """Scale out: place a fresh worker on the ring.

        Only the keys landing on the newcomer's ring arcs move (bounded by
        consistent hashing); their buffered window tails on the previous
        owners are dropped so exactly one shard minds each node.
        """
        threshold = self.threshold_
        worker = self._build_worker(worker_id)
        self.router.add_worker(worker_id)
        self.workers[worker_id] = worker
        self._last_beat[worker_id] = self._tick
        worker.stream.threshold_ = threshold
        moved = 0
        for other_id, other in self.workers.items():
            if other_id == worker_id:
                continue
            for key in other.tracked_nodes():
                if self.router.assign(key) == worker_id:
                    other.stream.reset(*key)
                    moved += 1
        self.moved_keys += moved
        if moved:
            self.instrumentation.count("fleet_moved_keys", moved)
        return worker

    def kill_worker(self, worker_id: str) -> None:
        """Fault injection: the worker stops responding.

        The coordinator is *not* told — it finds out through missed
        heartbeats, exactly like a crashed process in production.
        """
        self.workers[worker_id].kill()

    def alive_workers(self) -> list[str]:
        return self.router.workers

    # -- ingest --------------------------------------------------------------

    def submit(self, chunk: NodeSeries) -> bool:
        """Route one chunk to its shard owner.

        Returns ``False`` when the owner's queue is past its
        high-watermark (backpressure: pump before submitting more).
        Chunks addressed to an unresponsive-but-undetected worker are
        parked for redelivery after the rebalance.
        """
        self.submitted += 1
        self.instrumentation.count("fleet_submitted", 1)
        worker_id = self.router.assign((chunk.job_id, chunk.component_id))
        worker = self.workers[worker_id]
        try:
            shed = worker.enqueue(chunk)
        except RuntimeError:
            self._park_for_retry(chunk)
            return True
        if shed:
            self.instrumentation.count("fleet_shed_chunks", shed)
        if worker.queue_depth >= self.high_watermark:
            self.backpressure_events += 1
            self.instrumentation.count("fleet_backpressure", 1)
            return False
        return True

    def _park_for_retry(self, chunk: NodeSeries) -> None:
        while len(self._retry) >= self.queue_capacity:
            self._retry.popleft()
            self.retry_shed_chunks += 1
            self.instrumentation.count("fleet_shed_chunks", 1)
        self._retry.append(chunk)

    # -- the dispatch loop ---------------------------------------------------

    def pump(self) -> list[StreamVerdict]:
        """One dispatch cycle; returns the verdicts it produced."""
        self._tick += 1
        verdicts: list[StreamVerdict] = []
        pending_promotion = None
        for worker_id in self.alive_workers():
            worker = self.workers[worker_id]
            if not worker.responsive:
                continue  # no heartbeat this cycle
            start = time.perf_counter()
            batch = worker.drain()
            self.instrumentation.record(
                f"shard:{worker_id}", time.perf_counter() - start, items=len(batch)
            )
            self._last_beat[worker_id] = self._tick
            verdicts.extend(batch)
            if self.lifecycle is not None:
                promoted = self.lifecycle.take_pending_promotion()
                if promoted is not None:
                    pending_promotion = promoted
        self._check_heartbeats()
        self._flush_retries()
        if pending_promotion is not None:
            self._fanout_swap(pending_promotion)
        with self.instrumentation.stage("rollup", items=len(verdicts)):
            self.rollup.observe_many(verdicts)
        return verdicts

    def _check_heartbeats(self) -> None:
        for worker_id in self.alive_workers():
            if self._tick - self._last_beat[worker_id] > self.heartbeat_timeout:
                self._handle_dead(worker_id)

    def _handle_dead(self, worker_id: str) -> None:
        """Rebalance a dead worker's shards onto the survivors."""
        worker = self.workers[worker_id]
        worker.responsive = False
        if len(self.router) <= 1:
            raise RuntimeError(
                f"worker {worker_id} died and no replacement remains on the ring"
            )
        lost_nodes = worker.tracked_nodes()
        pending = worker.take_pending()
        self.router.remove_worker(worker_id)
        self.rebalances += 1
        moved = {(c.job_id, c.component_id) for c in pending} | set(lost_nodes)
        self.moved_keys += len(moved)
        self.instrumentation.count("fleet_rebalances", 1)
        self.instrumentation.count("fleet_moved_keys", len(moved))
        self.dead_workers[worker_id] = {
            "at_tick": self._tick,
            "moved_keys": len(moved),
            "requeued_chunks": len(pending),
        }
        # Unacked chunks redeliver to the new shard owners.  They predate
        # anything parked via the delivery-failure path, so they go to the
        # FRONT of the retry buffer — per-node time order must survive the
        # rebalance or the new owner rejects the stream as out-of-order.
        merged = deque(pending)
        merged.extend(self._retry)
        self._retry = merged
        while len(self._retry) > self.queue_capacity:
            self._retry.popleft()
            self.retry_shed_chunks += 1
            self.instrumentation.count("fleet_shed_chunks", 1)

    def _flush_retries(self) -> None:
        """Redeliver parked chunks to their (possibly new) shard owners.

        A chunk whose owner is still unresponsive-but-undetected is parked
        again without counting as redelivered — only a successful enqueue
        is a redelivery.  Chunks were counted as submitted on first entry.
        """
        if not self._retry:
            return
        parked = list(self._retry)
        self._retry.clear()
        for chunk in parked:
            worker_id = self.router.assign((chunk.job_id, chunk.component_id))
            try:
                shed = self.workers[worker_id].enqueue(chunk)
            except RuntimeError:
                self._park_for_retry(chunk)
                continue
            self.redelivered += 1
            self.instrumentation.count("fleet_redelivered", 1)
            if shed:
                self.instrumentation.count("fleet_shed_chunks", shed)

    def _fanout_swap(self, promoted: ProdigyDetector) -> None:
        """Hot-swap every worker onto the promoted model, between batches."""
        self.detector = promoted
        for worker in self.workers.values():
            worker.stream._swap_detector(promoted)
        self.promotion_fanouts += 1
        self.instrumentation.count("fleet_promotion_fanouts", 1)

    # -- stream replay -------------------------------------------------------

    def run_stream(
        self,
        chunks: Iterable[NodeSeries],
        *,
        pump_every: int = 8,
        faults: FaultSchedule | None = None,
    ) -> list[StreamVerdict]:
        """Feed a chunk stream through the fleet, pumping as it goes.

        Pumps every *pump_every* submissions and whenever backpressure is
        signalled, then drains until every queue is empty.  *faults* may
        inject worker failures keyed on the running submission count.
        """
        if pump_every < 1:
            raise ValueError("pump_every must be >= 1")
        verdicts: list[StreamVerdict] = []
        for i, chunk in enumerate(chunks, 1):
            if faults is not None:
                for worker_id in faults.due(i):
                    self.kill_worker(worker_id)
            accepted = self.submit(chunk)
            if not accepted or i % pump_every == 0:
                verdicts.extend(self.pump())
        # Drain what remains; heartbeat detection may need extra cycles, and
        # a rebalance pump scores nothing itself (it requeues), so any
        # progress — verdicts, rebalances, redeliveries — resets the clock.
        idle = 0
        while idle <= self.heartbeat_timeout and self._work_remaining():
            before = (len(verdicts), self.rebalances, self.redelivered)
            verdicts.extend(self.pump())
            after = (len(verdicts), self.rebalances, self.redelivered)
            idle = 0 if after != before else idle + 1
        return verdicts

    def _work_remaining(self) -> bool:
        if self._retry:
            return True
        return any(
            self.workers[w].queue_depth for w in self.alive_workers()
            if self.workers[w].responsive
        ) or any(
            not self.workers[w].responsive for w in self.alive_workers()
        )

    # -- deployment-wide controls -------------------------------------------

    @property
    def threshold_(self) -> float:
        streams = [w.stream for w in self.workers.values()]
        return streams[0].threshold_ if streams else float(self.detector.threshold_)

    def set_threshold(self, value: float) -> None:
        """Fan a window threshold out to every worker."""
        for worker in self.workers.values():
            worker.stream.threshold_ = float(value)

    def calibrate(self, healthy_series: list[NodeSeries], *, percentile: float = 99.0) -> float:
        """Window-threshold calibration (Sec. 3.3 streaming analogue), fleet-wide.

        Calibrates one scratch detector and fans the threshold out, so all
        shards agree regardless of which nodes they own.
        """
        scratch = StreamingDetector(self.pipeline, self.detector, **self.stream_kwargs)
        threshold = scratch.calibrate(healthy_series, percentile=percentile)
        self.set_threshold(threshold)
        return threshold

    # -- reporting -----------------------------------------------------------

    def tracked_nodes(self) -> list[tuple[int, int]]:
        """Every node the fleet is minding: scored, queued, or in redelivery."""
        keys: set[tuple[int, int]] = set()
        for worker_id in self.alive_workers():
            worker = self.workers[worker_id]
            keys.update(worker.tracked_nodes())
            keys.update(worker.queued_keys())
        keys.update((c.job_id, c.component_id) for c in self._retry)
        return sorted(keys)

    def status(self) -> dict:
        """JSON-ready fleet snapshot: workers, totals, ring, rollup."""
        alive = set(self.alive_workers())
        workers = []
        for worker_id in sorted(self.workers):
            entry = self.workers[worker_id].status()
            entry["alive"] = worker_id in alive
            entry["last_beat_tick"] = self._last_beat.get(worker_id, 0)
            if worker_id in self.dead_workers:
                entry.update(self.dead_workers[worker_id])
            workers.append(entry)
        shed_chunks = (
            sum(w.shed_chunks for w in self.workers.values()) + self.retry_shed_chunks
        )
        shed_samples = sum(w.shed_samples for w in self.workers.values())
        return {
            "tick": self._tick,
            "n_workers": len(self.workers),
            "alive": sorted(alive),
            "dead": sorted(self.dead_workers),
            "workers": workers,
            "totals": {
                "submitted": self.submitted,
                "verdicts": sum(w.verdicts for w in self.workers.values()),
                "shed_chunks": shed_chunks,
                "shed_samples": shed_samples,
                "backpressure_events": self.backpressure_events,
                "redelivered": self.redelivered,
                "rebalances": self.rebalances,
                "moved_keys": self.moved_keys,
                "promotion_fanouts": self.promotion_fanouts,
                "tracked_nodes": len(self.tracked_nodes()),
            },
            "shard_timings": {
                name.split(":", 1)[1]: {
                    "calls": s.calls,
                    "seconds": s.seconds,
                    "items": s.items,
                    "mean_ms": s.mean_ms,
                }
                for name, s in self.instrumentation.prefixed_stages("shard:").items()
            },
            "router": self.router.summary(),
            "rollup": self.rollup.summary(),
            "threshold": self.threshold_,
        }
