"""Fleet layer: sharded multi-worker scoring across a cluster.

Turns the single-node :class:`~repro.monitoring.streaming.StreamingDetector`
runtime into a cluster-wide service: a consistent-hash
:class:`ShardRouter` partitions ``(job_id, component_id)`` streams over a
pool of :class:`ScoringWorker` shards, the :class:`FleetCoordinator` runs
the dispatch loop (micro-batch drains, backpressure, counted load
shedding, heartbeats, shard rebalancing, atomic lifecycle hot-swap
fan-out), and the :class:`ClusterRollup` folds per-node verdicts into the
cluster health summaries the serving dashboard shows.
"""

from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.rollup import ClusterRollup, NodeHealth
from repro.fleet.router import ShardRouter
from repro.fleet.worker import ScoringWorker

__all__ = [
    "ClusterRollup",
    "FleetCoordinator",
    "NodeHealth",
    "ScoringWorker",
    "ShardRouter",
]
