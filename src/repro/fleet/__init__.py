"""Fleet layer: sharded multi-worker scoring across a cluster.

Turns the single-node :class:`~repro.monitoring.streaming.StreamingDetector`
runtime into a cluster-wide service: a consistent-hash
:class:`ShardRouter` partitions ``(job_id, component_id)`` streams over a
pool of scoring workers, the :class:`FleetCoordinator` runs the dispatch
loop (micro-batch drains, backpressure, counted load shedding, liveness
detection, shard rebalancing, atomic lifecycle hot-swap fan-out), and the
:class:`ClusterRollup` folds per-node verdicts into the cluster health
summaries the serving dashboard shows.

Workers run in one of two transports behind the same handle interface:
``inline`` (:class:`ScoringWorker`, cooperative on the coordinator thread
— the parity oracle) and ``process`` (:class:`ProcessWorkerHandle`, one
OS process per worker fed over the shared-memory rings of
:mod:`repro.fleet.shm` — zero-copy numpy telemetry, real CPU scaling).
"""

from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.rollup import ClusterRollup, NodeHealth
from repro.fleet.router import ShardRouter
from repro.fleet.shm import RingSpec, WorkerSegment
from repro.fleet.transport import ProcessWorkerHandle, process_transport_available
from repro.fleet.worker import ScoringWorker

__all__ = [
    "ClusterRollup",
    "FleetCoordinator",
    "NodeHealth",
    "ProcessWorkerHandle",
    "RingSpec",
    "ScoringWorker",
    "ShardRouter",
    "WorkerSegment",
    "process_transport_available",
]
