"""Process-backed fleet workers over shared-memory rings.

The fleet's two transports share one coordinator:

* **inline** — :class:`~repro.fleet.worker.ScoringWorker` objects drained
  cooperatively on the coordinator thread.  Zero IPC, deterministic, the
  parity oracle — but one core, so workers buy isolation accounting, not
  throughput.
* **process** — each worker is a real OS process (``fork``) owning a
  private :class:`~repro.monitoring.streaming.StreamingDetector`, fed by
  the shared-memory rings of :mod:`repro.fleet.shm`.  Telemetry payloads
  are written once into the worker's chunk ring and read back as numpy
  views — never pickled per sample.  Only the low-rate control channel
  (schema registrations, threshold updates, promotion fan-out, shutdown)
  rides a pipe.

Crash accounting is coordinator-side: every pushed chunk stays on an
in-flight ledger until the worker's ``scored_seq`` (published through the
segment's status block *after* the batch's verdicts hit the verdict ring)
passes it.  When a worker dies — detected by ``Process.is_alive`` plus a
stalled heartbeat word — the coordinator collects the final published
verdicts, salvages every chunk past ``scored_seq`` (undrained ring slots
and drained-but-unscored alike), and hands them to the rebalance protocol.
The worker process never owns recovery state the coordinator cannot read
post-mortem.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from dataclasses import replace
from typing import Callable

import numpy as np

from repro.fleet.shm import (
    STATUS_BATCHES,
    STATUS_DRAINED,
    STATUS_FAILED,
    STATUS_HEARTBEAT,
    STATUS_SCORED_SEQ,
    STATUS_STOPPED,
    STATUS_TRACKED,
    STATUS_VERDICTS,
    VERDICT_DTYPE,
    RingSpec,
    WorkerSegment,
)
from repro.monitoring.streaming import StreamVerdict
from repro.telemetry.frame import NodeSeries

__all__ = ["RingSpec", "ProcessWorkerHandle", "process_transport_available"]

#: Idle poll interval of the worker loop (seconds).  Short enough that a
#: pump never waits long on a quiet worker, long enough not to burn a core.
_IDLE_SLEEP = 0.0005

#: Heartbeat-thread period.  The beat thread runs independently of the
#: scoring loop, so liveness stays visible through a long micro-batch.
_BEAT_PERIOD = 0.002


def process_transport_available() -> bool:
    """True when this host can run the process transport (needs ``fork``).

    The workers receive their pipeline/detector and the mapped shm segment
    through fork inheritance — nothing model-sized is ever pickled — so
    spawn-only platforms fall back to the inline transport.
    """
    import multiprocessing as mp

    return "fork" in mp.get_all_start_methods()


# -- worker-process side -------------------------------------------------------


def _apply_ctl(msg, stream, schemas: dict) -> bool:
    """Apply one control message; returns False on the stop sentinel."""
    kind = msg[0]
    if kind == "schema":
        _, idx, names, schema = msg
        schemas[idx] = (tuple(names), schema)
    elif kind == "threshold":
        stream.threshold_ = float(msg[1])
    elif kind == "detector":
        stream._swap_detector(msg[1])
    elif kind == "reset":
        stream.reset(msg[1], msg[2])
    elif kind == "stop":
        return False
    return True


def _worker_main(worker_id, segment, ctl, pipeline, detector, stream_kwargs) -> None:
    """Entry point of one scoring worker process.

    Loop: apply pending control messages, pop every available chunk from
    the ring, score the micro-batch through the private
    ``StreamingDetector``, publish the verdicts to the verdict ring, and
    only then advance ``scored_seq`` — so a chunk the coordinator sees as
    scored always has its verdicts physically published.
    """
    import threading

    from repro.monitoring.streaming import StreamingDetector
    from repro.runtime.instrumentation import Instrumentation

    parent = os.getppid()
    status = segment.status
    applied_ctl = 0
    # The forked engine must never touch the coordinator's process pool
    # (its worker processes belong to the parent); score serially with
    # private, silent instrumentation.
    engine = getattr(pipeline, "engine", None)
    if engine is not None:
        engine._pool = None
        engine.config = replace(engine.config, n_workers=1)
        engine.instrumentation = Instrumentation(enabled=False)

    def beat() -> None:
        while True:
            status[STATUS_HEARTBEAT] += 1
            time.sleep(_BEAT_PERIOD)

    threading.Thread(target=beat, daemon=True).start()

    stream = StreamingDetector(pipeline, detector, **stream_kwargs)
    schemas: dict[int, tuple[tuple[str, ...], object]] = {}
    running = True

    def orphaned() -> bool:
        return os.getppid() != parent

    def apply_ctl(block: bool) -> bool:
        """Apply one pending control message; True when one was applied."""
        nonlocal running, applied_ctl
        if not ctl.poll(0.01 if block else 0):
            return False
        running = _apply_ctl(ctl.recv(), stream, schemas) and running
        applied_ctl += 1
        return True

    def catch_up_ctl(need: int) -> None:
        """Block until *need* control messages were applied.

        Only called for floors carried by already-popped chunks, whose
        sends happened-before the push — the messages are guaranteed to be
        in the pipe, so this terminates (barring a vanished coordinator).
        """
        while applied_ctl < need:
            if not apply_ctl(True) and orphaned():
                raise RuntimeError("coordinator vanished mid control catch-up")

    def resolve_schema(idx: int):
        """Schema lookups may outrun the pipe by one loop iteration."""
        deadline = time.monotonic() + 10.0
        while idx not in schemas:
            if not apply_ctl(True) and (orphaned() or time.monotonic() > deadline):
                raise RuntimeError(f"schema index {idx} never registered")
        return schemas[idx]

    def publish(verdicts: list[StreamVerdict]) -> None:
        for v in verdicts:
            record = np.zeros((), dtype=VERDICT_DTYPE)
            record["job_id"] = v.job_id
            record["component_id"] = v.component_id
            record["window_end"] = v.window_end
            record["anomaly_score"] = v.anomaly_score
            record["alert"] = int(v.alert)
            record["streak"] = v.streak
            while not segment.verdicts.try_push(record):
                if orphaned():
                    raise RuntimeError("coordinator vanished with a full verdict ring")
                time.sleep(_IDLE_SLEEP)

    try:
        while True:
            while apply_ctl(False):
                pass
            batch = segment.chunks.pop_many(segment.spec.chunk_slots, resolve_schema)
            if not batch:
                if not running:
                    break
                if orphaned():
                    break
                time.sleep(_IDLE_SLEEP)
                continue
            # Channel-ordering floor: everything the coordinator sent
            # before pushing these chunks must be applied before scoring
            # them (matches inline semantics, where a threshold set before
            # a drain governs every chunk that drain scores).
            catch_up_ctl(max(ctl_seq for _, ctl_seq, _ in batch))
            verdicts = stream.ingest_many([chunk for _, _, chunk in batch])
            publish(verdicts)
            # Publish-then-advance: scored_seq moving past a chunk implies
            # its verdicts are already readable coordinator-side.
            status[STATUS_SCORED_SEQ] = batch[-1][0]
            status[STATUS_DRAINED] += len(batch)
            status[STATUS_BATCHES] += 1
            status[STATUS_VERDICTS] += len(verdicts)
            status[STATUS_TRACKED] = len(stream.tracked_nodes())
        status[STATUS_STOPPED] = 1
    except Exception:  # pragma: no cover - crash path, exercised via SIGKILL tests
        status[STATUS_FAILED] = 1
        raise
    finally:
        segment.release_views()
        ctl.close()


# -- coordinator side ----------------------------------------------------------


class ProcessWorkerHandle:
    """Coordinator-side endpoint of one process-backed scoring worker.

    Presents the same surface as the inline :class:`ScoringWorker`
    (``enqueue`` / ``drain`` / ``kill`` / ``finalize`` / counters) so the
    coordinator's dispatch loop, shedding accounting, and rebalance
    protocol are transport-blind.

    Shedding stays **coordinator-side**: chunks wait in a bounded staging
    deque (drop-oldest beyond ``queue_capacity``, counted) and move into
    the ring as slots free up; ``queue_depth`` counts staged plus
    in-flight-unscored, mirroring the inline queue semantics.
    """

    transport = "process"

    def __init__(
        self,
        worker_id: str,
        pipeline,
        detector,
        stream_kwargs: dict,
        *,
        queue_capacity: int = 256,
        spec: RingSpec | None = None,
        instrumentation=None,
        threshold: float | None = None,
    ):
        if not process_transport_available():
            raise RuntimeError("process transport requires the fork start method")
        import multiprocessing as mp

        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        self.worker_id = str(worker_id)
        self.queue_capacity = int(queue_capacity)
        self.spec = spec if spec is not None else RingSpec()
        self.instrumentation = instrumentation
        self.segment = WorkerSegment.create(self.spec)
        ctx = mp.get_context("fork")
        self._ctl, child_ctl = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.segment, child_ctl, pipeline, detector, stream_kwargs),
            name=f"fleet-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_ctl.close()

        self._staged: deque[NodeSeries] = deque()
        self._inflight: deque[tuple[int, NodeSeries]] = deque()
        self._next_seq = 1
        self._schema_idx: dict[str, int] = {}
        self._threshold = float(threshold) if threshold is not None else (
            float(detector.threshold_)
        )
        self._hb_seen = -1
        self._dead = False
        self._closed = False
        self._final_words = [0] * 8

        # Inline-compatible counters.
        self.shed_chunks = 0
        self.shed_samples = 0
        self.drained_chunks = 0
        self.batches = 0
        self.verdicts = 0
        # Transport counters.
        self.pushed_chunks = 0
        self.ring_full_events = 0
        self.ctl_messages = 0

    # -- liveness -------------------------------------------------------------

    @property
    def responsive(self) -> bool:
        return not self._dead and self.process.is_alive()

    @responsive.setter
    def responsive(self, value: bool) -> None:
        # The coordinator's death path sets ``responsive = False``; for a
        # process worker that is a declaration of death.
        if not value:
            self._dead = True

    def beating(self) -> bool:
        """True when the worker showed a fresh heartbeat since last asked."""
        if not self.responsive:
            return False
        hb = int(self.segment.status[STATUS_HEARTBEAT])
        fresh = hb != self._hb_seen
        self._hb_seen = hb
        return fresh

    def busy(self) -> bool:
        """Work is staged, in flight, or published but not yet collected."""
        if self._closed or not self.responsive:
            return False
        return bool(self._staged or self._inflight or len(self.segment.verdicts))

    # -- ingest ---------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._staged) + len(self._inflight)

    def enqueue(self, chunk: NodeSeries) -> int:
        """Stage one chunk; returns chunks shed to respect ``queue_capacity``.

        Only staged chunks can be shed — in-flight payloads already live in
        the ring and cannot be retracted — so the bound degrades softly when
        the ring itself holds a full capacity of unscored work.
        """
        if not self.responsive:
            raise RuntimeError(f"worker {self.worker_id} is not responsive")
        shed = 0
        while self.queue_depth >= self.queue_capacity and self._staged:
            victim = self._staged.popleft()
            self.shed_chunks += 1
            self.shed_samples += victim.n_timestamps
            shed += 1
        self._staged.append(chunk)
        return shed

    def _send_ctl(self, msg) -> bool:
        try:
            self._ctl.send(msg)
        except (BrokenPipeError, OSError):
            return False
        self.ctl_messages += 1
        return True

    def _schema_index(self, chunk: NodeSeries) -> int:
        digest = chunk.schema_digest
        idx = self._schema_idx.get(digest)
        if idx is None:
            idx = len(self._schema_idx)
            self._schema_idx[digest] = idx
            # Register before the first push so the worker can always
            # resolve a header's schema_idx from its control channel.
            self._send_ctl(("schema", idx, chunk.metric_names, chunk.schema))
        return idx

    def _push_staged(self) -> int:
        pushed = 0
        while self._staged:
            chunk = self._staged[0]
            idx = self._schema_index(chunk)
            if not self.segment.chunks.try_push(
                chunk, idx, self._next_seq, self.ctl_messages
            ):
                self.ring_full_events += 1
                break
            self._inflight.append((self._next_seq, chunk))
            self._next_seq += 1
            self._staged.popleft()
            pushed += 1
        self.pushed_chunks += pushed
        return pushed

    def _collect(self) -> list[StreamVerdict]:
        records = self.segment.verdicts.pop_all()
        out = [
            StreamVerdict(
                job_id=int(r["job_id"]),
                component_id=int(r["component_id"]),
                window_end=float(r["window_end"]),
                anomaly_score=float(r["anomaly_score"]),
                alert=bool(r["alert"]),
                streak=int(r["streak"]),
            )
            for r in records
        ]
        self.verdicts += len(out)
        return out

    def _refresh(self) -> None:
        status = self.segment.status
        scored = int(status[STATUS_SCORED_SEQ])
        while self._inflight and self._inflight[0][0] <= scored:
            self._inflight.popleft()
        self.drained_chunks = int(status[STATUS_DRAINED])
        self.batches = int(status[STATUS_BATCHES])

    # -- the pump interface ----------------------------------------------------

    def drain(self, max_chunks: int | None = None) -> list[StreamVerdict]:
        """One non-blocking transport cycle: push staged, collect verdicts.

        Unlike the inline worker, scoring happens asynchronously in the
        worker process — ``drain`` only moves bytes, so the coordinator
        overlaps its dispatch loop with every worker's compute.
        """
        if not self.responsive:
            return []
        if self.instrumentation is not None:
            with self.instrumentation.stage("ipc:push"):
                pushed = self._push_staged()
            with self.instrumentation.stage("ipc:collect") as _:
                verdicts = self._collect()
            self.instrumentation.count("fleet_ring_pushed", pushed)
        else:
            self._push_staged()
            verdicts = self._collect()
        self._refresh()
        return verdicts

    # -- control fan-out --------------------------------------------------------

    @property
    def threshold(self) -> float:
        return self._threshold

    def set_threshold(self, value: float) -> None:
        self._threshold = float(value)
        self._send_ctl(("threshold", float(value)))

    def swap_detector(self, detector) -> None:
        self._threshold = float(detector.threshold_)
        self._send_ctl(("detector", detector))

    def reset_node(self, job_id: int, component_id: int) -> None:
        self._send_ctl(("reset", job_id, component_id))

    # -- failure / salvage ------------------------------------------------------

    def kill(self) -> None:
        """Fault injection: SIGKILL the worker process mid-whatever."""
        if self.process.is_alive() and self.process.pid is not None:
            os.kill(self.process.pid, signal.SIGKILL)

    def finalize(self) -> tuple[list[StreamVerdict], list[NodeSeries]]:
        """Post-mortem: (final published verdicts, salvageable chunks).

        Reaps the process (terminating it if it is merely hung), drains the
        verdict ring one last time, then salvages every chunk newer than the
        worker's final ``scored_seq`` — undrained ring slots and popped-but-
        unscored chunks alike, in FIFO order — plus everything still staged.
        The segment is closed and unlinked; nothing leaks.
        """
        self._dead = True
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        verdicts = self._collect()
        scored = int(self.segment.status[STATUS_SCORED_SEQ])
        salvage = [chunk for seq, chunk in self._inflight if seq > scored]
        salvage.extend(self._staged)
        self.drained_chunks = int(self.segment.status[STATUS_DRAINED])
        self.batches = int(self.segment.status[STATUS_BATCHES])
        self._inflight.clear()
        self._staged.clear()
        self._dispose_segment()
        return verdicts, salvage

    def take_pending(self) -> list[NodeSeries]:
        """Inline-compatible salvage entry point (drops the verdicts)."""
        return self.finalize()[1]

    def close(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: stop sentinel, join, unlink the segment.

        The worker drains control messages even while chunks are pending,
        so a clean close should only follow a fully-pumped stream; anything
        still in the ring dies with the segment (counted by the caller).
        """
        if self._closed:
            return
        if self.process.is_alive():
            self._send_ctl(("stop",))
            self.process.join(timeout=timeout)
            if self.process.is_alive():  # pragma: no cover - wedged worker
                self.process.terminate()
                self.process.join(timeout=5.0)
        self._dead = True
        self._dispose_segment()
        try:
            self._ctl.close()
        except OSError:  # pragma: no cover
            pass

    def _dispose_segment(self) -> None:
        if self._closed:
            return
        self._final_words = [int(w) for w in self.segment.status[:8]]
        self._closed = True
        self.segment.close()
        self.segment.unlink()

    # -- reporting --------------------------------------------------------------

    def queued_keys(self) -> list[tuple[int, int]]:
        """Node keys with staged or in-flight chunks (FIFO order)."""
        keys = [(c.job_id, c.component_id) for _, c in self._inflight]
        keys.extend((c.job_id, c.component_id) for c in self._staged)
        return keys

    def ipc_stats(self) -> dict:
        return {
            "pushed_chunks": self.pushed_chunks,
            "ring_full_events": self.ring_full_events,
            "ctl_messages": self.ctl_messages,
            "staged": len(self._staged),
            "in_flight": len(self._inflight),
            "pending_results": (
                0 if self._closed else len(self.segment.verdicts)
            ),
        }

    def status(self) -> dict:
        """Snapshot from the status block — never calls into the worker."""
        if self._closed:
            words = self._final_words
        else:
            words = [int(w) for w in self.segment.status[:8]]
        return {
            "worker_id": self.worker_id,
            "transport": "process",
            "pid": self.process.pid,
            "responsive": self.responsive,
            "queued": self.queue_depth,
            "queue_capacity": self.queue_capacity,
            "shed_chunks": self.shed_chunks,
            "shed_samples": self.shed_samples,
            "drained_chunks": words[STATUS_DRAINED],
            "batches": words[STATUS_BATCHES],
            "verdicts": self.verdicts,
            "tracked_nodes": words[STATUS_TRACKED],
            "scored_seq": words[STATUS_SCORED_SEQ],
            "stopped": bool(words[STATUS_STOPPED]),
            "failed": bool(words[STATUS_FAILED]),
            "ipc": self.ipc_stats(),
        }
