"""Cluster-level health rollups over per-node stream verdicts.

Per-node verdicts are what the detector produces; operators triage at the
cluster level — "which rack is melting", "which application is tripping
alerts", "which ten nodes should I look at first".  :class:`ClusterRollup`
folds every :class:`~repro.monitoring.streaming.StreamVerdict` the fleet
emits into those aggregates, cheap enough to run inline with scoring.

Racks are derived from ``component_id`` ranges (``nodes_per_rack``
consecutive ids per rack — the synthetic cluster has no cabling database);
applications come from an optional ``job_id -> app name`` mapping, e.g.
the scheduler's job table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.monitoring.streaming import StreamVerdict

__all__ = ["NodeHealth", "ClusterRollup"]


@dataclass
class NodeHealth:
    """Running health record of one ``(job_id, component_id)`` stream."""

    verdicts: int = 0
    alerts: int = 0
    last_score: float = 0.0
    peak_score: float = float("-inf")
    last_window_end: float = float("-inf")
    streak: int = 0

    def observe(self, verdict: StreamVerdict) -> None:
        self.verdicts += 1
        self.alerts += int(verdict.alert)
        self.last_score = verdict.anomaly_score
        self.peak_score = max(self.peak_score, verdict.anomaly_score)
        self.last_window_end = max(self.last_window_end, verdict.window_end)
        self.streak = verdict.streak


@dataclass
class _GroupStats:
    verdicts: int = 0
    alerts: int = 0

    @property
    def alert_rate(self) -> float:
        return 0.0 if self.verdicts == 0 else self.alerts / self.verdicts


class ClusterRollup:
    """Aggregates fleet verdicts into cluster health summaries.

    Parameters
    ----------
    nodes_per_rack:
        Consecutive ``component_id`` values mapped to one rack.
    app_of:
        ``job_id -> application name`` (mapping or callable); unknown jobs
        land in the ``"unknown"`` bucket.
    schema_of:
        ``(job_id, component_id) -> node-class name`` (mapping or callable)
        for heterogeneous fleets, e.g. ``"cpu"`` / ``"gpu"``; when set, the
        summary breaks alert rates out per node class so a GPU-partition
        incident is visible even while the fleet-wide rate looks calm.
    top_k:
        Size of the most-anomalous-nodes leaderboard.
    """

    def __init__(
        self,
        *,
        nodes_per_rack: int = 32,
        app_of: Mapping[int, str] | Callable[[int], str] | None = None,
        schema_of: (
            Mapping[tuple[int, int], str] | Callable[[int, int], str] | None
        ) = None,
        top_k: int = 5,
    ):
        if nodes_per_rack < 1:
            raise ValueError("nodes_per_rack must be >= 1")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.nodes_per_rack = int(nodes_per_rack)
        self.top_k = int(top_k)
        self._app_of = app_of
        self._schema_of = schema_of
        self.nodes: dict[tuple[int, int], NodeHealth] = {}
        self.racks: dict[int, _GroupStats] = {}
        self.apps: dict[str, _GroupStats] = {}
        self.node_classes: dict[str, _GroupStats] = {}
        self.total = _GroupStats()

    # -- ingest --------------------------------------------------------------

    def rack_of(self, component_id: int) -> int:
        return int(component_id) // self.nodes_per_rack

    def app_name(self, job_id: int) -> str:
        if self._app_of is None:
            return "unknown"
        if callable(self._app_of):
            return str(self._app_of(job_id))
        return str(self._app_of.get(job_id, "unknown"))

    def node_class(self, job_id: int, component_id: int) -> str | None:
        """Node-class name of a stream, or None when no mapping is set."""
        if self._schema_of is None:
            return None
        if callable(self._schema_of):
            return str(self._schema_of(job_id, component_id))
        return str(self._schema_of.get((job_id, component_id), "unknown"))

    def observe(self, verdict: StreamVerdict) -> None:
        key = (verdict.job_id, verdict.component_id)
        self.nodes.setdefault(key, NodeHealth()).observe(verdict)
        groups = [
            self.total,
            self.racks.setdefault(self.rack_of(verdict.component_id), _GroupStats()),
            self.apps.setdefault(self.app_name(verdict.job_id), _GroupStats()),
        ]
        node_class = self.node_class(*key)
        if node_class is not None:
            groups.append(self.node_classes.setdefault(node_class, _GroupStats()))
        for group in groups:
            group.verdicts += 1
            group.alerts += int(verdict.alert)

    def observe_many(self, verdicts: list[StreamVerdict]) -> None:
        for verdict in verdicts:
            self.observe(verdict)

    # -- reading -------------------------------------------------------------

    def top_nodes(self, k: int | None = None) -> list[dict]:
        """The *k* most anomalous nodes by peak score (ties broken by key)."""
        k = self.top_k if k is None else k
        ranked = sorted(
            self.nodes.items(), key=lambda item: (-item[1].peak_score, item[0])
        )
        return [
            {
                "job_id": key[0],
                "component_id": key[1],
                "peak_score": health.peak_score,
                "last_score": health.last_score,
                "alerts": health.alerts,
                "verdicts": health.verdicts,
                "streak": health.streak,
            }
            for key, health in ranked[:k]
        ]

    def summary(self) -> dict:
        """JSON-ready cluster health snapshot."""
        return {
            "nodes_tracked": len(self.nodes),
            "verdicts": self.total.verdicts,
            "alerts": self.total.alerts,
            "alert_rate": self.total.alert_rate,
            "alerting_nodes": sum(1 for h in self.nodes.values() if h.alerts),
            "racks": {
                str(rack): {
                    "verdicts": g.verdicts,
                    "alerts": g.alerts,
                    "alert_rate": g.alert_rate,
                }
                for rack, g in sorted(self.racks.items())
            },
            "apps": {
                app: {
                    "verdicts": g.verdicts,
                    "alerts": g.alerts,
                    "alert_rate": g.alert_rate,
                }
                for app, g in sorted(self.apps.items())
            },
            "node_classes": {
                name: {
                    "verdicts": g.verdicts,
                    "alerts": g.alerts,
                    "alert_rate": g.alert_rate,
                }
                for name, g in sorted(self.node_classes.items())
            },
            "top_nodes": self.top_nodes(),
        }
