"""Shared-memory transport segments for process-backed fleet workers.

One :class:`WorkerSegment` per scoring worker carries the entire
coordinator<->worker data plane in a single POSIX shared-memory block:

```
  +--------------------------------------------------------------+
  | status block  int64[16]   heartbeat, scored_seq, counters    |
  +--------------------------------------------------------------+
  | chunk ring    ctrl int64[2] (head, tail — monotonic seqs)    |
  |               slot 0: header | timestamps[S] | values[S*M]   |
  |               slot 1: ...                                    |
  +--------------------------------------------------------------+
  | verdict ring  ctrl int64[2]                                  |
  |               slot 0..V-1: one VERDICT_DTYPE record each     |
  +--------------------------------------------------------------+
```

Telemetry payloads are written **once** into a chunk slot as raw float64
(timestamps then the row-major ``T x M`` value matrix) and read back as
numpy views — no pickling ever touches a sample.  The reader copies the
views into private arrays before releasing the slot (the slot is reused;
``StreamingDetector`` buffers chunk arrays across calls), so the cost per
chunk is exactly two memcpys, not a serialize/deserialize round trip.

Both rings are single-producer/single-consumer: the coordinator produces
chunks and consumes verdicts, the worker does the reverse.  ``head`` and
``tail`` are monotonic sequence counters (slot index = ``seq % n_slots``)
with exactly one writer each, stored as aligned 8-byte words — CPython
emits one untorn store per assignment, and payload writes precede the
``head`` bump program-order (sufficient on the x86-class hosts this
targets; the parity tests would catch a platform where it is not).

The coordinator *creates* every segment and is the only process that ever
``unlink``s one.  Workers receive the mapped :class:`WorkerSegment` object
through ``fork`` inheritance — no by-name attach, so Python's
``resource_tracker`` never double-registers a segment and a SIGKILL-ed
worker cannot tear a live segment down behind the coordinator's back.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable

import numpy as np

from repro.telemetry.frame import NodeSeries

__all__ = [
    "CHUNK_HEADER_DTYPE",
    "VERDICT_DTYPE",
    "RingSpec",
    "WorkerSegment",
    "ChunkRing",
    "VerdictRing",
]

#: Per-slot chunk metadata. ``schema_idx`` indexes the control-channel
#: schema table (digest -> metric names), so variable-length names never
#: ride in the ring; ``seq`` is the chunk's transport sequence number —
#: the unit of salvage accounting after a worker death.  ``ctl_seq`` is
#: the count of control-pipe messages the coordinator had sent when it
#: pushed the chunk: the worker must apply at least that many before
#: scoring it, which orders the two channels (a threshold set *before* a
#: push can never be applied *after* the chunk it should govern).
CHUNK_HEADER_DTYPE = np.dtype([
    ("job_id", "<i8"),
    ("component_id", "<i8"),
    ("n_timestamps", "<i8"),
    ("n_metrics", "<i8"),
    ("schema_idx", "<i8"),
    ("seq", "<i8"),
    ("ctl_seq", "<i8"),
])

#: One scored window, returned through the verdict ring.
VERDICT_DTYPE = np.dtype([
    ("job_id", "<i8"),
    ("component_id", "<i8"),
    ("window_end", "<f8"),
    ("anomaly_score", "<f8"),
    ("alert", "<i8"),
    ("streak", "<i8"),
])

_CTRL_WORDS = 2  # head, tail
_I8 = np.dtype("<i8").itemsize

#: Status-block word indices (worker writes, coordinator reads).
STATUS_WORDS = 16
STATUS_HEARTBEAT = 0      # bumped ~every 2 ms by the worker's beat thread
STATUS_SCORED_SEQ = 1     # highest chunk seq whose verdicts are published
STATUS_DRAINED = 2        # chunks popped + scored
STATUS_BATCHES = 3        # ingest_many dispatches
STATUS_VERDICTS = 4       # verdicts published
STATUS_TRACKED = 5        # nodes with buffered worker-side state
STATUS_STOPPED = 6        # worker exited its loop cleanly
STATUS_FAILED = 7         # worker loop raised (crash, not kill)


@dataclass(frozen=True)
class RingSpec:
    """Fixed geometry of one worker segment.

    ``slot_samples`` / ``slot_metrics`` bound the largest chunk a slot can
    carry; pushing a bigger chunk is a hard error (the coordinator sizes
    the spec from its workload, it never silently truncates telemetry).
    """

    chunk_slots: int = 64
    slot_samples: int = 256
    slot_metrics: int = 64
    verdict_slots: int = 4096

    def __post_init__(self) -> None:
        for name in ("chunk_slots", "slot_samples", "slot_metrics", "verdict_slots"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")

    @property
    def payload_doubles(self) -> int:
        return self.slot_samples * (self.slot_metrics + 1)

    @property
    def chunk_slot_bytes(self) -> int:
        return CHUNK_HEADER_DTYPE.itemsize + self.payload_doubles * 8

    @property
    def status_bytes(self) -> int:
        return STATUS_WORDS * _I8

    @property
    def chunk_ring_bytes(self) -> int:
        return _CTRL_WORDS * _I8 + self.chunk_slots * self.chunk_slot_bytes

    @property
    def verdict_ring_bytes(self) -> int:
        return _CTRL_WORDS * _I8 + self.verdict_slots * VERDICT_DTYPE.itemsize

    @property
    def total_bytes(self) -> int:
        return self.status_bytes + self.chunk_ring_bytes + self.verdict_ring_bytes


class ChunkRing:
    """SPSC ring of telemetry chunks (coordinator -> worker)."""

    def __init__(self, spec: RingSpec, buf: memoryview):
        self.spec = spec
        self._ctrl = np.frombuffer(buf, dtype="<i8", count=_CTRL_WORDS)
        slot_bytes = spec.chunk_slot_bytes
        base = _CTRL_WORDS * _I8
        self._headers = []
        self._timestamps = []
        self._values = []
        for i in range(spec.chunk_slots):
            off = base + i * slot_bytes
            self._headers.append(
                np.frombuffer(buf, dtype=CHUNK_HEADER_DTYPE, count=1, offset=off)
            )
            pay = off + CHUNK_HEADER_DTYPE.itemsize
            self._timestamps.append(
                np.frombuffer(buf, dtype="<f8", count=spec.slot_samples, offset=pay)
            )
            self._values.append(
                np.frombuffer(
                    buf, dtype="<f8",
                    count=spec.slot_samples * spec.slot_metrics,
                    offset=pay + spec.slot_samples * 8,
                )
            )

    @property
    def head(self) -> int:
        return int(self._ctrl[0])

    @property
    def tail(self) -> int:
        return int(self._ctrl[1])

    def __len__(self) -> int:
        return self.head - self.tail

    @property
    def free_slots(self) -> int:
        return self.spec.chunk_slots - len(self)

    def try_push(
        self, chunk: NodeSeries, schema_idx: int, seq: int, ctl_seq: int = 0
    ) -> bool:
        """Write one chunk into the next free slot; False when the ring is full."""
        spec = self.spec
        if chunk.n_timestamps > spec.slot_samples or chunk.n_metrics > spec.slot_metrics:
            raise ValueError(
                f"chunk ({chunk.n_timestamps} samples x {chunk.n_metrics} metrics) "
                f"exceeds the ring slot ({spec.slot_samples} x {spec.slot_metrics}); "
                f"size the transport's RingSpec for the workload"
            )
        head = self.head
        if head - self.tail >= spec.chunk_slots:
            return False
        slot = head % spec.chunk_slots
        t, m = chunk.n_timestamps, chunk.n_metrics
        self._timestamps[slot][:t] = chunk.timestamps
        self._values[slot][: t * m] = chunk.values.reshape(-1)
        header = self._headers[slot]
        header["job_id"] = chunk.job_id
        header["component_id"] = chunk.component_id
        header["n_timestamps"] = t
        header["n_metrics"] = m
        header["schema_idx"] = schema_idx
        header["seq"] = seq
        header["ctl_seq"] = ctl_seq
        self._ctrl[0] = head + 1  # publish: payload writes precede this store
        return True

    def pop_many(
        self,
        max_chunks: int,
        resolve_schema: Callable[[int], tuple[tuple[str, ...], object]],
    ) -> list[tuple[int, int, NodeSeries]]:
        """Copy up to *max_chunks* chunks out of the ring, oldest first.

        Returns ``(seq, ctl_seq, series)`` triples.  *resolve_schema* maps
        a slot's ``schema_idx`` to ``(metric_names, schema)`` — registered
        over the control channel before the first chunk carrying that
        index is ever pushed.  Payload views are **copied** before the
        tail advances: the slot is free for reuse the moment the pop is
        visible.
        """
        out: list[tuple[int, int, NodeSeries]] = []
        while len(out) < max_chunks:
            tail = self.tail
            if self.head - tail <= 0:
                break
            slot = tail % self.spec.chunk_slots
            header = self._headers[slot]
            t = int(header["n_timestamps"][0])
            m = int(header["n_metrics"][0])
            names, schema = resolve_schema(int(header["schema_idx"][0]))
            series = NodeSeries(
                int(header["job_id"][0]),
                int(header["component_id"][0]),
                np.array(self._timestamps[slot][:t]),
                np.array(self._values[slot][: t * m]).reshape(t, m),
                names,
                schema=schema,
            )
            out.append((int(header["seq"][0]), int(header["ctl_seq"][0]), series))
            self._ctrl[1] = tail + 1  # release the slot after the copy
        return out


class VerdictRing:
    """SPSC ring of fixed-size verdict records (worker -> coordinator)."""

    def __init__(self, spec: RingSpec, buf: memoryview):
        self.spec = spec
        self._ctrl = np.frombuffer(buf, dtype="<i8", count=_CTRL_WORDS)
        self._slots = np.frombuffer(
            buf, dtype=VERDICT_DTYPE, count=spec.verdict_slots,
            offset=_CTRL_WORDS * _I8,
        )

    @property
    def head(self) -> int:
        return int(self._ctrl[0])

    @property
    def tail(self) -> int:
        return int(self._ctrl[1])

    def __len__(self) -> int:
        return self.head - self.tail

    def try_push(self, record: np.void) -> bool:
        head = self.head
        if head - self.tail >= self.spec.verdict_slots:
            return False
        self._slots[head % self.spec.verdict_slots] = record
        self._ctrl[0] = head + 1
        return True

    def pop_all(self, max_records: int | None = None) -> np.ndarray:
        """Copy every pending verdict record out (oldest first)."""
        tail, head = self.tail, self.head
        n = head - tail
        if max_records is not None:
            n = min(n, max_records)
        if n <= 0:
            return np.empty(0, dtype=VERDICT_DTYPE)
        slots = self.spec.verdict_slots
        idx = np.arange(tail, tail + n) % slots
        out = self._slots[idx].copy()
        self._ctrl[1] = tail + n
        return out


class WorkerSegment:
    """One worker's shared-memory block: status + chunk ring + verdict ring.

    Created (and later unlinked) by the coordinator; the worker process
    inherits the mapped object through ``fork``.
    """

    def __init__(self, spec: RingSpec, shm: shared_memory.SharedMemory):
        self.spec = spec
        self._shm = shm
        self._build_views()

    def _build_views(self) -> None:
        buf = self._shm.buf
        spec = self.spec
        self.status = np.frombuffer(buf, dtype="<i8", count=STATUS_WORDS)
        chunk_off = spec.status_bytes
        self.chunks = ChunkRing(spec, buf[chunk_off : chunk_off + spec.chunk_ring_bytes])
        verdict_off = chunk_off + spec.chunk_ring_bytes
        self.verdicts = VerdictRing(
            spec, buf[verdict_off : verdict_off + spec.verdict_ring_bytes]
        )

    @classmethod
    def create(cls, spec: RingSpec) -> "WorkerSegment":
        shm = shared_memory.SharedMemory(create=True, size=spec.total_bytes)
        # Fresh segments are zero-filled on Linux, but never rely on it.
        np.frombuffer(shm.buf, dtype="<u1")[:] = 0
        return cls(spec, shm)

    @property
    def name(self) -> str:
        return self._shm.name

    def release_views(self) -> None:
        """Drop every numpy view so the mapping can be closed."""
        self.status = None
        self.chunks = None
        self.verdicts = None

    def close(self) -> None:
        """Unmap this process's view (views must be dropped first)."""
        self.release_views()
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - stray external view
            pass

    def unlink(self) -> None:
        """Destroy the backing segment (coordinator only, after close)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
