"""Prodigy reproduction: unsupervised VAE-based anomaly detection for HPC.

Reproduces Aksar et al., "Prodigy: Towards Unsupervised Anomaly Detection
in Production HPC Systems" (SC '23): the VAE detector, its deployment
pipeline (LDMS-style monitoring, DSOS-style storage, feature pipeline,
analytics service), the CoMTE explainability stage, all evaluation
baselines, and synthetic-substrate builders for every experiment in the
paper's evaluation section.

Quick start::

    from repro import ProdigyDetector, build_volta_dataset, train_test_split

    data = build_volta_dataset(scale=0.3, seed=0)
    train, test = train_test_split(data, 0.2, seed=0)
    ...

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.core.prodigy import ProdigyDetector
from repro.core.vae import VAE
from repro.eval.metrics import classification_report, f1_score_macro
from repro.eval.splits import cap_anomaly_ratio, train_test_split
from repro.experiments.datasets import build_eclipse_dataset, build_volta_dataset
from repro.explain.comte import BruteForceSearch, OptimizedSearch
from repro.features.extraction import FeatureExtractor
from repro.features.selection import ChiSquareSelector
from repro.models.base import AnomalyDetector
from repro.pipeline.datagenerator import DataGenerator
from repro.pipeline.datapipeline import DataPipeline
from repro.pipeline.detector_service import AnomalyDetectorService
from repro.pipeline.modeltrainer import ModelTrainer, load_detector
from repro.runtime import (
    ExecutionConfig,
    FeatureCache,
    ParallelExtractor,
    get_execution_config,
    get_instrumentation,
    set_execution_config,
)
from repro.telemetry.frame import NodeSeries, TelemetryFrame
from repro.telemetry.sampleset import SampleSet

__version__ = "1.0.0"

__all__ = [
    "AnomalyDetector",
    "AnomalyDetectorService",
    "BruteForceSearch",
    "ChiSquareSelector",
    "DataGenerator",
    "DataPipeline",
    "ExecutionConfig",
    "FeatureCache",
    "FeatureExtractor",
    "ModelTrainer",
    "ParallelExtractor",
    "NodeSeries",
    "OptimizedSearch",
    "ProdigyDetector",
    "SampleSet",
    "TelemetryFrame",
    "VAE",
    "__version__",
    "build_eclipse_dataset",
    "build_volta_dataset",
    "cap_anomaly_ratio",
    "classification_report",
    "f1_score_macro",
    "get_execution_config",
    "get_instrumentation",
    "load_detector",
    "set_execution_config",
    "train_test_split",
]
