"""Isolation Forest baseline, from scratch (paper Sec. 5.3).

Anomalies are isolated by fewer random splits.  Matching the paper's
configuration: 100 trees, ``max_samples=100``, contamination 10 % (the
assumed training anomaly ratio).  Scores follow Liu et al.:
``s(x) = 2^(-E[h(x)] / c(max_samples))`` where ``c(n)`` is the average
unsuccessful-search path length of a BST.

Trees are stored as flat arrays (feature/threshold/child indices) and
scoring walks all samples through a tree level-synchronously — vectorised
over samples, which is where the time goes.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import ThresholdDetector
from repro.util.rng import derive_seed, ensure_rng
from repro.util.validation import check_fitted

__all__ = ["IsolationForest", "average_path_length"]


def average_path_length(n: np.ndarray | float) -> np.ndarray | float:
    """``c(n)``: expected path length of an unsuccessful BST search."""
    n_arr = np.asarray(n, dtype=np.float64)
    out = np.zeros_like(n_arr)
    big = n_arr > 2
    two = n_arr == 2
    h = np.log(n_arr[big] - 1.0) + np.euler_gamma
    out[big] = 2.0 * h - 2.0 * (n_arr[big] - 1.0) / n_arr[big]
    out[two] = 1.0
    return out if out.ndim else float(out)


class _IsolationTree:
    """One isolation tree in flat-array form."""

    __slots__ = ("feature", "threshold", "left", "right", "node_size", "depth")

    def __init__(self, max_nodes: int):
        self.feature = np.full(max_nodes, -1, dtype=np.int64)  # -1 marks a leaf
        self.threshold = np.zeros(max_nodes)
        self.left = np.zeros(max_nodes, dtype=np.int64)
        self.right = np.zeros(max_nodes, dtype=np.int64)
        self.node_size = np.zeros(max_nodes, dtype=np.int64)
        self.depth = np.zeros(max_nodes, dtype=np.int64)

    @classmethod
    def build(cls, x: np.ndarray, max_depth: int, rng: np.random.Generator) -> "_IsolationTree":
        n = x.shape[0]
        tree = cls(max_nodes=2 * n + 1)
        next_free = [0]

        def grow(rows: np.ndarray, depth: int) -> int:
            node = next_free[0]
            next_free[0] += 1
            tree.node_size[node] = rows.size
            tree.depth[node] = depth
            if rows.size <= 1 or depth >= max_depth:
                return node
            sub = x[rows]
            spans = sub.max(axis=0) - sub.min(axis=0)
            candidates = np.flatnonzero(spans > 0)
            if candidates.size == 0:  # all duplicate points
                return node
            feat = int(rng.choice(candidates))
            lo, hi = sub[:, feat].min(), sub[:, feat].max()
            thr = float(rng.uniform(lo, hi))
            go_left = sub[:, feat] < thr
            tree.feature[node] = feat
            tree.threshold[node] = thr
            tree.left[node] = grow(rows[go_left], depth + 1)
            tree.right[node] = grow(rows[~go_left], depth + 1)
            return node

        grow(np.arange(n), 0)
        return tree

    def path_lengths(self, x: np.ndarray) -> np.ndarray:
        """Adjusted path length per sample, vectorised over samples."""
        n = x.shape[0]
        node = np.zeros(n, dtype=np.int64)
        active = self.feature[node] >= 0
        while active.any():
            idx = np.flatnonzero(active)
            cur = node[idx]
            feat = self.feature[cur]
            go_left = x[idx, feat] < self.threshold[cur]
            node[idx] = np.where(go_left, self.left[cur], self.right[cur])
            active[idx] = self.feature[node[idx]] >= 0
        # External-node adjustment: unresolved subtrees count as c(size).
        return self.depth[node] + average_path_length(self.node_size[node].astype(np.float64))


class IsolationForest(ThresholdDetector):
    """Ensemble of isolation trees with contamination-based thresholding."""

    name = "isolation_forest"

    def __init__(
        self,
        n_estimators: int = 100,
        max_samples: int = 100,
        *,
        contamination: float = 0.10,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        self.n_estimators = int(n_estimators)
        self.max_samples = int(max_samples)
        self.contamination = float(contamination)
        self._rng = ensure_rng(seed)
        self.trees_: list[_IsolationTree] | None = None
        self._c_norm: float | None = None

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "IsolationForest":
        """Train on the full (possibly contaminated) dataset; ``y`` unused.

        Unlike Prodigy/USAD, IF keeps anomalous samples in training (paper
        Sec. 5.4.4) — the contamination ratio is how it accounts for them.
        """
        x = self._check_input(x)
        n = x.shape[0]
        sample_size = min(self.max_samples, n)
        max_depth = int(np.ceil(np.log2(max(sample_size, 2))))
        self.trees_ = []
        for _ in range(self.n_estimators):
            rng = ensure_rng(derive_seed(self._rng))
            rows = rng.choice(n, size=sample_size, replace=False)
            self.trees_.append(_IsolationTree.build(x[rows], max_depth, rng))
        self._c_norm = float(average_path_length(float(sample_size)))
        scores = self.anomaly_score(x)
        self.threshold_ = float(np.quantile(scores, 1.0 - self.contamination))
        return self

    def anomaly_score(self, x: np.ndarray) -> np.ndarray:
        """Liu et al. anomaly score in (0, 1); higher = more isolated."""
        check_fitted(self, ["trees_", "_c_norm"])
        x = self._check_input(x)
        depths = np.zeros(x.shape[0])
        for tree in self.trees_:
            depths += tree.path_lengths(x)
        mean_depth = depths / len(self.trees_)
        return np.power(2.0, -mean_depth / self._c_norm)
