"""Heuristic baselines (paper Sec. 5.3).

*Random Prediction* draws uniform labels; *Majority Label Prediction*
always predicts the majority class of the labels it was fitted on — the
paper fits it on the test distribution as a floor any useful model must
beat (informative exactly because the two systems' test sets are imbalanced
in opposite directions).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import AnomalyDetector
from repro.util.rng import ensure_rng
from repro.util.validation import check_fitted, check_labels, check_matrix

__all__ = ["RandomPrediction", "MajorityLabelPrediction"]


class RandomPrediction(AnomalyDetector):
    """Uniform coin-flip predictions."""

    name = "random"

    def __init__(self, p_anomalous: float = 0.5, *, seed: int | np.random.Generator | None = None):
        if not 0.0 <= p_anomalous <= 1.0:
            raise ValueError("p_anomalous must be in [0,1]")
        self.p_anomalous = float(p_anomalous)
        self._rng = ensure_rng(seed)
        self.fitted_: bool | None = None

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "RandomPrediction":
        check_matrix(x, name="X")
        self.fitted_ = True
        return self

    def anomaly_score(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, ["fitted_"])
        x = check_matrix(x, name="X")
        return self._rng.random(x.shape[0])

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, ["fitted_"])
        x = check_matrix(x, name="X")
        return (self._rng.random(x.shape[0]) < self.p_anomalous).astype(np.int64)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        x = check_matrix(x, name="X")
        p = np.full(x.shape[0], self.p_anomalous)
        return np.column_stack([1.0 - p, p])


class MajorityLabelPrediction(AnomalyDetector):
    """Constant prediction of the majority class seen at fit time."""

    name = "majority"

    def __init__(self) -> None:
        self.majority_: int | None = None

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "MajorityLabelPrediction":
        if y is None:
            raise ValueError("MajorityLabelPrediction requires labels")
        y = check_labels(y)
        self.majority_ = int(np.bincount(y, minlength=2).argmax())
        return self

    def anomaly_score(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, ["majority_"])
        x = check_matrix(x, name="X")
        return np.full(x.shape[0], float(self.majority_))

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, ["majority_"])
        x = check_matrix(x, name="X")
        return np.full(x.shape[0], self.majority_, dtype=np.int64)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, ["majority_"])
        x = check_matrix(x, name="X")
        p = np.full(x.shape[0], float(self.majority_))
        return np.column_stack([1.0 - p, p])
