"""Common anomaly-detector interface.

All models — Prodigy's VAE, the deep and traditional baselines, and the
heuristics — implement the same contract so the evaluation harness and the
deployment pipeline treat them interchangeably:

* ``fit(X, y=None)``: train.  Unsupervised models ignore ``y``; models that
  use the contamination ratio (IF/LOF) may consume it.
* ``anomaly_score(X)``: continuous score, **higher = more anomalous**.
* ``predict(X)``: binary 0/1 labels.
* ``predict_proba(X)``: ``(N, 2)`` pseudo-probabilities — required by the
  CoMTE explainability stage, which expects a classifier-style interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.util.validation import check_fitted, check_matrix

__all__ = ["AnomalyDetector", "ThresholdDetector"]


class AnomalyDetector(ABC):
    """Base class for all detectors."""

    #: short identifier used in experiment tables
    name: str = "abstract"

    @abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "AnomalyDetector": ...

    @abstractmethod
    def anomaly_score(self, x: np.ndarray) -> np.ndarray:
        """Continuous anomaly score per sample (higher = more anomalous)."""

    @abstractmethod
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Binary predictions: 1 anomalous, 0 healthy."""

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """``(N, 2)`` columns ``[P(healthy), P(anomalous)]``.

        Default: squash the anomaly score through a logistic centred on the
        decision boundary, so probability 0.5 coincides with the predicted
        label flip.  Subclasses with natural probabilities override this.
        """
        scores = self.anomaly_score(x)
        boundary, scale = self._probability_calibration()
        p_anom = 1.0 / (1.0 + np.exp(-(scores - boundary) / scale))
        return np.column_stack([1.0 - p_anom, p_anom])

    def _probability_calibration(self) -> tuple[float, float]:
        """(boundary, scale) for the default logistic squash."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define a probability calibration"
        )


class ThresholdDetector(AnomalyDetector):
    """Detector that thresholds a continuous score (the dominant pattern).

    Subclasses implement ``fit`` (setting ``threshold_``) and
    ``anomaly_score``; prediction and probability calibration come for free.
    """

    def __init__(self) -> None:
        self.threshold_: float | None = None

    def predict(self, x: np.ndarray) -> np.ndarray:
        check_fitted(self, ["threshold_"])
        return (self.anomaly_score(x) > self.threshold_).astype(np.int64)

    def set_threshold(self, threshold: float) -> None:
        self.threshold_ = float(threshold)

    def _probability_calibration(self) -> tuple[float, float]:
        check_fitted(self, ["threshold_"])
        scale = max(abs(self.threshold_) * 0.25, 1e-6)
        return self.threshold_, scale

    @staticmethod
    def _check_input(x: np.ndarray) -> np.ndarray:
        return check_matrix(x, name="X")
