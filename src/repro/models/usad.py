"""USAD baseline (Audibert et al., KDD'20) — paper Sec. 5.3.

USAD trains one shared encoder E with two decoders D1, D2 in two phases per
epoch *n* (1-indexed):

* AE1 (= D1 o E) minimises  ``(1/n)·||x - w1||^2 + (1 - 1/n)·||x - w3||^2``
* AE2 (= D2 o E) minimises  ``(1/n)·||x - w2||^2 - (1 - 1/n)·||x - w3||^2``

with ``w1 = D1(E(x))``, ``w2 = D2(E(x))``, ``w3 = D2(E(w1))``: AE2 learns to
discriminate real data from AE1's reconstructions while AE1 learns to fool
it.  The anomaly score is ``alpha·||x - w1||^2 + beta·||x - w3||^2``.

Following the paper's adaptation (Sec. 5.4.4), inputs are extracted/selected
feature vectors rather than sliding windows.  Backprop with the shared
encoder appearing twice per path is handled by re-running forward passes to
restore layer caches before each backward segment; gradients accumulate
across paths exactly as an autograd graph would, and each phase updates only
its own parameter set (E+D1 or E+D2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.thresholds import f1_sweep_threshold, percentile_threshold
from repro.models.base import ThresholdDetector
from repro.nn.minibatch import MinibatchIterator
from repro.nn.network import Sequential, mlp
from repro.nn.optimizers import Adam
from repro.runtime.instrumentation import get_instrumentation
from repro.util.rng import derive_seed, ensure_rng
from repro.util.validation import check_fitted

__all__ = ["USAD"]


class USAD(ThresholdDetector):
    """Two-phase adversarial autoencoder anomaly detector.

    Parameters
    ----------
    hidden_size:
        Width of the single hidden layer (Table 3 sweeps 100/200/400; 200
        starred) shared by encoder and decoders.
    latent_dim:
        Bottleneck width.
    alpha, beta:
        Score mixture weights (alpha + beta = 1 in the original; the paper
        stars 0.5/0.5).
    validation_fraction, patience:
        Optional early stopping: hold out a fraction of the healthy
        training rows and stop once the mean anomaly score on the hold-out
        hasn't improved for *patience* consecutive epochs (best weights
        restored).  Both default off, which keeps the RNG stream — and
        therefore trained weights for a fixed seed — identical to the
        pre-fast-path trainer.
    """

    name = "usad"

    def __init__(
        self,
        hidden_size: int = 200,
        latent_dim: int = 32,
        *,
        alpha: float = 0.5,
        beta: float = 0.5,
        epochs: int = 100,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        threshold_percentile: float = 99.0,
        validation_fraction: float = 0.0,
        patience: int | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        if alpha < 0 or beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in [0,1)")
        if patience is not None and patience < 1:
            raise ValueError("patience must be >= 1")
        self.hidden_size = int(hidden_size)
        self.latent_dim = int(latent_dim)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.threshold_percentile = float(threshold_percentile)
        self.validation_fraction = float(validation_fraction)
        self.patience = patience
        self._rng = ensure_rng(seed)
        self.encoder_: Sequential | None = None
        self.decoder1_: Sequential | None = None
        self.decoder2_: Sequential | None = None

    # -- architecture -------------------------------------------------------

    def _build(self, input_dim: int) -> None:
        rng = self._rng
        self.encoder_ = mlp(
            [input_dim, self.hidden_size, self.latent_dim],
            hidden_activation="relu",
            output_activation="relu",
            seed=derive_seed(rng),
        )
        for attr in ("decoder1_", "decoder2_"):
            setattr(
                self,
                attr,
                mlp(
                    [self.latent_dim, self.hidden_size, input_dim],
                    hidden_activation="relu",
                    output_activation="sigmoid",
                    seed=derive_seed(rng),
                ),
            )

    @staticmethod
    def _mse(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        n = pred.shape[0]
        diff = pred - target
        return float(np.sum(diff**2) / n), 2.0 * diff / n

    def _params(self, *nets: Sequential) -> dict[str, np.ndarray]:
        out = {}
        for i, net in enumerate(nets):
            for k, v in net.named_params().items():
                out[f"net{i}.{k}"] = v
        return out

    def _grads(self, *nets: Sequential) -> dict[str, np.ndarray]:
        out = {}
        for i, net in enumerate(nets):
            for k, v in net.named_grads().items():
                out[f"net{i}.{k}"] = v
        return out

    # -- training ------------------------------------------------------------

    def _train_step(
        self,
        x: np.ndarray,
        epoch: int,
        opt1: Adam,
        opt2: Adam,
        phase_dicts: tuple[dict, dict, dict, dict] | None = None,
    ) -> tuple[float, float]:
        """One batch through both adversarial phases; returns (loss1, loss2).

        *phase_dicts* is the hoisted ``(params1, grads1, params2, grads2)``
        pairing built once per ``fit`` — the per-step dict rebuilds were
        measurable overhead.  The forward/backward passes stay on the
        unfused layers: the shared encoder's cross-wired multi-path
        backward re-reads intermediate activations after later forwards,
        which fused reusable buffers would have clobbered.
        """
        e, d1, d2 = self.encoder_, self.decoder1_, self.decoder2_
        if phase_dicts is None:
            phase_dicts = (
                self._params(e, d1), self._grads(e, d1),
                self._params(e, d2), self._grads(e, d2),
            )
        p1, g1, p2, g2 = phase_dicts
        inv_n = 1.0 / epoch
        rest = 1.0 - inv_n

        # ---- Phase 1: update E + D1 on loss1 ----
        for net in (e, d1, d2):
            net.zero_grads()
        z1 = e.forward(x)
        w1 = d1.forward(z1)
        z2 = e.forward(w1)  # encoder cache now holds the w1 pass
        w3 = d2.forward(z2)
        l_w1, g_w1 = self._mse(w1, x)
        l_w3, g_w3 = self._mse(w3, x)
        loss1 = inv_n * l_w1 + rest * l_w3
        # Backward path 2 first (caches are fresh for it): w3 -> D2 -> E -> w1.
        dz2 = d2.backward(rest * g_w3)
        dw1_from_path2 = e.backward(dz2)
        # Then path through D1 with the combined w1 gradient; restore E's
        # cache for the original input before its final backward.
        dz1 = d1.backward(inv_n * g_w1 + dw1_from_path2)
        e.forward(x)
        e.backward(dz1)
        opt1.step(p1, g1)

        # ---- Phase 2: update E + D2 on loss2 ----
        for net in (e, d1, d2):
            net.zero_grads()
        z1 = e.forward(x)
        w1 = d1.forward(z1)
        w2 = d2.forward(z1)  # note: D2 cache now holds z1
        l_w2, g_w2 = self._mse(w2, x)
        # Term 1 backward while caches match (D2 on z1, E on x).
        dz1_term1 = d2.backward(inv_n * g_w2)
        e.backward(dz1_term1)
        # Term 2 (adversarial, negative sign): recompute the w3 chain.
        z2 = e.forward(w1)
        w3 = d2.forward(z2)
        l_w3b, g_w3b = self._mse(w3, x)
        dz2 = d2.backward(-rest * g_w3b)
        dw1 = e.backward(dz2)
        dz1_term2 = d1.backward(dw1)
        e.forward(x)
        e.backward(dz1_term2)
        loss2 = inv_n * l_w2 - rest * l_w3b
        opt2.step(p2, g2)
        return loss1, loss2

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "USAD":
        """Train on healthy samples (anomalous rows dropped when labeled).

        Runs on the shared minibatch iterator with hoisted per-phase
        parameter/gradient dicts; with early stopping off (the default) the
        RNG stream and trained weights match the pre-fast-path loop
        bit-for-bit.
        """
        x = self._check_input(x)
        if y is not None:
            x = x[np.asarray(y) == 0]
            if x.shape[0] == 0:
                raise ValueError("no healthy samples to train on")
        x_val: np.ndarray | None = None
        if self.validation_fraction > 0.0:
            n_val = max(1, int(round(x.shape[0] * self.validation_fraction)))
            if n_val >= x.shape[0]:
                raise ValueError("validation_fraction leaves no training samples")
            perm = self._rng.permutation(x.shape[0])
            x_val = x[perm[:n_val]]
            x = np.ascontiguousarray(x[perm[n_val:]])
        self._build(x.shape[1])
        e, d1, d2 = self.encoder_, self.decoder1_, self.decoder2_
        phase_dicts = (
            self._params(e, d1), self._grads(e, d1),
            self._params(e, d2), self._grads(e, d2),
        )
        opt1 = Adam(self.learning_rate)
        opt2 = Adam(self.learning_rate)
        n = x.shape[0]
        batches = MinibatchIterator(x, self.batch_size, rng=self._rng)
        inst = get_instrumentation()
        best_val = np.inf
        best_params: dict[str, np.ndarray] | None = None
        stale = 0
        for epoch in range(1, self.epochs + 1):
            with inst.stage("train_epoch", items=n):
                for batch in batches.epoch():
                    self._train_step(batch, epoch, opt1, opt2, phase_dicts)
            if x_val is not None and self.patience is not None:
                val = float(np.mean(self.anomaly_score(x_val)))
                all_params = self._params(e, d1, d2)
                if val < best_val - 1e-9:
                    best_val = val
                    best_params = {k: v.copy() for k, v in all_params.items()}
                    stale = 0
                else:
                    stale += 1
                    if stale > self.patience:
                        break
        if best_params is not None:
            for name, value in self._params(e, d1, d2).items():
                value[...] = best_params[name]
        self.threshold_ = percentile_threshold(self.anomaly_score(x), self.threshold_percentile)
        return self

    # -- scoring ---------------------------------------------------------------

    def anomaly_score(self, x: np.ndarray) -> np.ndarray:
        """``alpha·||x-w1||² + beta·||x-w3||²`` (feature-mean per sample)."""
        check_fitted(self, ["encoder_", "decoder1_", "decoder2_"])
        x = self._check_input(x)
        z1 = self.encoder_.forward(x)
        w1 = self.decoder1_.forward(z1)
        w3 = self.decoder2_.forward(self.encoder_.forward(w1))
        s1 = np.mean((x - w1) ** 2, axis=1)
        s2 = np.mean((x - w3) ** 2, axis=1)
        return self.alpha * s1 + self.beta * s2

    def calibrate_threshold(
        self, scores_or_x: np.ndarray, labels: np.ndarray, *, step: float = 0.001
    ) -> float:
        """F1-sweep threshold calibration (same protocol as Prodigy)."""
        arr = np.asarray(scores_or_x, dtype=np.float64)
        scores = self.anomaly_score(arr) if arr.ndim == 2 else arr
        hi = max(float(scores.max()) * 1.05, 1.0)
        thr, _ = f1_sweep_threshold(scores, labels, lo=0.0, hi=hi, step=step)
        self.threshold_ = thr
        return thr
