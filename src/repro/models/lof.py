"""Local Outlier Factor baseline, from scratch (paper Sec. 5.3).

LOF compares each point's local reachability density (lrd) with that of its
k nearest neighbours; points in sparser neighbourhoods than their
neighbours score > 1.  This implementation runs in novelty mode (like
scikit-learn's ``novelty=True``): the reference density field comes from
the training set, and test points are scored against it — required because
the paper evaluates on a held-out test split.

Neighbour queries use :class:`scipy.spatial.cKDTree`; in the ~2000-feature
selected space a KD-tree degenerates towards brute force, which is still
fine at these sample counts.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.models.base import ThresholdDetector
from repro.util.validation import check_fitted

__all__ = ["LocalOutlierFactor"]


class LocalOutlierFactor(ThresholdDetector):
    """k-NN density-ratio anomaly detector with contamination thresholding."""

    name = "lof"

    def __init__(self, n_neighbors: int = 20, *, contamination: float = 0.10):
        super().__init__()
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        self.n_neighbors = int(n_neighbors)
        self.contamination = float(contamination)
        self._tree: cKDTree | None = None
        self._train_x: np.ndarray | None = None
        self._train_lrd: np.ndarray | None = None
        self._k_distance: np.ndarray | None = None

    # -- internals -------------------------------------------------------------

    def _neighbors_of_train(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """(distances, indices) of the k nearest *other* training points."""
        dist, idx = self._tree.query(self._train_x, k=k + 1)
        return dist[:, 1:], idx[:, 1:]  # drop self-match

    @property
    def _k(self) -> int:
        return getattr(self, "n_neighbors_", self.n_neighbors)

    @staticmethod
    def _lrd(dist: np.ndarray, k_dist_of_neighbors: np.ndarray) -> np.ndarray:
        """Local reachability density from reach-dist_k."""
        reach = np.maximum(dist, k_dist_of_neighbors)
        mean_reach = reach.mean(axis=1)
        # Duplicated points give zero reach distance -> infinite density;
        # cap like scikit-learn does via a small epsilon.
        return 1.0 / np.maximum(mean_reach, 1e-10)

    # -- API ----------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "LocalOutlierFactor":
        """Build the reference density field; ``y`` unused (contaminated fit).

        ``n_neighbors`` is clamped to ``n_samples - 1`` on small training
        sets (scikit-learn behaviour), so the requested value acts as an
        upper bound.
        """
        x = self._check_input(x)
        if x.shape[0] < 3:
            raise ValueError(f"need at least 3 training samples, got {x.shape[0]}")
        self.n_neighbors_ = min(self.n_neighbors, x.shape[0] - 1)
        self._train_x = x
        self._tree = cKDTree(x)
        dist, idx = self._neighbors_of_train(self._k)
        self._k_distance = dist[:, -1]
        self._train_lrd = self._lrd(dist, self._k_distance[idx])
        scores = self.anomaly_score(x, _self_exclude=True)
        self.threshold_ = float(np.quantile(scores, 1.0 - self.contamination))
        return self

    def anomaly_score(self, x: np.ndarray, *, _self_exclude: bool = False) -> np.ndarray:
        """LOF value: ratio of neighbour density to own density (>1 = outlier)."""
        check_fitted(self, ["_tree", "_train_lrd"])
        x = self._check_input(x)
        if _self_exclude:
            dist, idx = self._neighbors_of_train(self._k)
        else:
            dist, idx = self._tree.query(x, k=self._k)
            if self._k == 1:
                dist, idx = dist[:, None], idx[:, None]
        lrd_x = self._lrd(dist, self._k_distance[idx])
        return self._train_lrd[idx].mean(axis=1) / np.maximum(lrd_x, 1e-10)
