"""Plain (non-variational) autoencoder baseline.

The semi-supervised approach of Borghesi et al. [14] — cited by the paper
as the closest prior autoencoder work — trains a standard autoencoder on
normal system states and thresholds its reconstruction error.  Including
it lets the ablation benches quantify what the *variational* part of
Prodigy buys: the KL-regularised latent space versus a free one.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.thresholds import f1_sweep_threshold, percentile_threshold
from repro.models.base import ThresholdDetector
from repro.nn.fused import fuse, pack_parameters
from repro.nn.minibatch import MinibatchIterator
from repro.nn.network import Sequential, mlp
from repro.nn.optimizers import Adam
from repro.runtime.instrumentation import get_instrumentation
from repro.util.rng import derive_seed, ensure_rng
from repro.util.validation import check_fitted

__all__ = ["AutoencoderDetector"]


class AutoencoderDetector(ThresholdDetector):
    """Deterministic autoencoder with MAE-reconstruction anomaly scores.

    Mirrors :class:`~repro.core.ProdigyDetector`'s interface exactly so the
    two slot into the same experiment harness; the only differences are the
    deterministic bottleneck and the absence of the KL term.
    """

    name = "autoencoder"

    def __init__(
        self,
        hidden_dims: Sequence[int] = (128, 64),
        latent_dim: int = 16,
        *,
        epochs: int = 300,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        threshold_percentile: float = 99.0,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        self.hidden_dims = tuple(hidden_dims)
        self.latent_dim = int(latent_dim)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.threshold_percentile = float(threshold_percentile)
        self._rng = ensure_rng(seed)
        self.network_: Sequential | None = None

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "AutoencoderDetector":
        """Train on healthy samples (anomalous rows dropped when labeled)."""
        x = self._check_input(x)
        if y is not None:
            x = x[np.asarray(y) == 0]
            if x.shape[0] == 0:
                raise ValueError("no healthy samples to train on")
        widths = [x.shape[1], *self.hidden_dims, self.latent_dim,
                  *reversed(self.hidden_dims), x.shape[1]]
        self.network_ = mlp(
            widths, hidden_activation="relu", output_activation="sigmoid",
            seed=derive_seed(self._rng),
        )
        opt = Adam(self.learning_rate)
        n = x.shape[0]
        # Fast path: fused kernels over packed parameters, batches as views.
        fused = fuse(self.network_)
        flat_p, flat_g = pack_parameters(self.network_.layers)
        params, grads = {"packed": flat_p}, {"packed": flat_g}
        scratch: dict[int, np.ndarray] = {}
        batches = MinibatchIterator(x, self.batch_size, rng=self._rng)
        inst = get_instrumentation()
        for _ in range(self.epochs):
            with inst.stage("train_epoch", items=n):
                for batch in batches.epoch():
                    b = batch.shape[0]
                    out = fused.forward(batch)
                    diff = scratch.get(b)
                    if diff is None:
                        diff = scratch[b] = np.empty_like(batch)
                    np.subtract(out, batch, out=diff)
                    diff *= 2.0
                    diff /= b  # == 2.0 * (out - batch) / b
                    flat_g[...] = 0.0
                    fused.backward(diff)
                    opt.step(params, grads)
        errors = self.anomaly_score(x)
        self.threshold_ = percentile_threshold(errors, self.threshold_percentile)
        return self

    def anomaly_score(self, x: np.ndarray) -> np.ndarray:
        """Per-sample reconstruction mean absolute error."""
        check_fitted(self, ["network_"])
        x = self._check_input(x)
        return np.mean(np.abs(self.network_.forward(x) - x), axis=1)

    def calibrate_threshold(
        self, scores_or_x: np.ndarray, labels: np.ndarray, *, step: float = 0.001
    ) -> float:
        """F1-sweep threshold calibration (same protocol as Prodigy)."""
        arr = np.asarray(scores_or_x, dtype=np.float64)
        scores = self.anomaly_score(arr) if arr.ndim == 2 else arr
        hi = max(float(scores.max()) * 1.05, 1.0)
        thr, _ = f1_sweep_threshold(scores, labels, lo=0.0, hi=hi, step=step)
        self.threshold_ = thr
        return thr
