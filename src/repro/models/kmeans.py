"""K-means distance-based detector.

The paper discusses K-means clustering as the classic unsupervised
alternative and explains why it struggles on high-dimensional, non-
spherical telemetry features (Sec. 5.3) — LOF is used instead.  The
detector is provided anyway for the ablation benches that quantify that
argument: anomaly score = distance to the nearest centroid, thresholded by
the contamination ratio.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import ThresholdDetector
from repro.util.rng import ensure_rng
from repro.util.validation import check_fitted

__all__ = ["KMeansDetector", "kmeans_plus_plus"]


def kmeans_plus_plus(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = x.shape[0]
    centroids = np.empty((k, x.shape[1]))
    centroids[0] = x[rng.integers(n)]
    closest_sq = np.sum((x - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:  # all points coincide with chosen centroids
            centroids[i:] = centroids[0]
            break
        probs = closest_sq / total
        centroids[i] = x[rng.choice(n, p=probs)]
        closest_sq = np.minimum(closest_sq, np.sum((x - centroids[i]) ** 2, axis=1))
    return centroids


class KMeansDetector(ThresholdDetector):
    """Lloyd's algorithm + nearest-centroid-distance anomaly scores."""

    name = "kmeans"

    def __init__(
        self,
        n_clusters: int = 8,
        *,
        contamination: float = 0.10,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        self.n_clusters = int(n_clusters)
        self.contamination = float(contamination)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self._rng = ensure_rng(seed)
        self.centroids_: np.ndarray | None = None
        self.inertia_: float | None = None

    def fit(self, x: np.ndarray, y: np.ndarray | None = None) -> "KMeansDetector":
        x = self._check_input(x)
        k = min(self.n_clusters, x.shape[0])
        centroids = kmeans_plus_plus(x, k, self._rng)
        for _ in range(self.max_iter):
            # Squared distances via the expansion trick: one matmul.
            d2 = (
                np.sum(x**2, axis=1, keepdims=True)
                - 2.0 * x @ centroids.T
                + np.sum(centroids**2, axis=1)
            )
            assign = d2.argmin(axis=1)
            new_centroids = centroids.copy()
            for c in range(k):
                members = x[assign == c]
                if members.shape[0]:
                    new_centroids[c] = members.mean(axis=0)
            shift = float(np.max(np.abs(new_centroids - centroids)))
            centroids = new_centroids
            if shift < self.tol:
                break
        self.centroids_ = centroids
        dists = self._nearest_distance(x)
        self.inertia_ = float(np.sum(dists**2))
        self.threshold_ = float(np.quantile(dists, 1.0 - self.contamination))
        return self

    def _nearest_distance(self, x: np.ndarray) -> np.ndarray:
        d2 = (
            np.sum(x**2, axis=1, keepdims=True)
            - 2.0 * x @ self.centroids_.T
            + np.sum(self.centroids_**2, axis=1)
        )
        return np.sqrt(np.maximum(d2.min(axis=1), 0.0))

    def anomaly_score(self, x: np.ndarray) -> np.ndarray:
        """Euclidean distance to the nearest centroid."""
        check_fitted(self, ["centroids_"])
        return self._nearest_distance(self._check_input(x))
