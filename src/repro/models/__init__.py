"""Baseline detectors and the shared detector interface."""

from repro.models.autoencoder import AutoencoderDetector
from repro.models.base import AnomalyDetector, ThresholdDetector
from repro.models.heuristics import MajorityLabelPrediction, RandomPrediction
from repro.models.iforest import IsolationForest, average_path_length
from repro.models.kmeans import KMeansDetector, kmeans_plus_plus
from repro.models.lof import LocalOutlierFactor
from repro.models.usad import USAD

__all__ = [
    "AnomalyDetector",
    "AutoencoderDetector",
    "IsolationForest",
    "KMeansDetector",
    "LocalOutlierFactor",
    "MajorityLabelPrediction",
    "RandomPrediction",
    "ThresholdDetector",
    "USAD",
    "average_path_length",
    "kmeans_plus_plus",
]
