"""Substitution evaluators for CoMTE.

The search loops of :mod:`repro.explain.comte` need ``P(anomalous)`` for
hundreds of metric-substituted variants of one sample.  Two strategies:

* :class:`ClassifierEvaluator` — reference implementation: materialise the
  substituted series and run the full classifier.  O(M) feature extraction
  per candidate.
* :class:`FeatureSpaceEvaluator` — exploits that substituting metric *m*
  only changes the feature block of metric *m*: cache the sample's full
  feature row and each (distractor, metric) feature block once, then a
  candidate evaluation is a row patch + selection + scaling + one VAE
  forward.  Identical results for same-length series up to resampling
  round-off, at ~1/M the cost.

:class:`FeatureSpaceEvaluator` routes all extraction through the
pipeline's runtime engine, sharing its content-hash feature cache across
the full-row and per-metric-block paths — CoMTE's search re-evaluates the
same (series, metric) pairs constantly, which is exactly the access
pattern the cache memoises.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence

import numpy as np

from repro.explain.comte import SeriesClassifier, substitute_metrics
from repro.features.extraction import FeatureExtractor
from repro.runtime.parallel import ParallelExtractor
from repro.telemetry.frame import NodeSeries

__all__ = ["ClassifierEvaluator", "FeatureSpaceEvaluator"]


class ClassifierEvaluator:
    """Evaluate candidates by rebuilding the substituted series."""

    def __init__(self, classifier: SeriesClassifier):
        self.classifier = classifier

    def p_anomalous(
        self,
        sample: NodeSeries,
        distractor: NodeSeries | None,
        metrics: Sequence[str],
    ) -> float:
        series = sample
        if distractor is not None and metrics:
            series = substitute_metrics(sample, distractor, metrics)
        proba = np.asarray(self.classifier(series), dtype=np.float64).ravel()
        if proba.shape[0] != 2:
            raise ValueError("classifier must return [P(healthy), P(anomalous)]")
        return float(proba[1])


class FeatureSpaceEvaluator:
    """Incremental candidate evaluation in feature space.

    Parameters
    ----------
    pipeline:
        A fitted :class:`repro.pipeline.DataPipeline` (provides the
        extractor, selection, and scaler).
    detector:
        A fitted detector exposing ``predict_proba``.
    """

    def __init__(self, pipeline, detector):
        self.pipeline = pipeline
        self.detector = detector
        self.extractor: FeatureExtractor = pipeline.extractor
        self.engine: ParallelExtractor = getattr(pipeline, "engine", None) or ParallelExtractor(
            pipeline.extractor
        )
        self._sample_rows: dict[int, tuple[np.ndarray, tuple[str, ...]]] = {}
        self._block_cache: dict[tuple[int, str], np.ndarray] = {}
        self._metric_engines: dict[str, ParallelExtractor] = {}

    @property
    def candidate_metrics(self) -> tuple[str, ...] | None:
        """The metric subset this evaluator models (None = all of the sample)."""
        return self.extractor.metrics

    # -- caches ---------------------------------------------------------------

    def _full_row(self, series: NodeSeries) -> tuple[np.ndarray, tuple[str, ...]]:
        key = id(series)
        if key not in self._sample_rows:
            features, names = self.engine.extract_matrix([series])
            self._sample_rows[key] = (features[0], names)
        return self._sample_rows[key]

    def _metric_engine(self, metric: str) -> ParallelExtractor:
        """A single-metric engine sharing the main engine's feature cache.

        Per-metric blocks are tiny, so the pool would cost more than it
        saves — pin these engines to the serial path.
        """
        if metric not in self._metric_engines:
            self._metric_engines[metric] = ParallelExtractor(
                FeatureExtractor(
                    self.extractor.calculators,
                    resample_points=self.extractor.resample_points,
                    metrics=(metric,),
                ),
                config=replace(self.engine.config, n_workers=1),
                cache=self.engine.cache,
                instrumentation=self.engine.instrumentation,
            )
        return self._metric_engines[metric]

    def _metric_block(self, series: NodeSeries, metric: str) -> np.ndarray:
        key = (id(series), metric)
        if key not in self._block_cache:
            features, _ = self._metric_engine(metric).extract_matrix([series])
            self._block_cache[key] = features[0]
        return self._block_cache[key]

    # -- evaluation ---------------------------------------------------------------

    def p_anomalous(
        self,
        sample: NodeSeries,
        distractor: NodeSeries | None,
        metrics: Sequence[str],
    ) -> float:
        row, names = self._full_row(sample)
        if distractor is not None and metrics:
            row = row.copy()
            f_per = self.extractor.n_features_per_metric
            metric_order = (
                self.extractor.metrics
                if self.extractor.metrics is not None
                else sample.metric_names
            )
            pos = {m: i for i, m in enumerate(metric_order)}
            for metric in metrics:
                try:
                    m_idx = pos[metric]
                except KeyError:
                    raise KeyError(f"metric {metric!r} not in extraction layout") from None
                block = self._metric_block(distractor, metric)
                row[m_idx * f_per : (m_idx + 1) * f_per] = block
        scaled = self._select_scale(row[None, :], names)
        return float(self.detector.predict_proba(scaled)[0, 1])

    def _select_scale(self, features: np.ndarray, names: tuple[str, ...]) -> np.ndarray:
        pipe = self.pipeline
        pos = {n: i for i, n in enumerate(names)}
        idx = [pos[n] for n in pipe.selected_names_]
        return pipe.scaler_.transform(features[:, idx])

    def as_classifier(self) -> Callable[[NodeSeries], np.ndarray]:
        """Adapter matching the plain :data:`SeriesClassifier` signature."""

        def classify(series: NodeSeries) -> np.ndarray:
            p = self.p_anomalous(series, None, ())
            return np.array([1.0 - p, p])

        return classify
