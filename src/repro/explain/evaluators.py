"""Substitution evaluators for CoMTE.

The search loops of :mod:`repro.explain.comte` need ``P(anomalous)`` for
hundreds of metric-substituted variants of one sample.  Two strategies:

* :class:`ClassifierEvaluator` — reference implementation: materialise the
  substituted series and run the full classifier.  O(M) feature extraction
  per candidate.
* :class:`FeatureSpaceEvaluator` — exploits that substituting metric *m*
  only changes the feature block of metric *m*: cache the sample's and
  each distractor's full feature row once (per-metric kernels are
  row-independent, so a metric's block is just a slice of the full row),
  then a candidate evaluation is a row patch + selection + scaling + one
  VAE forward.  Identical results for same-length series up to resampling
  round-off, at ~1/M the cost.

Both evaluators also expose ``p_anomalous_batch``: the batched CoMTE
search hands a whole round of candidate metric sets here and gets all
probabilities from one classifier dispatch — one stacked
select/scale/``predict_proba`` for the feature-space path, one
``classify_batch`` call (when the classifier provides it) for the
series path.

:class:`FeatureSpaceEvaluator` routes all extraction through the
pipeline's runtime engine, sharing its content-hash feature cache —
CoMTE's search re-touches the same series constantly, which is exactly
the access pattern the cache memoises.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.explain.comte import SeriesClassifier, substitute_metrics
from repro.features.extraction import FeatureExtractor
from repro.runtime.parallel import ParallelExtractor
from repro.telemetry.frame import NodeSeries

__all__ = ["ClassifierEvaluator", "FeatureSpaceEvaluator"]


class ClassifierEvaluator:
    """Evaluate candidates by rebuilding the substituted series."""

    def __init__(self, classifier: SeriesClassifier):
        self.classifier = classifier

    def p_anomalous(
        self,
        sample: NodeSeries,
        distractor: NodeSeries | None,
        metrics: Sequence[str],
    ) -> float:
        series = sample
        if distractor is not None and metrics:
            series = substitute_metrics(sample, distractor, metrics)
        proba = np.asarray(self.classifier(series), dtype=np.float64).ravel()
        if proba.shape[0] != 2:
            raise ValueError("classifier must return [P(healthy), P(anomalous)]")
        return float(proba[1])

    def p_anomalous_batch(
        self,
        sample: NodeSeries,
        distractor: NodeSeries | None,
        metric_sets: Sequence[Sequence[str]],
    ) -> np.ndarray:
        """P(anomalous) for many substitution candidates against one distractor.

        Uses the classifier's ``classify_batch`` attribute (one dispatch over
        all materialised series) when present — e.g. the callable from
        :meth:`~repro.pipeline.detector_service.AnomalyDetectorService.as_series_classifier`
        — and falls back to a per-candidate loop otherwise.
        """
        metric_sets = list(metric_sets)
        if not metric_sets:
            return np.empty(0)
        batch_fn = getattr(self.classifier, "classify_batch", None)
        if batch_fn is None:
            return np.array(
                [self.p_anomalous(sample, distractor, m) for m in metric_sets]
            )
        series = [
            sample
            if distractor is None or not metrics
            else substitute_metrics(sample, distractor, metrics)
            for metrics in metric_sets
        ]
        proba = np.asarray(batch_fn(series), dtype=np.float64)
        if proba.ndim != 2 or proba.shape[1] != 2:
            raise ValueError("classify_batch must return an (n, 2) probability array")
        return proba[:, 1]


class FeatureSpaceEvaluator:
    """Incremental candidate evaluation in feature space.

    Parameters
    ----------
    pipeline:
        A fitted :class:`repro.pipeline.DataPipeline` (provides the
        extractor, selection, and scaler).
    detector:
        A fitted detector exposing ``predict_proba``.
    """

    def __init__(self, pipeline, detector):
        self.pipeline = pipeline
        self.detector = detector
        self.extractor: FeatureExtractor = pipeline.extractor
        self.engine: ParallelExtractor = getattr(pipeline, "engine", None) or ParallelExtractor(
            pipeline.extractor
        )
        self._sample_rows: dict[int, tuple[np.ndarray, tuple[str, ...]]] = {}

    @property
    def candidate_metrics(self) -> tuple[str, ...] | None:
        """The metric subset this evaluator models (None = all of the sample)."""
        return self.extractor.metrics

    # -- caches ---------------------------------------------------------------

    def _full_row(self, series: NodeSeries) -> tuple[np.ndarray, tuple[str, ...]]:
        key = id(series)
        if key not in self._sample_rows:
            features, names = self.engine.extract_matrix([series])
            self._sample_rows[key] = (features[0], names)
        return self._sample_rows[key]

    def _metric_block(self, series: NodeSeries, metric: str) -> np.ndarray:
        """Feature block of *metric* — a read-only view into the series' row.

        Per-metric feature kernels are row-independent, so a metric's block
        is exactly the corresponding slice of the full extracted row; one
        full-row dispatch per distractor replaces the old one-dispatch-per-
        (distractor, metric) path.
        """
        row, _ = self._full_row(series)
        f_per = self.extractor.n_features_per_metric
        metric_order = (
            self.extractor.metrics
            if self.extractor.metrics is not None
            else series.metric_names
        )
        pos = {m: i for i, m in enumerate(metric_order)}
        try:
            m_idx = pos[metric]
        except KeyError:
            raise KeyError(f"metric {metric!r} not in extraction layout") from None
        return row[m_idx * f_per : (m_idx + 1) * f_per]

    # -- evaluation ---------------------------------------------------------------

    def _patch_row(
        self,
        row: np.ndarray,
        sample: NodeSeries,
        distractor: NodeSeries,
        metrics: Sequence[str],
    ) -> None:
        """Overwrite *row*'s blocks for *metrics* with the distractor's."""
        f_per = self.extractor.n_features_per_metric
        metric_order = (
            self.extractor.metrics
            if self.extractor.metrics is not None
            else sample.metric_names
        )
        pos = {m: i for i, m in enumerate(metric_order)}
        for metric in metrics:
            try:
                m_idx = pos[metric]
            except KeyError:
                raise KeyError(f"metric {metric!r} not in extraction layout") from None
            row[m_idx * f_per : (m_idx + 1) * f_per] = self._metric_block(
                distractor, metric
            )

    def p_anomalous(
        self,
        sample: NodeSeries,
        distractor: NodeSeries | None,
        metrics: Sequence[str],
    ) -> float:
        row, names = self._full_row(sample)
        if distractor is not None and metrics:
            row = row.copy()
            self._patch_row(row, sample, distractor, metrics)
        scaled = self._select_scale(row[None, :], names)
        return float(self.detector.predict_proba(scaled)[0, 1])

    def p_anomalous_batch(
        self,
        sample: NodeSeries,
        distractor: NodeSeries | None,
        metric_sets: Sequence[Sequence[str]],
    ) -> np.ndarray:
        """P(anomalous) for many substitution candidates against one distractor.

        Builds all patched feature rows, then runs one stacked
        select/scale/``predict_proba`` — a whole CoMTE search round costs a
        single detector forward instead of one per candidate.
        """
        metric_sets = list(metric_sets)
        if not metric_sets:
            return np.empty(0)
        row, names = self._full_row(sample)
        rows = np.repeat(row[None, :], len(metric_sets), axis=0)
        for patched, metrics in zip(rows, metric_sets):
            if distractor is not None and metrics:
                self._patch_row(patched, sample, distractor, metrics)
        scaled = self._select_scale(rows, names)
        return np.asarray(self.detector.predict_proba(scaled)[:, 1], dtype=np.float64)

    def _select_scale(self, features: np.ndarray, names: tuple[str, ...]) -> np.ndarray:
        pipe = self.pipeline
        pos = {n: i for i, n in enumerate(names)}
        idx = [pos[n] for n in pipe.selected_names_]
        return pipe.scaler_.transform(features[:, idx])

    def as_classifier(self) -> Callable[[NodeSeries], np.ndarray]:
        """Adapter matching the plain :data:`SeriesClassifier` signature."""

        def classify(series: NodeSeries) -> np.ndarray:
            p = self.p_anomalous(series, None, ())
            return np.array([1.0 - p, p])

        return classify
