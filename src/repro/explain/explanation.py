"""Explanation result objects."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Counterfactual:
    """A CoMTE counterfactual explanation for one anomalous sample.

    Attributes
    ----------
    metrics:
        The minimal set of metric names that, when replaced with the
        distractor's series, flips the prediction to healthy.
    distractor_job_id, distractor_component_id:
        Provenance of the healthy training sample used as the distractor.
    p_anomalous_before, p_anomalous_after:
        Model probability of the anomalous class before and after the
        substitution.
    n_evaluations:
        Number of true (uncached) classifier evaluations the search spent.
    n_cached_evaluations:
        Candidate evaluations answered from the search's memo instead of
        the classifier — the work the evaluation cache saved.
    """

    metrics: tuple[str, ...]
    distractor_job_id: int
    distractor_component_id: int
    p_anomalous_before: float
    p_anomalous_after: float
    n_evaluations: int
    n_cached_evaluations: int = 0

    @property
    def flipped(self) -> bool:
        """Whether the substitution actually crossed the decision boundary."""
        return self.p_anomalous_after < 0.5

    def summary(self) -> str:
        status = "flips to healthy" if self.flipped else "best effort (no flip)"
        return (
            f"replace {list(self.metrics)} with distractor "
            f"(job {self.distractor_job_id}, node {self.distractor_component_id}): "
            f"P(anomalous) {self.p_anomalous_before:.3f} -> "
            f"{self.p_anomalous_after:.3f} [{status}]"
        )

    def evaluation_summary(self) -> str:
        """True-vs-cached evaluation counts, for search cost reporting."""
        return (
            f"{self.n_evaluations} classifier evaluations "
            f"({self.n_cached_evaluations} answered from cache)"
        )
