"""CoMTE: Counterfactual explanations for multivariate time series.

Reproduces Ates et al. (ICAPAI'21) as applied in the paper (Sec. 4.4): given
a sample classified anomalous, find (1) a *distractor* — a healthy training
sample — and (2) the minimal set of metrics to copy from the distractor so
the classifier flips the sample to healthy.  The returned metric set is the
explanation ("the sample would be healthy if MemFree behaved like this").

Two search strategies mirror the original implementation's classes:

* :class:`BruteForceSearch` — exhaustive over subsets of a candidate metric
  shortlist, smallest subsets first, so the result is minimal by
  construction.
* :class:`OptimizedSearch` — greedy forward selection by marginal
  probability improvement with a backward pruning pass; near-minimal at a
  fraction of the evaluations.

Two search cost controls apply to both strategies (both default on):

* ``memoize`` — identical ``(distractor, metric set)`` candidates are
  answered from a per-``explain`` memo instead of re-running the
  classifier; the single-metric ranking pass seeds the first greedy round
  and the brute-force singles level for free.  True-vs-cached counts are
  reported on the returned :class:`~repro.explain.explanation.Counterfactual`.
* ``batched`` — each search round's uncached candidates are evaluated
  through the evaluator's ``p_anomalous_batch`` in one classifier
  dispatch instead of one round trip per candidate.

Turning both off reproduces the per-candidate reference search (the
benchmark baseline).  The returned metric sets are identical in all
modes: batched rounds are scanned in the serial visit order with the same
strict-``<`` tie-breaks.

As in the paper's deployment (Sec. 5.4.4), threshold detectors are adapted
through ``predict_proba`` (the logistic calibration around the threshold)
since CoMTE needs classification probabilities.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Sequence

import numpy as np

from repro.explain.explanation import Counterfactual
from repro.runtime.instrumentation import get_instrumentation
from repro.telemetry.frame import NodeSeries

__all__ = ["BruteForceSearch", "OptimizedSearch", "substitute_metrics"]

#: classifier over raw node series -> [P(healthy), P(anomalous)]
SeriesClassifier = Callable[[NodeSeries], np.ndarray]


def substitute_metrics(
    sample: NodeSeries, distractor: NodeSeries, metrics: Sequence[str]
) -> NodeSeries:
    """Copy the named metric series from *distractor* into *sample*.

    Both series must share the metric layout; the distractor is resampled
    onto the sample's length if needed.
    """
    if distractor.metric_names != sample.metric_names:
        raise ValueError("sample and distractor must share metric names")
    if distractor.n_timestamps != sample.n_timestamps:
        distractor = distractor.resample(sample.n_timestamps)
    values = sample.values.copy()
    for name in metrics:
        j = sample.metric_index(name)
        values[:, j] = distractor.values[:, j]
    return sample.with_values(values)


class _SearchBase:
    """Shared distractor handling, memoisation, and evaluation accounting."""

    def __init__(
        self,
        classifier: "SeriesClassifier | object",
        distractors: Sequence[NodeSeries],
        *,
        max_metrics: int = 3,
        memoize: bool = True,
        batched: bool = True,
    ):
        if not distractors:
            raise ValueError("need at least one distractor (healthy training sample)")
        if max_metrics < 1:
            raise ValueError("max_metrics must be >= 1")
        if hasattr(classifier, "p_anomalous"):
            self.evaluator = classifier
        elif callable(classifier):
            # Local import: evaluators module depends on this one.
            from repro.explain.evaluators import ClassifierEvaluator

            self.evaluator = ClassifierEvaluator(classifier)
        else:
            raise TypeError(
                "classifier must be callable or expose p_anomalous(sample, distractor, metrics)"
            )
        self.distractors = list(distractors)
        self.max_metrics = max_metrics
        self.memoize = bool(memoize)
        self.batched = bool(batched)
        self._n_eval = 0
        self._n_cached = 0
        self._memo: dict[tuple, float] = {}
        self._aligned_cache: dict[tuple[int, int], NodeSeries] = {}

    # -- evaluation dispatch ----------------------------------------------------

    def explain(self, sample: NodeSeries) -> Counterfactual:
        """Counterfactual for *sample*, recorded under the ``explain`` stage."""
        with get_instrumentation().stage("explain", items=1):
            self._n_eval = 0
            self._n_cached = 0
            # The memo keys on object identity, which is only stable while
            # *sample* is alive — scope it to one search.
            self._memo.clear()
            return self._explain(sample)

    def _explain(self, sample: NodeSeries) -> Counterfactual:
        raise NotImplementedError

    @staticmethod
    def _memo_key(
        sample: NodeSeries, distractor: NodeSeries | None, metrics: tuple[str, ...]
    ) -> tuple:
        return (
            id(sample),
            None if distractor is None else id(distractor),
            frozenset(metrics),
        )

    def _p_sub(
        self, sample: NodeSeries, distractor: NodeSeries | None, metrics: Sequence[str]
    ) -> float:
        """P(anomalous) of *sample* with *metrics* replaced from *distractor*."""
        metrics = tuple(metrics)
        if self.memoize:
            key = self._memo_key(sample, distractor, metrics)
            hit = self._memo.get(key)
            if hit is not None:
                self._n_cached += 1
                return hit
        self._n_eval += 1
        p = float(self.evaluator.p_anomalous(sample, distractor, metrics))
        if self.memoize:
            self._memo[key] = p
        return p

    def _p_sub_many(
        self,
        sample: NodeSeries,
        distractor: NodeSeries | None,
        metric_sets: Sequence[Sequence[str]],
    ) -> list[float]:
        """P(anomalous) for a round of candidate metric sets, in order.

        Memo hits are answered in place; the uncached remainder goes through
        the evaluator's ``p_anomalous_batch`` in one dispatch when batching
        is on (and the evaluator supports it), else through a serial loop.
        """
        metric_sets = [tuple(m) for m in metric_sets]
        results: list[float | None] = [None] * len(metric_sets)
        todo: list[int] = []
        if self.memoize:
            for i, metrics in enumerate(metric_sets):
                hit = self._memo.get(self._memo_key(sample, distractor, metrics))
                if hit is not None:
                    self._n_cached += 1
                    results[i] = hit
                else:
                    todo.append(i)
        else:
            todo = list(range(len(metric_sets)))
        batch_fn = getattr(self.evaluator, "p_anomalous_batch", None)
        if todo and self.batched and batch_fn is not None:
            ps = batch_fn(sample, distractor, [metric_sets[i] for i in todo])
            self._n_eval += len(todo)
            for i, p in zip(todo, ps):
                p = float(p)
                results[i] = p
                if self.memoize:
                    self._memo[self._memo_key(sample, distractor, metric_sets[i])] = p
        else:
            for i in todo:
                self._n_eval += 1
                p = float(self.evaluator.p_anomalous(sample, distractor, metric_sets[i]))
                results[i] = p
                if self.memoize:
                    self._memo[self._memo_key(sample, distractor, metric_sets[i])] = p
        return results

    # -- distractor handling ----------------------------------------------------

    def _aligned(self, distractor: NodeSeries, n_timestamps: int) -> NodeSeries:
        """*distractor* resampled onto *n_timestamps*, cached per length.

        Distractors are reused across samples and search rounds; resampling
        each one on every ranking call was pure rework.  The cache holds a
        reference to the resampled copy, so its identity (and therefore the
        evaluators' id-keyed feature caches) stays stable for the search's
        lifetime.
        """
        if distractor.n_timestamps == n_timestamps:
            return distractor
        key = (id(distractor), n_timestamps)
        hit = self._aligned_cache.get(key)
        if hit is None:
            hit = self._aligned_cache[key] = distractor.resample(n_timestamps)
        return hit

    def _rank_distractors(self, sample: NodeSeries, top: int) -> list[NodeSeries]:
        """Order distractors by raw-series proximity to the sample.

        Proximity is measured per metric with scale normalisation so large-
        magnitude counters do not dominate; closer distractors need fewer
        substitutions to flip the label.
        """
        target = sample.values
        scale = np.maximum(np.abs(target).mean(axis=0), 1e-9)
        scored = []
        for d in self.distractors:
            dd = self._aligned(d, sample.n_timestamps)
            dist = float(np.mean(np.abs(dd.values - target) / scale))
            scored.append((dist, dd))
        scored.sort(key=lambda t: t[0])
        return [d for _, d in scored[:top]]

    def _candidate_metrics(self, sample: NodeSeries) -> tuple[str, ...]:
        """Metrics eligible for substitution.

        A feature-space evaluator may model only a metric subset (its
        extraction layout); only those metrics can influence the prediction.
        """
        layout = getattr(self.evaluator, "candidate_metrics", None)
        if layout:
            return tuple(m for m in layout if m in sample.metric_names)
        return sample.metric_names

    def _single_metric_gains(
        self, sample: NodeSeries, distractor: NodeSeries, base_p: float
    ) -> list[tuple[float, str]]:
        """Probability drop from substituting each metric alone, sorted."""
        names = self._candidate_metrics(sample)
        ps = self._p_sub_many(sample, distractor, [(name,) for name in names])
        gains = [(base_p - p, name) for p, name in zip(ps, names)]
        gains.sort(key=lambda t: -t[0])
        return gains

    def _result(
        self,
        metrics: Sequence[str],
        distractor: NodeSeries,
        p_before: float,
        p_after: float,
    ) -> Counterfactual:
        return Counterfactual(
            metrics=tuple(metrics),
            distractor_job_id=distractor.job_id,
            distractor_component_id=distractor.component_id,
            p_anomalous_before=p_before,
            p_anomalous_after=p_after,
            n_evaluations=self._n_eval,
            n_cached_evaluations=self._n_cached,
        )


class BruteForceSearch(_SearchBase):
    """Exhaustive minimal-subset search over a candidate shortlist.

    Full exhaustion over ~100 metrics is infeasible (the original CoMTE
    notes the same), so candidates are shortlisted to the
    ``shortlist_size`` metrics with the largest single-substitution
    probability drops, then all subsets of size 1..max_metrics are tried in
    ascending size — the first success is a minimal explanation within the
    shortlist.
    """

    def __init__(
        self,
        classifier: SeriesClassifier,
        distractors: Sequence[NodeSeries],
        *,
        max_metrics: int = 3,
        shortlist_size: int = 10,
        n_distractors: int = 3,
        memoize: bool = True,
        batched: bool = True,
    ):
        super().__init__(
            classifier, distractors,
            max_metrics=max_metrics, memoize=memoize, batched=batched,
        )
        self.shortlist_size = shortlist_size
        self.n_distractors = n_distractors

    def _explain(self, sample: NodeSeries) -> Counterfactual:
        p_before = self._p_sub(sample, None, ())
        best: tuple[float, Sequence[str], NodeSeries] | None = None
        for distractor in self._rank_distractors(sample, self.n_distractors):
            gains = self._single_metric_gains(sample, distractor, p_before)
            shortlist = [name for _, name in gains[: self.shortlist_size]]
            for size in range(1, self.max_metrics + 1):
                combos = list(combinations(shortlist, size))
                if self.batched:
                    # One dispatch per size level; scanning in combination
                    # order below still returns the same (minimal) first hit
                    # as the candidate-at-a-time search.
                    scored = zip(combos, self._p_sub_many(sample, distractor, combos))
                else:
                    # Lazy generator: preserves the reference search's early
                    # exit mid-level.
                    scored = (
                        (combo, self._p_sub(sample, distractor, combo))
                        for combo in combos
                    )
                for combo, p in scored:
                    if p < 0.5:
                        return self._result(combo, distractor, p_before, p)
                    if best is None or p < best[0]:
                        best = (p, combo, distractor)
        assert best is not None
        return self._result(best[1], best[2], p_before, best[0])


class OptimizedSearch(_SearchBase):
    """Greedy forward selection with backward pruning.

    For each of the closest distractors: repeatedly add the metric with the
    largest marginal drop in P(anomalous) until the label flips or
    ``max_metrics`` is reached, then drop any metric whose removal keeps
    the flip (ensuring a locally minimal set).
    """

    def __init__(
        self,
        classifier: SeriesClassifier,
        distractors: Sequence[NodeSeries],
        *,
        max_metrics: int = 5,
        n_distractors: int = 3,
        candidate_pool: int = 15,
        memoize: bool = True,
        batched: bool = True,
    ):
        super().__init__(
            classifier, distractors,
            max_metrics=max_metrics, memoize=memoize, batched=batched,
        )
        self.n_distractors = n_distractors
        self.candidate_pool = candidate_pool

    def _explain(self, sample: NodeSeries) -> Counterfactual:
        p_before = self._p_sub(sample, None, ())
        best: tuple[float, list[str], NodeSeries] | None = None
        for distractor in self._rank_distractors(sample, self.n_distractors):
            gains = self._single_metric_gains(sample, distractor, p_before)
            pool = [name for _, name in gains[: self.candidate_pool]]
            chosen: list[str] = []
            p_current = p_before
            while len(chosen) < self.max_metrics and p_current >= 0.5:
                candidates = [name for name in pool if name not in chosen]
                best_step: tuple[float, str] | None = None
                if candidates:
                    # One batched round; the in-order strict-< scan keeps the
                    # serial tie-break.  The first round is answered entirely
                    # from the single-metric ranking memo.
                    ps = self._p_sub_many(
                        sample, distractor, [(*chosen, name) for name in candidates]
                    )
                    for name, p in zip(candidates, ps):
                        if best_step is None or p < best_step[0]:
                            best_step = (p, name)
                if best_step is None or best_step[0] >= p_current - 1e-12:
                    # Greedy stalled. Non-submodular models (e.g. an OR over
                    # metrics) may need two substitutions before either
                    # helps: one pairwise lookahead over the top candidates.
                    pair = self._pair_lookahead(sample, distractor, pool, chosen, p_current)
                    if pair is None:
                        break
                    p_current, add = pair
                    chosen.extend(add)
                    continue
                p_current = best_step[0]
                chosen.append(best_step[1])
            if p_current < 0.5:
                chosen, p_current = self._prune(sample, distractor, chosen, p_current)
                return self._result(chosen, distractor, p_before, p_current)
            if chosen and (best is None or p_current < best[0]):
                best = (p_current, chosen, distractor)
        if best is None:
            # Nothing improved at all; report the empty-substitution state.
            return self._result((), self.distractors[0], p_before, p_before)
        return self._result(best[1], best[2], p_before, best[0])

    def _pair_lookahead(
        self,
        sample: NodeSeries,
        distractor: NodeSeries,
        pool: Sequence[str],
        chosen: list[str],
        p_current: float,
        *,
        top: int = 8,
    ) -> tuple[float, list[str]] | None:
        """Best improving pair of unchosen candidates, or None."""
        if len(chosen) + 2 > self.max_metrics:
            return None
        candidates = [m for m in pool if m not in chosen][:top]
        pairs = [(a, b) for i, a in enumerate(candidates) for b in candidates[i + 1 :]]
        best: tuple[float, list[str]] | None = None
        if pairs:
            ps = self._p_sub_many(
                sample, distractor, [(*chosen, a, b) for a, b in pairs]
            )
            for (a, b), p in zip(pairs, ps):
                if best is None or p < best[0]:
                    best = (p, [a, b])
        if best is None or best[0] >= p_current - 1e-12:
            return None
        return best

    def _prune(
        self,
        sample: NodeSeries,
        distractor: NodeSeries,
        chosen: list[str],
        p_current: float,
    ) -> tuple[list[str], float]:
        """Drop metrics whose removal keeps the counterfactual flipped.

        Inherently sequential (each trial depends on the surviving set), but
        the memo answers any trial the forward pass already evaluated.
        """
        kept = list(chosen)
        for name in list(chosen):
            if len(kept) == 1:
                break
            trial = [m for m in kept if m != name]
            p = self._p_sub(sample, distractor, trial)
            if p < 0.5:
                kept = trial
                p_current = p
        return kept, p_current
