"""CoMTE: Counterfactual explanations for multivariate time series.

Reproduces Ates et al. (ICAPAI'21) as applied in the paper (Sec. 4.4): given
a sample classified anomalous, find (1) a *distractor* — a healthy training
sample — and (2) the minimal set of metrics to copy from the distractor so
the classifier flips the sample to healthy.  The returned metric set is the
explanation ("the sample would be healthy if MemFree behaved like this").

Two search strategies mirror the original implementation's classes:

* :class:`BruteForceSearch` — exhaustive over subsets of a candidate metric
  shortlist, smallest subsets first, so the result is minimal by
  construction.
* :class:`OptimizedSearch` — greedy forward selection by marginal
  probability improvement with a backward pruning pass; near-minimal at a
  fraction of the evaluations.

As in the paper's deployment (Sec. 5.4.4), threshold detectors are adapted
through ``predict_proba`` (the logistic calibration around the threshold)
since CoMTE needs classification probabilities.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Sequence

import numpy as np

from repro.explain.explanation import Counterfactual
from repro.telemetry.frame import NodeSeries

__all__ = ["BruteForceSearch", "OptimizedSearch", "substitute_metrics"]

#: classifier over raw node series -> [P(healthy), P(anomalous)]
SeriesClassifier = Callable[[NodeSeries], np.ndarray]


def substitute_metrics(
    sample: NodeSeries, distractor: NodeSeries, metrics: Sequence[str]
) -> NodeSeries:
    """Copy the named metric series from *distractor* into *sample*.

    Both series must share the metric layout; the distractor is resampled
    onto the sample's length if needed.
    """
    if distractor.metric_names != sample.metric_names:
        raise ValueError("sample and distractor must share metric names")
    if distractor.n_timestamps != sample.n_timestamps:
        distractor = distractor.resample(sample.n_timestamps)
    values = sample.values.copy()
    for name in metrics:
        j = sample.metric_index(name)
        values[:, j] = distractor.values[:, j]
    return sample.with_values(values)


class _SearchBase:
    """Shared distractor handling and evaluation accounting."""

    def __init__(
        self,
        classifier: "SeriesClassifier | object",
        distractors: Sequence[NodeSeries],
        *,
        max_metrics: int = 3,
    ):
        if not distractors:
            raise ValueError("need at least one distractor (healthy training sample)")
        if max_metrics < 1:
            raise ValueError("max_metrics must be >= 1")
        if hasattr(classifier, "p_anomalous"):
            self.evaluator = classifier
        elif callable(classifier):
            # Local import: evaluators module depends on this one.
            from repro.explain.evaluators import ClassifierEvaluator

            self.evaluator = ClassifierEvaluator(classifier)
        else:
            raise TypeError(
                "classifier must be callable or expose p_anomalous(sample, distractor, metrics)"
            )
        self.distractors = list(distractors)
        self.max_metrics = max_metrics
        self._n_eval = 0

    def _p_sub(
        self, sample: NodeSeries, distractor: NodeSeries | None, metrics: Sequence[str]
    ) -> float:
        """P(anomalous) of *sample* with *metrics* replaced from *distractor*."""
        self._n_eval += 1
        return float(self.evaluator.p_anomalous(sample, distractor, tuple(metrics)))

    def _rank_distractors(self, sample: NodeSeries, top: int) -> list[NodeSeries]:
        """Order distractors by raw-series proximity to the sample.

        Proximity is measured per metric with scale normalisation so large-
        magnitude counters do not dominate; closer distractors need fewer
        substitutions to flip the label.
        """
        target = sample.values
        scale = np.maximum(np.abs(target).mean(axis=0), 1e-9)
        scored = []
        for d in self.distractors:
            dd = d if d.n_timestamps == sample.n_timestamps else d.resample(sample.n_timestamps)
            dist = float(np.mean(np.abs(dd.values - target) / scale))
            scored.append((dist, dd))
        scored.sort(key=lambda t: t[0])
        return [d for _, d in scored[:top]]

    def _candidate_metrics(self, sample: NodeSeries) -> tuple[str, ...]:
        """Metrics eligible for substitution.

        A feature-space evaluator may model only a metric subset (its
        extraction layout); only those metrics can influence the prediction.
        """
        layout = getattr(self.evaluator, "candidate_metrics", None)
        if layout:
            return tuple(m for m in layout if m in sample.metric_names)
        return sample.metric_names

    def _single_metric_gains(
        self, sample: NodeSeries, distractor: NodeSeries, base_p: float
    ) -> list[tuple[float, str]]:
        """Probability drop from substituting each metric alone, sorted."""
        gains = []
        for name in self._candidate_metrics(sample):
            p = self._p_sub(sample, distractor, [name])
            gains.append((base_p - p, name))
        gains.sort(key=lambda t: -t[0])
        return gains

    def _result(
        self,
        metrics: Sequence[str],
        distractor: NodeSeries,
        p_before: float,
        p_after: float,
    ) -> Counterfactual:
        return Counterfactual(
            metrics=tuple(metrics),
            distractor_job_id=distractor.job_id,
            distractor_component_id=distractor.component_id,
            p_anomalous_before=p_before,
            p_anomalous_after=p_after,
            n_evaluations=self._n_eval,
        )


class BruteForceSearch(_SearchBase):
    """Exhaustive minimal-subset search over a candidate shortlist.

    Full exhaustion over ~100 metrics is infeasible (the original CoMTE
    notes the same), so candidates are shortlisted to the
    ``shortlist_size`` metrics with the largest single-substitution
    probability drops, then all subsets of size 1..max_metrics are tried in
    ascending size — the first success is a minimal explanation within the
    shortlist.
    """

    def __init__(
        self,
        classifier: SeriesClassifier,
        distractors: Sequence[NodeSeries],
        *,
        max_metrics: int = 3,
        shortlist_size: int = 10,
        n_distractors: int = 3,
    ):
        super().__init__(classifier, distractors, max_metrics=max_metrics)
        self.shortlist_size = shortlist_size
        self.n_distractors = n_distractors

    def explain(self, sample: NodeSeries) -> Counterfactual:
        self._n_eval = 0
        p_before = self._p_sub(sample, None, ())
        best: tuple[float, Sequence[str], NodeSeries] | None = None
        for distractor in self._rank_distractors(sample, self.n_distractors):
            gains = self._single_metric_gains(sample, distractor, p_before)
            shortlist = [name for _, name in gains[: self.shortlist_size]]
            for size in range(1, self.max_metrics + 1):
                for combo in combinations(shortlist, size):
                    p = self._p_sub(sample, distractor, combo)
                    if p < 0.5:
                        return self._result(combo, distractor, p_before, p)
                    if best is None or p < best[0]:
                        best = (p, combo, distractor)
        assert best is not None
        return self._result(best[1], best[2], p_before, best[0])


class OptimizedSearch(_SearchBase):
    """Greedy forward selection with backward pruning.

    For each of the closest distractors: repeatedly add the metric with the
    largest marginal drop in P(anomalous) until the label flips or
    ``max_metrics`` is reached, then drop any metric whose removal keeps
    the flip (ensuring a locally minimal set).
    """

    def __init__(
        self,
        classifier: SeriesClassifier,
        distractors: Sequence[NodeSeries],
        *,
        max_metrics: int = 5,
        n_distractors: int = 3,
        candidate_pool: int = 15,
    ):
        super().__init__(classifier, distractors, max_metrics=max_metrics)
        self.n_distractors = n_distractors
        self.candidate_pool = candidate_pool

    def explain(self, sample: NodeSeries) -> Counterfactual:
        self._n_eval = 0
        p_before = self._p_sub(sample, None, ())
        best: tuple[float, list[str], NodeSeries] | None = None
        for distractor in self._rank_distractors(sample, self.n_distractors):
            gains = self._single_metric_gains(sample, distractor, p_before)
            pool = [name for _, name in gains[: self.candidate_pool]]
            chosen: list[str] = []
            p_current = p_before
            while len(chosen) < self.max_metrics and p_current >= 0.5:
                best_step: tuple[float, str] | None = None
                for name in pool:
                    if name in chosen:
                        continue
                    p = self._p_sub(sample, distractor, chosen + [name])
                    if best_step is None or p < best_step[0]:
                        best_step = (p, name)
                if best_step is None or best_step[0] >= p_current - 1e-12:
                    # Greedy stalled. Non-submodular models (e.g. an OR over
                    # metrics) may need two substitutions before either
                    # helps: one pairwise lookahead over the top candidates.
                    pair = self._pair_lookahead(sample, distractor, pool, chosen, p_current)
                    if pair is None:
                        break
                    p_current, add = pair
                    chosen.extend(add)
                    continue
                p_current = best_step[0]
                chosen.append(best_step[1])
            if p_current < 0.5:
                chosen, p_current = self._prune(sample, distractor, chosen, p_current)
                return self._result(chosen, distractor, p_before, p_current)
            if chosen and (best is None or p_current < best[0]):
                best = (p_current, chosen, distractor)
        if best is None:
            # Nothing improved at all; report the empty-substitution state.
            return self._result((), self.distractors[0], p_before, p_before)
        return self._result(best[1], best[2], p_before, best[0])

    def _pair_lookahead(
        self,
        sample: NodeSeries,
        distractor: NodeSeries,
        pool: Sequence[str],
        chosen: list[str],
        p_current: float,
        *,
        top: int = 8,
    ) -> tuple[float, list[str]] | None:
        """Best improving pair of unchosen candidates, or None."""
        if len(chosen) + 2 > self.max_metrics:
            return None
        candidates = [m for m in pool if m not in chosen][:top]
        best: tuple[float, list[str]] | None = None
        for i, a in enumerate(candidates):
            for b in candidates[i + 1 :]:
                p = self._p_sub(sample, distractor, chosen + [a, b])
                if best is None or p < best[0]:
                    best = (p, [a, b])
        if best is None or best[0] >= p_current - 1e-12:
            return None
        return best

    def _prune(
        self,
        sample: NodeSeries,
        distractor: NodeSeries,
        chosen: list[str],
        p_current: float,
    ) -> tuple[list[str], float]:
        """Drop metrics whose removal keeps the counterfactual flipped."""
        kept = list(chosen)
        for name in list(chosen):
            if len(kept) == 1:
                break
            trial = [m for m in kept if m != name]
            p = self._p_sub(sample, distractor, trial)
            if p < 0.5:
                kept = trial
                p_current = p
        return kept, p_current
