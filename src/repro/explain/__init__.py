"""CoMTE counterfactual explainability (paper Sec. 4.4)."""

from repro.explain.comte import BruteForceSearch, OptimizedSearch, substitute_metrics
from repro.explain.evaluators import ClassifierEvaluator, FeatureSpaceEvaluator
from repro.explain.explanation import Counterfactual

__all__ = [
    "BruteForceSearch",
    "ClassifierEvaluator",
    "Counterfactual",
    "FeatureSpaceEvaluator",
    "OptimizedSearch",
    "substitute_metrics",
]
