"""Raw-telemetry preprocessing (paper Sec. 4.2.1 / 5.4.1).

The DataGenerator applies these steps to every job before feature
extraction:

1. difference accumulated counters (procstat/vmstat event counts are
   monotone raw values; the relative change per time step is what matters),
2. linear interpolation of missing values lost during collection,
3. trimming the first/last 60 s (initialisation/termination transients),
4. aligning samplers on common timestamps.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.telemetry.frame import NodeSeries

__all__ = [
    "difference_counters",
    "interpolate_missing",
    "trim_edges",
    "align_common_timestamps",
    "standard_preprocess",
]


def difference_counters(series: NodeSeries, counter_metrics: Sequence[str]) -> NodeSeries:
    """Replace accumulating counter columns with per-step differences.

    The first row keeps a zero rate (there is no preceding sample), matching
    the convention of monitoring pipelines that emit rates.  Counter wraps or
    resets (negative deltas) are clamped to zero rather than propagated as
    huge negative rates.
    """
    if series.n_timestamps == 0:
        return series
    counter_set = set(counter_metrics)
    unknown = counter_set - set(series.metric_names)
    if unknown:
        raise KeyError(f"counter metrics not in series: {sorted(unknown)}")
    values = series.values.copy()
    idx = [i for i, n in enumerate(series.metric_names) if n in counter_set]
    if idx:
        block = values[:, idx]
        diff = np.empty_like(block)
        diff[0] = 0.0
        diff[1:] = np.diff(block, axis=0)
        np.maximum(diff, 0.0, out=diff)
        values[:, idx] = diff
    return series.with_values(values)


def interpolate_missing(series: NodeSeries) -> NodeSeries:
    """Fill NaN gaps per metric by linear interpolation (edges: hold nearest).

    LDMS samples can be dropped between node and aggregator; the paper fills
    the gaps with linear interpolation.  Columns that are entirely missing
    are filled with zeros so downstream maths stays finite.
    """
    values = series.values
    if not np.any(np.isnan(values)):
        return series
    values = values.copy()
    t = series.timestamps
    for j in range(values.shape[1]):
        col = values[:, j]
        bad = np.isnan(col)
        if not bad.any():
            continue
        good = ~bad
        if not good.any():
            col[:] = 0.0
            continue
        col[bad] = np.interp(t[bad], t[good], col[good])
    return series.with_values(values)


def trim_edges(series: NodeSeries, seconds: float = 60.0) -> NodeSeries:
    """Drop initialisation/termination transients (delegates to NodeSeries)."""
    return series.trim(seconds)


def align_common_timestamps(parts: Sequence[NodeSeries]) -> NodeSeries:
    """Join per-sampler series of the same node on shared sampling instants.

    Different ``ldmsd`` samplers drop different instants and record slightly
    jittered timestamps around the 1 Hz grid, so the join key is the
    *nominal* sampling second (the rounded timestamp), exactly like the
    paper's "find common timestamps across different samplers" step.  Only
    seconds present in every sampler survive; the joined series carries the
    nominal grid.  All parts must agree on job and component ids.
    """
    if not parts:
        raise ValueError("need at least one series")
    if len(parts) == 1:
        return parts[0]
    job, comp = parts[0].job_id, parts[0].component_id
    for p in parts[1:]:
        if (p.job_id, p.component_id) != (job, comp):
            raise ValueError("all parts must belong to the same (job, component)")

    def nominal(p: NodeSeries) -> tuple[np.ndarray, np.ndarray]:
        """(unique rounded seconds, row index of first sample per second)."""
        seconds = np.round(p.timestamps).astype(np.int64)
        uniq, first = np.unique(seconds, return_index=True)
        return uniq, first

    keys = [nominal(p) for p in parts]
    common = keys[0][0]
    for uniq, _ in keys[1:]:
        common = np.intersect1d(common, uniq, assume_unique=True)
    if common.size == 0:
        raise ValueError("samplers share no common timestamps")
    blocks, names = [], []
    for p, (uniq, first) in zip(parts, keys):
        rows = first[np.searchsorted(uniq, common)]
        blocks.append(p.values[rows])
        names.extend(p.metric_names)
    if len(set(names)) != len(names):
        raise ValueError("samplers must expose disjoint metric names")
    return NodeSeries(job, comp, common.astype(np.float64), np.hstack(blocks), tuple(names))


def standard_preprocess(
    series: NodeSeries,
    counter_metrics: Sequence[str],
    *,
    trim_seconds: float = 60.0,
) -> NodeSeries:
    """Apply the paper's full preprocessing chain to one node series."""
    out = interpolate_missing(series)
    out = difference_counters(out, counter_metrics)
    out = trim_edges(out, trim_seconds)
    return out
