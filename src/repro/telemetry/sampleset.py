"""Feature-level dataset container.

A *sample* in the paper is the ``1 x N features`` vector extracted from one
node's telemetry during one application run.  :class:`SampleSet` bundles the
feature matrix with labels and provenance (job, node, application, anomaly
type) and supports the split/filter operations the experiments need.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.util.persistence import load_arrays, save_arrays
from repro.util.validation import check_consistent_length, check_matrix

__all__ = ["SampleSet", "HEALTHY", "ANOMALOUS", "UNLABELED"]

HEALTHY = 0
ANOMALOUS = 1
UNLABELED = -1


class SampleSet:
    """N samples x F features with labels and provenance metadata.

    Parameters
    ----------
    features:
        ``(N, F)`` float matrix.
    feature_names:
        Length-``F`` names (``<calculator>|<metric>`` convention).
    labels:
        ``(N,)`` ints in {0 healthy, 1 anomalous, -1 unlabeled}.
    job_ids, component_ids:
        Provenance; default to ``-1`` when unknown.
    app_names, anomaly_names:
        Optional string provenance (application and injected anomaly).
    present:
        Optional ``(N, F)`` boolean mask from mixed-schema extraction —
        False cells are 0-filled placeholders for features the node's
        schema does not produce, not observations.  ``None`` (the
        homogeneous case) means every cell is an observation.
    """

    def __init__(
        self,
        features: np.ndarray,
        feature_names: Sequence[str],
        labels: np.ndarray | None = None,
        *,
        job_ids: np.ndarray | None = None,
        component_ids: np.ndarray | None = None,
        app_names: Sequence[str] | None = None,
        anomaly_names: Sequence[str] | None = None,
        present: np.ndarray | None = None,
    ):
        self.features = check_matrix(features, name="features", finite=True)
        n = self.features.shape[0]
        self.feature_names = tuple(feature_names)
        if len(self.feature_names) != self.features.shape[1]:
            raise ValueError(
                f"{len(self.feature_names)} feature names for "
                f"{self.features.shape[1]} feature columns"
            )
        if present is None:
            self.present = None
        else:
            self.present = np.asarray(present, dtype=bool)
            if self.present.shape != self.features.shape:
                raise ValueError(
                    f"present mask shape {self.present.shape} != "
                    f"features shape {self.features.shape}"
                )
        self.labels = (
            np.full(n, UNLABELED, dtype=np.int64)
            if labels is None
            else np.asarray(labels, dtype=np.int64)
        )
        bad = set(np.unique(self.labels)) - {HEALTHY, ANOMALOUS, UNLABELED}
        if bad:
            raise ValueError(f"labels must be in {{-1, 0, 1}}, got extra {sorted(bad)}")
        self.job_ids = (
            np.full(n, -1, dtype=np.int64) if job_ids is None else np.asarray(job_ids, dtype=np.int64)
        )
        self.component_ids = (
            np.full(n, -1, dtype=np.int64)
            if component_ids is None
            else np.asarray(component_ids, dtype=np.int64)
        )
        self.app_names = (
            np.full(n, "", dtype=object) if app_names is None else np.asarray(app_names, dtype=object)
        )
        self.anomaly_names = (
            np.full(n, "none", dtype=object)
            if anomaly_names is None
            else np.asarray(anomaly_names, dtype=object)
        )
        check_consistent_length(
            features=self.features,
            labels=self.labels,
            job_ids=self.job_ids,
            component_ids=self.component_ids,
            app_names=self.app_names,
            anomaly_names=self.anomaly_names,
        )

    # -- introspection ------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.features.shape[1])

    @property
    def n_healthy(self) -> int:
        return int(np.sum(self.labels == HEALTHY))

    @property
    def n_anomalous(self) -> int:
        return int(np.sum(self.labels == ANOMALOUS))

    @property
    def present_mask(self) -> np.ndarray:
        """The ``(N, F)`` presence mask, all-True when no mask is attached."""
        if self.present is None:
            return np.ones(self.features.shape, dtype=bool)
        return self.present

    @property
    def is_dense(self) -> bool:
        """True when every cell is an observation (homogeneous extraction)."""
        return self.present is None or bool(self.present.all())

    @property
    def anomaly_ratio(self) -> float:
        """Fraction of labeled samples that are anomalous."""
        labeled = self.labels != UNLABELED
        n_lab = int(np.sum(labeled))
        if n_lab == 0:
            return 0.0
        return float(np.sum(self.labels[labeled] == ANOMALOUS) / n_lab)

    def __len__(self) -> int:
        return self.n_samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SampleSet(n={self.n_samples}, features={self.n_features}, "
            f"healthy={self.n_healthy}, anomalous={self.n_anomalous})"
        )

    # -- slicing ------------------------------------------------------------

    def subset(self, index: np.ndarray) -> SampleSet:
        """Select rows by boolean mask or integer index array."""
        index = np.asarray(index)
        return SampleSet(
            self.features[index],
            self.feature_names,
            self.labels[index],
            job_ids=self.job_ids[index],
            component_ids=self.component_ids[index],
            app_names=self.app_names[index],
            anomaly_names=self.anomaly_names[index],
            present=None if self.present is None else self.present[index],
        )

    def healthy(self) -> SampleSet:
        return self.subset(self.labels == HEALTHY)

    def anomalous(self) -> SampleSet:
        return self.subset(self.labels == ANOMALOUS)

    def select_features(self, names: Sequence[str]) -> SampleSet:
        """Project onto the named feature columns (order preserved)."""
        pos = {n: i for i, n in enumerate(self.feature_names)}
        try:
            idx = [pos[n] for n in names]
        except KeyError as e:
            raise KeyError(f"unknown feature {e.args[0]!r}") from None
        return SampleSet(
            self.features[:, idx],
            tuple(names),
            self.labels,
            job_ids=self.job_ids,
            component_ids=self.component_ids,
            app_names=self.app_names,
            anomaly_names=self.anomaly_names,
            present=None if self.present is None else self.present[:, idx],
        )

    def with_features(
        self,
        features: np.ndarray,
        feature_names: Sequence[str],
        *,
        present: np.ndarray | None = None,
    ) -> SampleSet:
        """Return a copy with a replaced feature block (same rows).

        The presence mask does not survive a feature-block swap unless the
        caller passes the matching *present* explicitly — new columns have
        no defined relationship to the old mask.
        """
        return SampleSet(
            features,
            feature_names,
            self.labels,
            job_ids=self.job_ids,
            component_ids=self.component_ids,
            app_names=self.app_names,
            anomaly_names=self.anomaly_names,
            present=present,
        )

    @classmethod
    def concat(cls, sets: Sequence["SampleSet"]) -> SampleSet:
        if not sets:
            raise ValueError("need at least one SampleSet")
        names = sets[0].feature_names
        for s in sets[1:]:
            if s.feature_names != names:
                raise ValueError("all SampleSets must share feature names")
        present = None
        if any(s.present is not None for s in sets):
            present = np.vstack([s.present_mask for s in sets])
        return cls(
            np.vstack([s.features for s in sets]),
            names,
            np.concatenate([s.labels for s in sets]),
            job_ids=np.concatenate([s.job_ids for s in sets]),
            component_ids=np.concatenate([s.component_ids for s in sets]),
            app_names=np.concatenate([s.app_names for s in sets]),
            anomaly_names=np.concatenate([s.anomaly_names for s in sets]),
            present=present,
        )

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Persist to ``.npz`` (strings stored as fixed-width unicode)."""
        arrays = {
            "features": self.features,
            "feature_names": np.asarray(self.feature_names, dtype=np.str_),
            "labels": self.labels,
            "job_ids": self.job_ids,
            "component_ids": self.component_ids,
            "app_names": self.app_names.astype(np.str_),
            "anomaly_names": self.anomaly_names.astype(np.str_),
        }
        if self.present is not None:
            arrays["present"] = self.present
        return save_arrays(path, arrays)

    @classmethod
    def load(cls, path: str | Path) -> SampleSet:
        data = load_arrays(path)
        return cls(
            data["features"],
            [str(s) for s in data["feature_names"]],
            data["labels"],
            job_ids=data["job_ids"],
            component_ids=data["component_ids"],
            app_names=[str(s) for s in data["app_names"]],
            anomaly_names=[str(s) for s in data["anomaly_names"]],
            present=data.get("present"),
        )
