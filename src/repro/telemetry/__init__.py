"""Telemetry data structures and preprocessing."""

from repro.telemetry.frame import NodeSeries, TelemetryFrame
from repro.telemetry.io import frame_from_csv_string, frame_to_csv_string, read_csv, write_csv
from repro.telemetry.preprocessing import (
    align_common_timestamps,
    difference_counters,
    interpolate_missing,
    standard_preprocess,
    trim_edges,
)
from repro.telemetry.sampleset import ANOMALOUS, HEALTHY, UNLABELED, SampleSet

__all__ = [
    "ANOMALOUS",
    "HEALTHY",
    "NodeSeries",
    "SampleSet",
    "TelemetryFrame",
    "UNLABELED",
    "align_common_timestamps",
    "frame_from_csv_string",
    "frame_to_csv_string",
    "read_csv",
    "write_csv",
    "difference_counters",
    "interpolate_missing",
    "standard_preprocess",
    "trim_edges",
]
