"""Telemetry import/export.

Monitoring sites exchange LDMS extracts as CSV (one row per node-second,
index columns first).  These helpers round-trip :class:`TelemetryFrame`
through that format so external data can enter the pipeline and synthetic
campaigns can leave it for inspection.
"""

from __future__ import annotations

import csv
import io as _io
from pathlib import Path

import numpy as np

from repro.telemetry.frame import TelemetryFrame

__all__ = ["write_csv", "read_csv", "frame_to_csv_string", "frame_from_csv_string"]

_INDEX_COLUMNS = ("job_id", "component_id", "timestamp")


def frame_to_csv_string(frame: TelemetryFrame) -> str:
    """Serialise a frame as CSV text (index columns then metrics)."""
    buf = _io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([*_INDEX_COLUMNS, *frame.metric_names])
    for i in range(frame.n_rows):
        writer.writerow(
            [
                int(frame.job_id[i]),
                int(frame.component_id[i]),
                repr(float(frame.timestamp[i])),
                *(repr(float(v)) for v in frame.values[i]),
            ]
        )
    return buf.getvalue()


def frame_from_csv_string(text: str) -> TelemetryFrame:
    """Parse CSV text produced by :func:`frame_to_csv_string` (or compatible)."""
    reader = csv.reader(_io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty CSV") from None
    if tuple(header[:3]) != _INDEX_COLUMNS:
        raise ValueError(
            f"CSV must start with columns {_INDEX_COLUMNS}, got {header[:3]}"
        )
    metric_names = tuple(header[3:])
    if not metric_names:
        raise ValueError("CSV has no metric columns")
    jobs, comps, times, rows = [], [], [], []
    for lineno, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != 3 + len(metric_names):
            raise ValueError(f"line {lineno}: expected {3 + len(metric_names)} fields, got {len(row)}")
        jobs.append(int(row[0]))
        comps.append(int(row[1]))
        times.append(float(row[2]))
        rows.append([float(v) if v != "" else np.nan for v in row[3:]])
    if not rows:
        raise ValueError("CSV contains a header but no data rows")
    return TelemetryFrame(
        np.asarray(jobs, dtype=np.int64),
        np.asarray(comps, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
        np.asarray(rows, dtype=np.float64),
        metric_names,
    )


def write_csv(frame: TelemetryFrame, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(frame_to_csv_string(frame))
    return path


def read_csv(path: str | Path) -> TelemetryFrame:
    return frame_from_csv_string(Path(path).read_text())
