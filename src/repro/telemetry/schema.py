"""First-class metric schemas for heterogeneous telemetry.

Production fleets are not metric-homogeneous: omnistat-style GPU exporters
publish per-``card`` sub-entity metrics that only exist on accelerator
nodes, while every node carries the base ``meminfo``/``vmstat``/``procstat``
surface.  This module gives that variability a first-class description:

* :class:`MetricField` — one logical metric of one sampler: gauge or
  counter, with an optional sub-entity axis (``cardinality`` instances of
  ``entity``, e.g. 4 GPU ``card``\\ s).
* :class:`MetricSchema` — the ordered field list a node class emits, with
  the **canonical flatten rule** that keeps downstream numpy paths dense:
  a cardinality-1 field flattens to ``<metric>::<sampler>``, a sub-entity
  field to ``<metric>::<sampler>::<entity><i>`` (``card0``, ``card1``, ...).
  Schemas have a stable content :attr:`~MetricSchema.digest` used to group
  nodes during schema-partitioned feature extraction.
* :class:`SchemaRegistry` — lookup by name, digest, or flat column tuple,
  the piece the ingest layer uses to recognise which node class a frame
  belongs to.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "GAUGE",
    "COUNTER",
    "MetricField",
    "MetricSchema",
    "SchemaRegistry",
    "flatten_names",
    "names_digest",
]

GAUGE = "gauge"
COUNTER = "counter"


def flatten_names(
    name: str, sampler: str, *, cardinality: int = 1, entity: str | None = None
) -> tuple[str, ...]:
    """Canonical flat column names of one logical metric.

    ``cardinality == 1`` keeps the LDMS-style ``<metric>::<sampler>`` form
    unchanged; sub-entity metrics append the entity axis per instance
    (``GPU_UTIL::gpu::card0``).
    """
    if cardinality < 1:
        raise ValueError(f"cardinality must be >= 1, got {cardinality}")
    if cardinality == 1 and entity is None:
        return (f"{name}::{sampler}",)
    if entity is None:
        raise ValueError(f"{name}: cardinality {cardinality} needs an entity axis")
    return tuple(f"{name}::{sampler}::{entity}{i}" for i in range(cardinality))


def names_digest(metric_names: Sequence[str]) -> str:
    """Stable content digest of a flat column tuple.

    Series that carry no schema object still need a grouping key during
    schema-partitioned extraction; the digest of their column names is, by
    construction, equal to the digest of the schema that produced them.
    """
    h = hashlib.blake2b(digest_size=12)
    for n in metric_names:
        h.update(n.encode())
        h.update(b"\x00")
    return h.hexdigest()


@dataclass(frozen=True)
class MetricField:
    """One logical metric of one sampler within a schema."""

    name: str
    sampler: str
    kind: str = GAUGE
    cardinality: int = 1
    entity: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in (GAUGE, COUNTER):
            raise ValueError(f"kind must be gauge|counter, got {self.kind!r}")
        if self.cardinality < 1:
            raise ValueError(f"{self.name}: cardinality must be >= 1")
        if self.cardinality > 1 and self.entity is None:
            raise ValueError(f"{self.name}: cardinality > 1 requires an entity axis")

    @property
    def flat_names(self) -> tuple[str, ...]:
        """Flat column names under the canonical flatten rule."""
        return flatten_names(
            self.name, self.sampler, cardinality=self.cardinality, entity=self.entity
        )


class MetricSchema:
    """Ordered metric surface of one node class, with flatten + digest."""

    def __init__(self, name: str, fields: Iterable[MetricField]):
        self.name = name
        self.fields = tuple(fields)
        if not self.fields:
            raise ValueError(f"schema {name!r} needs at least one field")
        flat: list[str] = []
        by_flat: dict[str, MetricField] = {}
        for f in self.fields:
            for col in f.flat_names:
                if col in by_flat:
                    raise ValueError(f"schema {name!r}: duplicate column {col!r}")
                by_flat[col] = f
                flat.append(col)
        self._flat = tuple(flat)
        self._by_flat = by_flat

    # -- columns -------------------------------------------------------------

    @property
    def flat_metric_names(self) -> tuple[str, ...]:
        """All columns in field order, sub-entities expanded in place."""
        return self._flat

    @property
    def n_columns(self) -> int:
        return len(self._flat)

    @property
    def counter_names(self) -> tuple[str, ...]:
        return tuple(c for c in self._flat if self._by_flat[c].kind == COUNTER)

    @property
    def gauge_names(self) -> tuple[str, ...]:
        return tuple(c for c in self._flat if self._by_flat[c].kind == GAUGE)

    def field_of(self, flat_name: str) -> MetricField:
        try:
            return self._by_flat[flat_name]
        except KeyError:
            raise KeyError(f"schema {self.name!r} has no column {flat_name!r}") from None

    def samplers(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for f in self.fields:
            seen.setdefault(f.sampler, None)
        return tuple(seen)

    def sampler_metrics(self, sampler: str) -> tuple[str, ...]:
        names = tuple(c for c in self._flat if self._by_flat[c].sampler == sampler)
        if not names:
            raise KeyError(f"schema {self.name!r} has no sampler {sampler!r}")
        return names

    # -- identity ------------------------------------------------------------

    @property
    def digest(self) -> str:
        """Content digest of the flat column layout (grouping key).

        Deliberately independent of the schema *name*: two node classes
        exposing identical columns extract identically and must land in the
        same partition.
        """
        return names_digest(self._flat)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricSchema):
            return NotImplemented
        return self.name == other.name and self.fields == other.fields

    def __hash__(self) -> int:
        return hash((self.name, self.fields))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricSchema({self.name!r}, fields={len(self.fields)}, "
            f"columns={self.n_columns}, digest={self.digest[:8]})"
        )


class SchemaRegistry:
    """Registered schemas, addressable by name, digest, or column tuple."""

    def __init__(self) -> None:
        self._by_name: dict[str, MetricSchema] = {}
        self._by_digest: dict[str, MetricSchema] = {}

    def register(self, schema: MetricSchema) -> MetricSchema:
        existing = self._by_name.get(schema.name)
        if existing is not None and existing.digest != schema.digest:
            raise ValueError(
                f"schema {schema.name!r} already registered with a different layout"
            )
        self._by_name[schema.name] = schema
        self._by_digest[schema.digest] = schema
        return schema

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._by_name)

    def get(self, name: str) -> MetricSchema:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown schema {name!r}; registered: {sorted(self._by_name)}"
            ) from None

    def by_digest(self, digest: str) -> MetricSchema | None:
        return self._by_digest.get(digest)

    def for_metric_names(self, metric_names: Sequence[str]) -> MetricSchema | None:
        """The registered schema whose flat layout matches *metric_names*."""
        return self._by_digest.get(names_digest(metric_names))
