"""Columnar telemetry containers.

LDMS-style telemetry is long-format: one row per (job, node, second) carrying
all sampled metrics.  :class:`TelemetryFrame` stores that table as contiguous
NumPy arrays (a lightweight stand-in for the pandas DataFrames the paper's
DataGenerator produces, with the same three index columns ``job_id``,
``component_id``, ``timestamp``).  :class:`NodeSeries` is the per-node slice —
the ``Time x M metrics`` matrix the paper's feature extractor consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from repro.util.validation import check_array

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.telemetry.schema import MetricSchema

__all__ = ["TelemetryFrame", "NodeSeries"]


@dataclass(frozen=True)
class NodeSeries:
    """Telemetry of one compute node during one application run.

    Attributes
    ----------
    job_id, component_id:
        Identify the run and the node within it.
    timestamps:
        ``(T,)`` seconds, strictly increasing.
    values:
        ``(T, M)`` metric matrix; column ``j`` is ``metric_names[j]``.
    metric_names:
        Names in ``<metric>::<sampler>`` form (e.g. ``MemFree::meminfo``),
        per-card sub-entities flattened as ``<metric>::<sampler>::card0``.
    schema:
        Optional :class:`~repro.telemetry.schema.MetricSchema` reference
        describing the columns; heterogeneous-fleet code groups series by
        its digest.  Column-preserving transforms propagate it.
    """

    job_id: int
    component_id: int
    timestamps: np.ndarray
    values: np.ndarray
    metric_names: tuple[str, ...]
    schema: "MetricSchema | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        ts = np.asarray(self.timestamps, dtype=np.float64)
        vals = np.asarray(self.values, dtype=np.float64)
        if ts.ndim != 1:
            raise ValueError(f"timestamps must be 1-D, got shape {ts.shape}")
        if vals.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {vals.shape}")
        if vals.shape[0] != ts.shape[0]:
            raise ValueError(
                f"values has {vals.shape[0]} rows but there are {ts.shape[0]} timestamps"
            )
        if vals.shape[1] != len(self.metric_names):
            raise ValueError(
                f"values has {vals.shape[1]} columns but {len(self.metric_names)} metric names"
            )
        if ts.size > 1 and np.any(np.diff(ts) <= 0):
            raise ValueError("timestamps must be strictly increasing")
        object.__setattr__(self, "timestamps", ts)
        object.__setattr__(self, "values", vals)
        object.__setattr__(self, "metric_names", tuple(self.metric_names))
        if self.schema is not None and self.schema.flat_metric_names != self.metric_names:
            raise ValueError(
                f"schema {self.schema.name!r} describes "
                f"{len(self.schema.flat_metric_names)} columns that do not match "
                f"the series metric names"
            )

    # -- introspection ------------------------------------------------------

    @property
    def n_timestamps(self) -> int:
        return int(self.timestamps.shape[0])

    @property
    def n_metrics(self) -> int:
        return int(self.values.shape[1])

    @property
    def duration(self) -> float:
        """Wall-clock span of the series in seconds (0 for single samples)."""
        if self.n_timestamps < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def metric_index(self, name: str) -> int:
        try:
            return self.metric_names.index(name)
        except ValueError:
            raise KeyError(f"unknown metric {name!r}") from None

    def metric(self, name: str) -> np.ndarray:
        """Return the ``(T,)`` series of one metric."""
        return self.values[:, self.metric_index(name)]

    @property
    def schema_digest(self) -> str:
        """Grouping key for schema-partitioned extraction.

        The schema's digest when one is attached, else the digest of the
        flat column names — identical by construction for series produced
        from that schema.
        """
        from repro.telemetry.schema import names_digest

        if self.schema is not None:
            return self.schema.digest
        return names_digest(self.metric_names)

    # -- transformations ----------------------------------------------------

    def with_values(self, values: np.ndarray) -> NodeSeries:
        """Return a copy carrying *values* (same shape contract)."""
        return NodeSeries(
            self.job_id, self.component_id, self.timestamps, values,
            self.metric_names, schema=self.schema,
        )

    def trim(self, seconds: float) -> NodeSeries:
        """Drop the first and last *seconds* of the run.

        The paper removes 60 s from each end to discard initialisation and
        termination transients (Sec. 5.4.1).  If the run is too short to trim,
        the series is returned unchanged.
        """
        if seconds <= 0 or self.n_timestamps == 0:
            return self
        t0, t1 = self.timestamps[0] + seconds, self.timestamps[-1] - seconds
        mask = (self.timestamps >= t0) & (self.timestamps <= t1)
        if not np.any(mask):
            return self
        return NodeSeries(
            self.job_id, self.component_id, self.timestamps[mask], self.values[mask],
            self.metric_names, schema=self.schema,
        )

    def resample(self, n_points: int) -> NodeSeries:
        """Linearly interpolate onto a uniform grid of *n_points* samples.

        Fixed-length series let the feature extractor batch all samples of a
        dataset into one ``(N, T)`` array per metric — the vectorisation that
        keeps extraction tractable without compiled code.
        """
        if n_points < 2:
            raise ValueError(f"n_points must be >= 2, got {n_points}")
        if self.n_timestamps < 2:
            raise ValueError("cannot resample a series with fewer than 2 samples")
        ts = self.timestamps
        grid = np.linspace(ts[0], ts[-1], n_points)
        # All metrics interpolate in one shot instead of one np.interp call
        # per column.  The arithmetic mirrors np.interp exactly — same
        # interval search, same slope formula, exact-hit and right-endpoint
        # short circuits — so results stay bit-identical to the loop.
        idx = np.searchsorted(ts, grid, side="right") - 1
        idx = np.clip(idx, 0, ts.size - 2)
        x_lo = ts[idx]
        y_lo = self.values[idx]
        with np.errstate(invalid="ignore", divide="ignore"):
            slope = (self.values[idx + 1] - y_lo) / (ts[idx + 1] - x_lo)[:, None]
            out = slope * (grid - x_lo)[:, None] + y_lo
        out = np.where((grid == x_lo)[:, None], y_lo, out)
        out[-1] = self.values[-1]
        return NodeSeries(
            self.job_id, self.component_id, grid, out, self.metric_names, schema=self.schema
        )

    def select_metrics(self, names: Sequence[str]) -> NodeSeries:
        idx = [self.metric_index(n) for n in names]
        return NodeSeries(
            self.job_id, self.component_id, self.timestamps, self.values[:, idx], tuple(names)
        )


class TelemetryFrame:
    """Long-format telemetry table with (job_id, component_id, timestamp) index.

    Rows need not be sorted; per-node extraction sorts on demand.  All metric
    columns share a single ``(N, M)`` float64 block for cache-friendly access.
    """

    def __init__(
        self,
        job_id: np.ndarray,
        component_id: np.ndarray,
        timestamp: np.ndarray,
        values: np.ndarray,
        metric_names: Sequence[str],
    ):
        self.job_id = np.asarray(job_id, dtype=np.int64)
        self.component_id = np.asarray(component_id, dtype=np.int64)
        self.timestamp = np.asarray(timestamp, dtype=np.float64)
        self.values = check_array(values, name="values", ndim=2, allow_empty=True, finite=False)
        self.metric_names = tuple(metric_names)
        n = self.job_id.shape[0]
        if not (self.component_id.shape[0] == self.timestamp.shape[0] == self.values.shape[0] == n):
            raise ValueError("index columns and values must have equal length")
        if self.values.shape[1] != len(self.metric_names):
            raise ValueError(
                f"values has {self.values.shape[1]} columns but "
                f"{len(self.metric_names)} metric names"
            )
        if len(set(self.metric_names)) != len(self.metric_names):
            raise ValueError("metric names must be unique")

    # -- construction -------------------------------------------------------

    @classmethod
    def from_node_series(cls, series: Iterable[NodeSeries]) -> TelemetryFrame:
        """Stack per-node series into one long-format frame."""
        series = list(series)
        if not series:
            raise ValueError("need at least one NodeSeries")
        names = series[0].metric_names
        for s in series[1:]:
            if s.metric_names != names:
                raise ValueError("all NodeSeries must share the same metric names")
        job = np.concatenate([np.full(s.n_timestamps, s.job_id, dtype=np.int64) for s in series])
        comp = np.concatenate(
            [np.full(s.n_timestamps, s.component_id, dtype=np.int64) for s in series]
        )
        ts = np.concatenate([s.timestamps for s in series])
        vals = np.vstack([s.values for s in series])
        return cls(job, comp, ts, vals, names)

    @classmethod
    def concat(cls, frames: Sequence["TelemetryFrame"]) -> TelemetryFrame:
        if not frames:
            raise ValueError("need at least one frame")
        names = frames[0].metric_names
        for f in frames[1:]:
            if f.metric_names != names:
                raise ValueError("all frames must share the same metric names")
        return cls(
            np.concatenate([f.job_id for f in frames]),
            np.concatenate([f.component_id for f in frames]),
            np.concatenate([f.timestamp for f in frames]),
            np.vstack([f.values for f in frames]),
            names,
        )

    # -- introspection ------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return int(self.job_id.shape[0])

    @property
    def n_metrics(self) -> int:
        return len(self.metric_names)

    def jobs(self) -> np.ndarray:
        """Sorted unique job ids present in the frame."""
        return np.unique(self.job_id)

    def components(self, job_id: int) -> np.ndarray:
        """Sorted unique component (node) ids participating in *job_id*."""
        return np.unique(self.component_id[self.job_id == job_id])

    def metric_index(self, name: str) -> int:
        try:
            return self.metric_names.index(name)
        except ValueError:
            raise KeyError(f"unknown metric {name!r}") from None

    def column(self, name: str) -> np.ndarray:
        return self.values[:, self.metric_index(name)]

    # -- slicing ------------------------------------------------------------

    def select(self, *, job_id: int | None = None, component_id: int | None = None) -> TelemetryFrame:
        """Filter rows by job and/or component id."""
        mask = np.ones(self.n_rows, dtype=bool)
        if job_id is not None:
            mask &= self.job_id == job_id
        if component_id is not None:
            mask &= self.component_id == component_id
        return TelemetryFrame(
            self.job_id[mask],
            self.component_id[mask],
            self.timestamp[mask],
            self.values[mask],
            self.metric_names,
        )

    def node_series(self, job_id: int, component_id: int) -> NodeSeries:
        """Extract the sorted ``Time x M`` series of one node in one job."""
        mask = (self.job_id == job_id) & (self.component_id == component_id)
        if not np.any(mask):
            raise KeyError(f"no rows for job_id={job_id}, component_id={component_id}")
        ts = self.timestamp[mask]
        vals = self.values[mask]
        order = np.argsort(ts, kind="stable")
        ts, vals = ts[order], vals[order]
        # LDMS aggregation can duplicate a sampling instant; keep the first.
        keep = np.concatenate(([True], np.diff(ts) > 0))
        return NodeSeries(job_id, component_id, ts[keep], vals[keep], self.metric_names)

    def iter_node_series(self) -> Iterator[NodeSeries]:
        """Yield one :class:`NodeSeries` per (job, node) pair, sorted by ids."""
        for job in self.jobs():
            for comp in self.components(int(job)):
                yield self.node_series(int(job), int(comp))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TelemetryFrame(rows={self.n_rows}, metrics={self.n_metrics}, "
            f"jobs={len(self.jobs())})"
        )
