"""Text rendering of dashboard responses (the Grafana panel stand-in)."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = [
    "render_table",
    "render_anomaly_dashboard",
    "lifecycle_sections",
    "fleet_sections",
    "history_sections",
    "slo_sections",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def lifecycle_sections(status: dict[str, Any]) -> list[tuple[str, list, list]]:
    """(title, headers, rows) table sections for a lifecycle status payload.

    Shared by the ``lifecycle`` dashboard renderer and the CLI's
    ``lifecycle status`` so both present the same operator view.  Accepts
    either a full :meth:`LifecycleManager.status` payload or a bare
    :meth:`ModelRegistry.status` one.
    """
    registry = status.get("registry", status)
    sections: list[tuple[str, list, list]] = [
        (
            f"registry {registry.get('root', '')} (active: {registry.get('active')})",
            ["version", "status", "source", "lineage rows", "note"],
            [
                [
                    v["version"],
                    v["status"],
                    v.get("source", ""),
                    (v.get("lineage") or {}).get("fingerprint", {}).get("n_rows", "-")
                    if (v.get("lineage") or {}).get("fingerprint") else "-",
                    v.get("note", "")[:40],
                ]
                for v in registry.get("versions", [])
            ],
        )
    ]
    monitor = status.get("monitor")
    if monitor:
        sections.append((
            "drift monitor",
            ["windows", "streak", "events", "watched features"],
            [[monitor["windows_evaluated"], monitor["streak"], monitor["events"],
              len(monitor.get("watched_features", []))]],
        ))
    shadow = status.get("shadow")
    if shadow:
        sections.append((
            f"shadow: {shadow['candidate_version']}",
            ["observed", "eval windows", "active alert rate", "candidate alert rate"],
            [[shadow["windows_observed"], shadow["eval_windows"],
              shadow["active_alert_rate"], shadow["candidate_alert_rate"]]],
        ))
    audit = registry.get("audit_tail", [])
    if audit:
        sections.append((
            "audit tail",
            ["event", "detail"],
            [[e.get("event", "?"),
              ", ".join(f"{k}={v}" for k, v in sorted(e.items())
                        if k not in ("event", "ts"))[:70]]
             for e in audit],
        ))
    return sections


def fleet_sections(status: dict[str, Any]) -> list[tuple[str, list, list]]:
    """(title, headers, rows) table sections for a fleet status payload.

    Shared by the ``fleet`` dashboard renderer and the CLI's
    ``fleet status`` so both present the same operator view: worker
    health, shed/backpressure totals, per-shard drain timings, and the
    cluster rollup (rack/app alert rates, top anomalous nodes).
    """
    totals = status.get("totals", {})
    transport = status.get("transport", "inline")
    sections: list[tuple[str, list, list]] = [
        (
            f"fleet (tick {status.get('tick', 0)}, {transport} transport, "
            f"{len(status.get('alive', []))}/{status.get('n_workers', 0)} workers alive)",
            ["worker", "alive", "queued", "drained", "batches", "verdicts",
             "shed", "tracked"],
            [
                [
                    w["worker_id"],
                    "yes" if w.get("alive") else "DEAD",
                    w["queued"],
                    w["drained_chunks"],
                    w["batches"],
                    w["verdicts"],
                    w["shed_chunks"],
                    w["tracked_nodes"],
                ]
                for w in status.get("workers", [])
            ],
        ),
        (
            "totals",
            ["submitted", "verdicts", "shed chunks", "backpressure",
             "redelivered", "rebalances", "moved keys", "promotions"],
            [[
                totals.get("submitted", 0),
                totals.get("verdicts", 0),
                totals.get("shed_chunks", 0),
                totals.get("backpressure_events", 0),
                totals.get("redelivered", 0),
                totals.get("rebalances", 0),
                totals.get("moved_keys", 0),
                totals.get("promotion_fanouts", 0),
            ]],
        ),
    ]
    timings = status.get("shard_timings", {})
    if timings:
        sections.append((
            "shard drain timings",
            ["shard", "calls", "total s", "mean ms", "chunks"],
            [[name, t["calls"], t["seconds"], t["mean_ms"], t["items"]]
             for name, t in sorted(timings.items())],
        ))
    ipc = status.get("ipc")
    if ipc:
        sections.append((
            "shared-memory transport",
            ["pushed chunks", "ring-full events", "ctl messages"],
            [[ipc.get("pushed_chunks", 0), ipc.get("ring_full_events", 0),
              ipc.get("ctl_messages", 0)]],
        ))
        ipc_timings = ipc.get("timings", {})
        if ipc_timings:
            sections.append((
                "IPC stage timings",
                ["stage", "calls", "total s", "mean ms", "items"],
                [[name, t["calls"], t["seconds"], t["mean_ms"], t["items"]]
                 for name, t in sorted(ipc_timings.items())],
            ))
    rollup = status.get("rollup")
    if rollup:
        sections.append((
            f"cluster rollup ({rollup['nodes_tracked']} nodes, "
            f"alert rate {rollup['alert_rate']:.4f})",
            ["rack", "verdicts", "alerts", "alert rate"],
            [[rack, r["verdicts"], r["alerts"], r["alert_rate"]]
             for rack, r in sorted(rollup.get("racks", {}).items())],
        ))
        classes = rollup.get("node_classes", {})
        if classes:
            sections.append((
                "node classes",
                ["class", "verdicts", "alerts", "alert rate"],
                [[name, c["verdicts"], c["alerts"], c["alert_rate"]]
                 for name, c in sorted(classes.items())],
            ))
        top = rollup.get("top_nodes", [])
        if top:
            sections.append((
                "top anomalous nodes",
                ["job", "node", "peak score", "alerts", "streak"],
                [[n["job_id"], n["component_id"], n["peak_score"],
                  n["alerts"], n["streak"]]
                 for n in top],
            ))
    return sections


def history_sections(payload: dict[str, Any]) -> list[tuple[str, list, list]]:
    """(title, headers, rows) table sections for a historical-store payload.

    Shared by the ``history`` dashboard renderer and the CLI's
    ``dsos stats`` so both present the same operator view: per-sampler
    tier layout (segments, rows, bytes, codec mix) and, when a rollup is
    present, the windowed per-metric summary.
    """
    sections: list[tuple[str, list, list]] = []
    store = payload.get("store", payload)
    layout_rows = []
    for sampler, c in sorted(store.get("samplers", {}).items()):
        if c.get("memtable_rows"):
            layout_rows.append(
                [sampler, "memtable", "-", c["memtable_rows"], "-", "-"]
            )
        for tier, t in c.get("tiers", {}).items():
            codecs = ", ".join(
                f"{codec}:{n}" for codec, n in sorted(t.get("codecs", {}).items())
            )
            layout_rows.append(
                [sampler, tier, t["segments"], t["rows"], t["bytes"], codecs]
            )
    sections.append((
        f"historical store {store.get('root', '')} "
        f"({store.get('n_rows', 0)} rows, segment span {store.get('segment_span')}s)",
        ["sampler", "tier", "segments", "rows", "bytes", "codecs"],
        layout_rows,
    ))
    rollup = payload.get("rollup")
    if rollup:
        t0, t1 = rollup.get("window", [None, None])
        metric_rows = []
        for sampler, entry in sorted(rollup.get("samplers", {}).items()):
            for name, m in entry.get("metrics", {}).items():
                metric_rows.append(
                    [sampler, entry.get("tier", "?"), name, m["kind"],
                     m["mean"], m["min"], m["max"]]
                )
        sections.append((
            f"rollup (tier {rollup.get('tier')}, window "
            f"[{'-inf' if t0 is None else t0}, {'+inf' if t1 is None else t1}])",
            ["sampler", "tier", "metric", "kind", "mean", "min", "max"],
            metric_rows,
        ))
    return sections


def slo_sections(status: dict[str, Any]) -> list[tuple[str, list, list]]:
    """(title, headers, rows) table sections for a gateway SLO payload.

    Shared by the ``slo`` dashboard renderer and the CLI's ``serve`` /
    ``loadgen`` subcommands so both present the same tenant-facing view:
    per-tenant latency percentiles with the queue-wait vs service split,
    admission counters, cache effectiveness, and early-warning lead time.
    """
    tenants = status.get("tenants", {})
    sections: list[tuple[str, list, list]] = [
        (
            f"tenant SLOs (model {status.get('model_version', '?')})",
            ["tenant", "class", "requests", "p50 ms", "p99 ms", "SLO ms",
             "met", "wait ms", "service ms"],
            [
                [name, t.get("priority", "?"), t.get("requests", 0),
                 t.get("p50_ms", 0.0), t.get("p99_ms", 0.0),
                 t.get("p99_slo_ms", "-"),
                 "yes" if t.get("slo_met", True) else "NO",
                 t.get("queue_wait_ms_mean", 0.0),
                 t.get("service_ms_mean", 0.0)]
                for name, t in sorted(tenants.items())
            ],
        ),
        (
            "admission",
            ["tenant", "admitted", "served", "cached", "rejected quota",
             "rejected full", "shed", "errors", "pending"],
            [
                [name, t.get("admitted", 0), t.get("served", 0),
                 t.get("cached", 0), t.get("rejected_quota", 0),
                 t.get("rejected_queue_full", 0), t.get("shed_deadline", 0),
                 t.get("errors", 0), t.get("pending", 0)]
                for name, t in sorted(tenants.items())
            ],
        ),
    ]
    cache = status.get("cache")
    if cache:
        sections.append((
            "response cache",
            ["entries", "capacity", "hits", "misses", "hit rate",
             "evictions", "invalidations"],
            [[cache["entries"], cache["capacity"], cache["hits"], cache["misses"],
              f"{cache['hit_rate']:.2f}", cache["evictions"], cache["invalidations"]]],
        ))
    scheduler = status.get("scheduler", {})
    lead = status.get("lead_time", {})
    sections.append((
        "gateway",
        ["priority inversions", "tracked onsets", "alerted",
         "lead s (mean)", "lead s (min)"],
        [[scheduler.get("priority_inversions", 0),
          lead.get("tracked_onsets", 0), lead.get("alerted", 0),
          "-" if lead.get("lead_s_mean") is None else lead["lead_s_mean"],
          "-" if lead.get("lead_s_min") is None else lead["lead_s_min"]]],
    ))
    return sections


def render_anomaly_dashboard(response: dict[str, Any]) -> str:
    """Render an anomaly-detection dashboard response to text."""
    lines = [
        f"Job {response['job_id']}: "
        f"{response['n_anomalous']}/{response['n_nodes']} nodes anomalous",
        "",
        render_table(
            ["node", "prediction", "score", "threshold"],
            [
                [n["component_id"], n["prediction"], n["anomaly_score"], n["threshold"]]
                for n in response["nodes"]
            ],
        ),
    ]
    for expl in response.get("explanations", []):
        if "error" in expl:
            from repro.serving.errors import error_message

            lines.append(f"\nexplanation unavailable: {error_message(expl)}")
            continue
        lines.append(
            f"\nnode {expl['component_id']}: would be healthy if "
            f"{', '.join(expl['metrics'])} matched a healthy run "
            f"(P(anomalous) {expl['p_anomalous_before']:.3f} -> "
            f"{expl['p_anomalous_after']:.3f})"
        )
    return "\n".join(lines)
