"""Text rendering of dashboard responses (the Grafana panel stand-in)."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "render_anomaly_dashboard", "lifecycle_sections"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def lifecycle_sections(status: dict[str, Any]) -> list[tuple[str, list, list]]:
    """(title, headers, rows) table sections for a lifecycle status payload.

    Shared by the ``lifecycle`` dashboard renderer and the CLI's
    ``lifecycle status`` so both present the same operator view.  Accepts
    either a full :meth:`LifecycleManager.status` payload or a bare
    :meth:`ModelRegistry.status` one.
    """
    registry = status.get("registry", status)
    sections: list[tuple[str, list, list]] = [
        (
            f"registry {registry.get('root', '')} (active: {registry.get('active')})",
            ["version", "status", "source", "lineage rows", "note"],
            [
                [
                    v["version"],
                    v["status"],
                    v.get("source", ""),
                    (v.get("lineage") or {}).get("fingerprint", {}).get("n_rows", "-")
                    if (v.get("lineage") or {}).get("fingerprint") else "-",
                    v.get("note", "")[:40],
                ]
                for v in registry.get("versions", [])
            ],
        )
    ]
    monitor = status.get("monitor")
    if monitor:
        sections.append((
            "drift monitor",
            ["windows", "streak", "events", "watched features"],
            [[monitor["windows_evaluated"], monitor["streak"], monitor["events"],
              len(monitor.get("watched_features", []))]],
        ))
    shadow = status.get("shadow")
    if shadow:
        sections.append((
            f"shadow: {shadow['candidate_version']}",
            ["observed", "eval windows", "active alert rate", "candidate alert rate"],
            [[shadow["windows_observed"], shadow["eval_windows"],
              shadow["active_alert_rate"], shadow["candidate_alert_rate"]]],
        ))
    audit = registry.get("audit_tail", [])
    if audit:
        sections.append((
            "audit tail",
            ["event", "detail"],
            [[e.get("event", "?"),
              ", ".join(f"{k}={v}" for k, v in sorted(e.items())
                        if k not in ("event", "ts"))[:70]]
             for e in audit],
        ))
    return sections


def render_anomaly_dashboard(response: dict[str, Any]) -> str:
    """Render an anomaly-detection dashboard response to text."""
    lines = [
        f"Job {response['job_id']}: "
        f"{response['n_anomalous']}/{response['n_nodes']} nodes anomalous",
        "",
        render_table(
            ["node", "prediction", "score", "threshold"],
            [
                [n["component_id"], n["prediction"], n["anomaly_score"], n["threshold"]]
                for n in response["nodes"]
            ],
        ),
    ]
    for expl in response.get("explanations", []):
        if "error" in expl:
            lines.append(f"\nexplanation unavailable: {expl['error']}")
            continue
        lines.append(
            f"\nnode {expl['component_id']}: would be healthy if "
            f"{', '.join(expl['metrics'])} matched a healthy run "
            f"(P(anomalous) {expl['p_anomalous_before']:.3f} -> "
            f"{expl['p_anomalous_after']:.3f})"
        )
    return "\n".join(lines)
