"""Text rendering of dashboard responses (the Grafana panel stand-in)."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "render_anomaly_dashboard"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def render_anomaly_dashboard(response: dict[str, Any]) -> str:
    """Render an anomaly-detection dashboard response to text."""
    lines = [
        f"Job {response['job_id']}: "
        f"{response['n_anomalous']}/{response['n_nodes']} nodes anomalous",
        "",
        render_table(
            ["node", "prediction", "score", "threshold"],
            [
                [n["component_id"], n["prediction"], n["anomaly_score"], n["threshold"]]
                for n in response["nodes"]
            ],
        ),
    ]
    for expl in response.get("explanations", []):
        if "error" in expl:
            lines.append(f"\nexplanation unavailable: {expl['error']}")
            continue
        lines.append(
            f"\nnode {expl['component_id']}: would be healthy if "
            f"{', '.join(expl['metrics'])} matched a healthy run "
            f"(P(anomalous) {expl['p_anomalous_before']:.3f} -> "
            f"{expl['p_anomalous_after']:.3f})"
        )
    return "\n".join(lines)
