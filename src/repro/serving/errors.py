"""Structured serving errors: one envelope for raised and returned failures.

Historically the serving layer failed two different ways: ``handle_request``
raised bare ``KeyError``/``LookupError`` while the lifecycle/fleet/history
dashboards returned ad-hoc ``{"error": "..."}`` dicts.  Both paths now speak
one envelope::

    {"error": {"code": "unknown_dashboard",
               "message": "unknown dashboard 'x'; available: ...",
               "available": ["anomaly_detection", ...]}}

Raised errors are :class:`ServingError` (a ``LookupError``, so pre-envelope
callers keep working); dashboards that report a soft failure return
:func:`error_envelope` directly.  The gateway converts raised
:class:`ServingError` into envelope responses, and the CLI renders either
form as its standard one-line rc-2 error.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = [
    "ServingError",
    "UnknownDashboardError",
    "error_envelope",
    "is_error",
    "error_message",
]


def error_envelope(
    code: str, message: str, available: Sequence[Any] | None = None
) -> dict[str, Any]:
    """The serving layer's one structured error payload."""
    body: dict[str, Any] = {"code": code, "message": message}
    if available is not None:
        body["available"] = sorted(available)
    return {"error": body}


def is_error(response: dict[str, Any]) -> bool:
    """True when *response* is (or wraps) an error envelope."""
    return isinstance(response, dict) and "error" in response


def error_message(response: dict[str, Any]) -> str:
    """Human-readable message of an envelope (tolerates the legacy string form)."""
    err = response.get("error", "")
    if isinstance(err, dict):
        return str(err.get("message", err.get("code", "serving error")))
    return str(err)


class ServingError(LookupError):
    """A request-scoped serving failure carrying the structured envelope.

    Subclasses ``LookupError`` so callers that caught the historical bare
    exceptions keep working; :meth:`envelope` produces the dict form for
    transport through the gateway or a dashboard response.
    """

    def __init__(
        self, code: str, message: str, *, available: Sequence[Any] | None = None
    ):
        super().__init__(message)
        self.code = code
        self.message = message
        self.available = sorted(available) if available is not None else None

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.message

    def envelope(self) -> dict[str, Any]:
        return error_envelope(self.code, self.message, self.available)


class UnknownDashboardError(ServingError, KeyError):
    """Unknown dashboard name (also a ``KeyError`` for pre-envelope callers)."""
