"""Analytics service (paper Figs. 2 & 4).

In production a Grafana dashboard posts a job id to a Django backend, which
calls the analysis modules against DSOS and renders the results.  This
module reproduces that request flow in-process: the
:class:`AnalyticsService` is the "backend", dashboards are methods keyed by
name, and responses are plain dicts (what the HTTP layer would serialise).
"""

from __future__ import annotations

from typing import Any

from repro.explain.comte import OptimizedSearch
from repro.explain.evaluators import FeatureSpaceEvaluator
from repro.pipeline.datagenerator import DataGenerator
from repro.pipeline.detector_service import AnomalyDetectorService
from repro.serving.errors import ServingError, UnknownDashboardError, error_envelope
from repro.telemetry.frame import NodeSeries

__all__ = ["AnalyticsService"]


class AnalyticsService:
    """Job- and node-level analysis endpoints over a deployed detector.

    Parameters
    ----------
    detector_service:
        The online detection pipeline.
    healthy_references:
        Healthy training-series pool used as CoMTE distractors.
    lifecycle:
        Optional :class:`~repro.lifecycle.manager.LifecycleManager`; when
        given (or when the detector service carries one), the
        ``lifecycle`` dashboard reports registry versions, drift-monitor
        state, shadow progress, and the audit-log tail.
    fleet:
        Optional :class:`~repro.fleet.coordinator.FleetCoordinator`; when
        attached, the ``fleet`` dashboard reports worker health, shed and
        backpressure totals, per-shard drain timings, and the cluster
        rollup.
    history:
        Optional :class:`~repro.hist.store.HistStore`; when attached, the
        ``history`` dashboard serves segment/tier layout stats and
        downsampled per-metric window rollups straight from the columnar
        store (no per-node re-extraction).
    """

    def __init__(
        self,
        detector_service: AnomalyDetectorService,
        healthy_references: list[NodeSeries] | None = None,
        *,
        lifecycle=None,
        fleet=None,
        history=None,
    ):
        self.detector_service = detector_service
        self.healthy_references = list(healthy_references or [])
        self.lifecycle = lifecycle if lifecycle is not None else getattr(
            detector_service, "lifecycle", None
        )
        self.fleet = fleet
        self.history = history
        self._dashboards = {
            "anomaly_detection": self.anomaly_detection_dashboard,
            "node_analysis": self.node_analysis_dashboard,
            "lifecycle": self.lifecycle_dashboard,
            "fleet": self.fleet_dashboard,
            "history": self.history_dashboard,
        }

    @property
    def data_generator(self) -> DataGenerator:
        return self.detector_service.data_generator

    def register_dashboard(self, name: str, handler) -> None:
        """Attach an extra dashboard (the gateway adds its ``slo`` panel here)."""
        self._dashboards[name] = handler

    @property
    def dashboards(self) -> tuple[str, ...]:
        return tuple(sorted(self._dashboards))

    # -- request entry point (the "Django view") --------------------------------

    def handle_request(self, job_id: int, dashboard: str, **params: Any) -> dict[str, Any]:
        """Dispatch a dashboard request, like the backend routing a view."""
        try:
            handler = self._dashboards[dashboard]
        except KeyError:
            raise UnknownDashboardError(
                "unknown_dashboard",
                f"unknown dashboard {dashboard!r}; available: {sorted(self._dashboards)}",
                available=self._dashboards,
            ) from None
        return handler(job_id, **params)

    # -- dashboards ----------------------------------------------------------------

    def anomaly_detection_dashboard(
        self, job_id: int, *, explain: bool = False, max_explanations: int = 2
    ) -> dict[str, Any]:
        """Per-node predictions, optionally with CoMTE explanations."""
        predictions = self.detector_service.predict_job(job_id)
        result: dict[str, Any] = {
            "job_id": job_id,
            "n_nodes": len(predictions),
            "n_anomalous": sum(p.prediction for p in predictions),
            "nodes": [
                {
                    "component_id": p.component_id,
                    "prediction": "anomalous" if p.prediction else "healthy",
                    "anomaly_score": p.anomaly_score,
                    "threshold": p.threshold,
                }
                for p in predictions
            ],
        }
        if explain:
            result["explanations"] = self._explain_anomalies(job_id, predictions, max_explanations)
        return result

    def node_analysis_dashboard(
        self, job_id: int, *, component_id: int | None = None, metrics: list[str] | None = None
    ) -> dict[str, Any]:
        """Raw metric statistics per node (the "CPU usage dashboard" style)."""
        series = self.data_generator.job_series(job_id)
        if component_id is not None:
            available = [s.component_id for s in series]
            series = [s for s in series if s.component_id == component_id]
            if not series:
                raise ServingError(
                    "unknown_component",
                    f"component {component_id} not in job {job_id}; "
                    f"available: {sorted(available)}",
                    available=available,
                )
        if metrics is not None:
            # Validate up front so a typo'd metric name surfaces as a
            # structured error naming the job, component, and choices —
            # not a raw exception from NodeSeries.metric mid-render.
            for s in series:
                unknown = [m for m in metrics if m not in s.metric_names]
                if unknown:
                    choices = sorted(s.metric_names)
                    shown = choices[:12]
                    more = len(choices) - len(shown)
                    listing = ", ".join(shown) + (f", ... (+{more} more)" if more else "")
                    raise ServingError(
                        "unknown_metric",
                        f"unknown metric(s) {sorted(unknown)} for job {job_id} "
                        f"component {s.component_id}; available: {listing}",
                        available=s.metric_names,
                    )
        nodes = []
        for s in series:
            chosen = metrics if metrics is not None else list(s.metric_names[:5])
            nodes.append(
                {
                    "component_id": s.component_id,
                    "duration_s": s.duration,
                    "metrics": {
                        name: {
                            "mean": float(s.metric(name).mean()),
                            "min": float(s.metric(name).min()),
                            "max": float(s.metric(name).max()),
                        }
                        for name in chosen
                    },
                }
            )
        return {"job_id": job_id, "nodes": nodes}

    def lifecycle_dashboard(self, job_id: int | None = None, **_: Any) -> dict[str, Any]:
        """Model-operations panel: versions, drift, shadow, audit tail.

        ``job_id`` is accepted (the request entry point always passes one)
        but irrelevant — lifecycle state is per-deployment, not per-job.
        """
        if self.lifecycle is None:
            return error_envelope(
                "lifecycle_unavailable", "no lifecycle manager configured"
            )
        return self.lifecycle.status()

    def fleet_dashboard(self, job_id: int | None = None, **_: Any) -> dict[str, Any]:
        """Fleet panel: worker health, shed totals, shard timings, rollup.

        Like :meth:`lifecycle_dashboard`, ``job_id`` is accepted but
        irrelevant — fleet state spans every job the workers score.
        """
        if self.fleet is None:
            return error_envelope(
                "fleet_unavailable", "no fleet coordinator configured"
            )
        return self.fleet.status()

    def history_dashboard(
        self,
        job_id: int | None = None,
        *,
        tier: str = "1min",
        t0: float | None = None,
        t1: float | None = None,
        **_: Any,
    ) -> dict[str, Any]:
        """Historical-store panel: segment layout + windowed metric rollup.

        Rollups come from the downsampled retention tiers, so a
        month-of-history panel costs a few segment scans, not a raw
        re-read.  ``job_id`` is accepted but irrelevant — the store spans
        every job.
        """
        if self.history is None:
            return error_envelope(
                "history_unavailable", "no historical store configured"
            )
        from repro.hist.feeds import dashboard_rollup

        return {
            "store": self.history.stats(),
            "rollup": dashboard_rollup(self.history, tier=tier, t0=t0, t1=t1),
        }

    # -- explanations -----------------------------------------------------------------

    def _explain_anomalies(self, job_id, predictions, max_explanations: int) -> list[dict]:
        if not self.healthy_references:
            return [error_envelope(
                "no_healthy_references", "no healthy reference series configured"
            )]
        # Incremental feature-space evaluation: candidate substitutions only
        # re-extract the substituted metric's feature block.
        evaluator = FeatureSpaceEvaluator(
            self.detector_service.pipeline, self.detector_service.detector
        )
        search = OptimizedSearch(evaluator, self.healthy_references, max_metrics=8)
        out = []
        anomalous = [p for p in predictions if p.is_anomalous][:max_explanations]
        for pred in anomalous:
            sample = self.data_generator.node_series(job_id, pred.component_id)
            cf = search.explain(sample)
            out.append(
                {
                    "component_id": pred.component_id,
                    "metrics": list(cf.metrics),
                    "p_anomalous_before": cf.p_anomalous_before,
                    "p_anomalous_after": cf.p_anomalous_after,
                    "flipped": cf.flipped,
                    "distractor_job_id": cf.distractor_job_id,
                }
            )
        return out
