"""In-process analytics service mimicking the Grafana/Django request flow.

:mod:`repro.serving.gateway` adds the multi-tenant front door (admission
control, priority scheduling, response caching, SLO instrumentation) and
:mod:`repro.serving.loadgen` the deterministic traffic-replay harness.
"""

from repro.serving.dashboard import render_anomaly_dashboard, render_table, slo_sections
from repro.serving.errors import ServingError, UnknownDashboardError, error_envelope
from repro.serving.gateway import (
    RequestScheduler,
    ResponseCache,
    ServingGateway,
    SloTracker,
    TenantSpec,
    TokenBucket,
)
from repro.serving.loadgen import (
    ReplayHarness,
    SeriesBank,
    TrafficProfile,
    demo_gateway,
)
from repro.serving.service import AnalyticsService

__all__ = [
    "AnalyticsService",
    "ReplayHarness",
    "RequestScheduler",
    "ResponseCache",
    "SeriesBank",
    "ServingError",
    "ServingGateway",
    "SloTracker",
    "TenantSpec",
    "TokenBucket",
    "TrafficProfile",
    "UnknownDashboardError",
    "demo_gateway",
    "error_envelope",
    "render_anomaly_dashboard",
    "render_table",
    "slo_sections",
]
