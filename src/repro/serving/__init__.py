"""In-process analytics service mimicking the Grafana/Django request flow."""

from repro.serving.dashboard import render_anomaly_dashboard, render_table
from repro.serving.service import AnalyticsService

__all__ = ["AnalyticsService", "render_anomaly_dashboard", "render_table"]
