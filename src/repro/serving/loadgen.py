"""Deterministic traffic-replay load generator for the serving gateway.

Replays the bursty multi-tenant query shapes of production dashboards
(cf. *Synthetic Time Series for Anomaly Detection in Cloud Microservices*,
PAPERS.md) against a :class:`~repro.serving.gateway.ServingGateway` on a
**virtual clock**:

* Arrivals per tenant come from a seeded two-state burst-modulated Poisson
  process (quiet rate / burst rate with exponential dwell times), so the
  same seed replays the same request schedule bit-for-bit.
* ``open`` mode submits on the arrival schedule regardless of completions
  (the saturation probe); ``closed`` mode models N users per tenant, each
  issuing its next request one think-time after its previous response.
* Service is modelled as a single server: queue waits accrue in virtual
  time while each request's service time is the *measured* wall-clock of
  actually rendering the dashboard — so p50/p99 latencies are real work,
  only the waiting is simulated.
* Scripted ``actions`` fire at virtual times (the mid-replay lifecycle
  promotion in the bench), and every response's model-version tag is
  checked against the version active at its serve time — a served-stale
  response is counted, and asserted zero by the bench and CI smoke.

:func:`demo_gateway` builds the self-contained synthetic deployment the
``loadgen`` CLI, the tests, and ``run_serving_check`` share.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.serving.gateway import Request, ServingGateway, TenantSpec
from repro.telemetry.frame import NodeSeries
from repro.util.rng import ensure_rng

__all__ = [
    "TrafficProfile",
    "BurstyArrivals",
    "ReplayReport",
    "ReplayHarness",
    "SeriesBank",
    "demo_gateway",
]


@dataclass(frozen=True)
class TrafficProfile:
    """Traffic shape of one tenant.

    Parameters
    ----------
    tenant:
        Name of a tenant the gateway's scheduler knows (its admission
        contract — priority, quota, SLO — lives in the
        :class:`~repro.serving.gateway.TenantSpec` registered there).
    mix:
        ``(dashboard, weight)`` pairs the tenant draws requests from.
    rate_hz:
        Mean arrival rate over the replay horizon (open loop).
    burst_factor / burst_fraction / mean_burst_s:
        Burst modulation: the process spends ``burst_fraction`` of its
        time in a burst state arriving ``burst_factor`` times faster,
        with exponential dwell of mean ``mean_burst_s`` seconds.
    users / think_s:
        Closed-loop shape: concurrent users per tenant and the think time
        between a response and that user's next request.
    """

    tenant: str
    mix: tuple[tuple[str, float], ...] = (("anomaly_detection", 1.0),)
    rate_hz: float = 20.0
    burst_factor: float = 3.0
    burst_fraction: float = 0.2
    mean_burst_s: float = 0.5
    users: int = 4
    think_s: float = 0.05

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError("rate_hz must be > 0")
        if not self.mix or any(w <= 0 for _, w in self.mix):
            raise ValueError("mix must be non-empty with positive weights")
        if self.burst_factor < 1.0 or not (0.0 <= self.burst_fraction < 1.0):
            raise ValueError("burst_factor >= 1 and 0 <= burst_fraction < 1 required")


class BurstyArrivals:
    """Seeded two-state (quiet/burst) Poisson arrival process."""

    def __init__(self, profile: TrafficProfile, seed: int):
        self.profile = profile
        self.rng = np.random.default_rng(seed)
        # Solve the quiet rate so the long-run mean is rate_hz:
        #   mean = f * burst_rate + (1 - f) * quiet_rate
        f, b = profile.burst_fraction, profile.burst_factor
        self.burst_rate = profile.rate_hz * b
        quiet = profile.rate_hz * (1.0 - f * b) / (1.0 - f) if f else profile.rate_hz
        self.quiet_rate = max(quiet, 0.05 * profile.rate_hz)

    def times(self, horizon_s: float) -> list[float]:
        """Arrival instants on ``[0, horizon_s)``, deterministic per seed."""
        f = self.profile.burst_fraction
        mean_burst = self.profile.mean_burst_s
        mean_quiet = mean_burst * (1.0 - f) / f if f > 0 else math.inf
        # Start in the chain's stationary state, not always-quiet: a short
        # horizon would otherwise never leave the initial quiet dwell and
        # deliver a fraction of the advertised rate.
        bursting = f > 0 and float(self.rng.random()) < f
        t, out = 0.0, []
        switch_at = (
            float(self.rng.exponential(mean_burst if bursting else mean_quiet))
            if mean_quiet < math.inf
            else math.inf
        )
        while t < horizon_s:
            rate = self.burst_rate if bursting else self.quiet_rate
            t_next = t + float(self.rng.exponential(1.0 / rate))
            if t_next >= switch_at:
                t = switch_at
                bursting = not bursting
                dwell = mean_burst if bursting else mean_quiet
                switch_at = t + float(self.rng.exponential(dwell))
                continue
            t = t_next
            if t < horizon_s:
                out.append(t)
        return out


@dataclass
class _Arrival:
    t: float
    tenant: str
    dashboard: str
    job_id: int
    params: dict[str, Any] = field(default_factory=dict)


@dataclass
class ReplayReport:
    """Outcome of one replay: conservation counters + the SLO snapshot."""

    mode: str
    horizon_s: float
    virtual_seconds: float
    wall_seconds: float
    issued: dict[str, int]
    completed: int
    stale_responses: int
    versions_served: list[str]
    priority_inversions: int
    slo: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "horizon_s": self.horizon_s,
            "virtual_seconds": self.virtual_seconds,
            "wall_seconds": self.wall_seconds,
            "issued": dict(self.issued),
            "completed": self.completed,
            "stale_responses": self.stale_responses,
            "versions_served": list(self.versions_served),
            "priority_inversions": self.priority_inversions,
            "slo": self.slo,
        }


class ReplayHarness:
    """Drive a gateway with seeded multi-tenant traffic on a virtual clock.

    Parameters
    ----------
    gateway:
        The gateway under load.  Its scheduler must know every profile's
        tenant.
    profiles:
        One :class:`TrafficProfile` per tenant.
    jobs:
        Job ids requests draw from (uniformly, seeded).
    seed:
        Base seed; each tenant's arrival process derives its own stream.
    actions:
        ``(virtual_time, callable)`` pairs fired once the replay clock
        passes ``virtual_time`` — e.g. a lifecycle promotion mid-replay.
    onsets:
        ``(job_id, component_id, virtual_time)`` fault onsets registered
        with the SLO tracker for lead-time accounting.
    """

    def __init__(
        self,
        gateway: ServingGateway,
        profiles: Sequence[TrafficProfile],
        jobs: Sequence[int],
        *,
        seed: int = 0,
        actions: Sequence[tuple[float, Callable[[], Any]]] = (),
        onsets: Sequence[tuple[int, int, float]] = (),
    ):
        if not profiles:
            raise ValueError("at least one traffic profile is required")
        self.gateway = gateway
        self.profiles = {p.tenant: p for p in profiles}
        self.jobs = list(jobs)
        if not self.jobs:
            raise ValueError("at least one job id is required")
        self.seed = int(seed)
        self._actions = sorted(actions, key=lambda a: a[0])
        for job_id, component_id, t in onsets:
            gateway.tracker.record_onset(job_id, component_id, t)

    # -- schedule generation ---------------------------------------------------

    def open_schedule(self, horizon_s: float) -> list[_Arrival]:
        """The merged, time-sorted arrival schedule (deterministic)."""
        arrivals: list[_Arrival] = []
        for i, (name, profile) in enumerate(sorted(self.profiles.items())):
            times = BurstyArrivals(profile, seed=self.seed * 7919 + i).times(horizon_s)
            picker = np.random.default_rng(self.seed * 104729 + i)
            for t in times:
                arrivals.append(self._draw(picker, name, profile, t))
        arrivals.sort(key=lambda a: (a.t, a.tenant))
        return arrivals

    def _draw(self, rng, tenant: str, profile: TrafficProfile, t: float) -> _Arrival:
        names = [d for d, _ in profile.mix]
        weights = np.asarray([w for _, w in profile.mix], dtype=np.float64)
        dashboard = names[int(rng.choice(len(names), p=weights / weights.sum()))]
        job_id = self.jobs[int(rng.integers(len(self.jobs)))]
        return _Arrival(t=t, tenant=tenant, dashboard=dashboard, job_id=job_id)

    # -- replay ----------------------------------------------------------------

    def run(self, *, horizon_s: float = 10.0, mode: str = "open") -> ReplayReport:
        if mode not in ("open", "closed"):
            raise ValueError(f"mode must be 'open' or 'closed', got {mode!r}")
        wall_start = time.perf_counter()
        self._expected_version = self.gateway.model_version()
        self._pending_actions = list(self._actions)
        self._responses: list[dict] = []
        self._stale = 0
        self._issued: dict[str, int] = {name: 0 for name in self.profiles}
        if mode == "open":
            virtual_end = self._run_open(horizon_s)
        else:
            virtual_end = self._run_closed(horizon_s)
        slo = self.gateway.slo_status()
        versions = sorted({r["gateway"]["model_version"] for r in self._responses})
        return ReplayReport(
            mode=mode,
            horizon_s=horizon_s,
            virtual_seconds=virtual_end,
            wall_seconds=time.perf_counter() - wall_start,
            issued=self._issued,
            completed=len(self._responses),
            stale_responses=self._stale,
            versions_served=versions,
            priority_inversions=self.gateway.scheduler.priority_inversions,
            slo=slo,
        )

    def _fire_actions(self, now: float) -> None:
        while self._pending_actions and self._pending_actions[0][0] <= now:
            _, action = self._pending_actions.pop(0)
            action()
            self._expected_version = self.gateway.model_version()

    def _submit(self, arrival: _Arrival) -> Request | dict:
        self._issued[arrival.tenant] += 1
        return self.gateway.submit(
            arrival.tenant, arrival.dashboard, arrival.job_id,
            now=arrival.t, **arrival.params,
        )

    def _serve_one(self, start_t: float) -> dict | None:
        """Serve the scheduler's next request at virtual time *start_t*."""
        self._fire_actions(start_t)
        responses = self.gateway.pump(now=start_t, max_requests=1)
        if not responses:
            return None
        response = responses[0]
        if response["gateway"]["model_version"] != self._expected_version:
            # A response computed by (or cached from) a demoted version:
            # the invalidation contract says this must never happen.
            self._stale += 1
        self._responses.append(response)
        return response

    def _run_open(self, horizon_s: float) -> float:
        arrivals = self.open_schedule(horizon_s)
        busy_until = 0.0
        idx = 0
        while True:
            pending = any(self.gateway.scheduler.pending().values())
            next_arrival = arrivals[idx].t if idx < len(arrivals) else math.inf
            if not pending:
                if next_arrival is math.inf:
                    break
                arrival = arrivals[idx]
                idx += 1
                self._fire_actions(arrival.t)
                self._submit(arrival)
                busy_until = max(busy_until, arrival.t)
                continue
            if next_arrival <= busy_until:
                arrival = arrivals[idx]
                idx += 1
                self._fire_actions(arrival.t)
                self._submit(arrival)
                continue
            response = self._serve_one(busy_until)
            if response is not None:
                busy_until += response["gateway"]["service_s"]
        return busy_until

    def _run_closed(self, horizon_s: float) -> float:
        # One heap of (ready_time, tie, tenant) virtual users; each user's
        # next request follows its previous completion by think_s.
        ready: list[tuple[float, int, str]] = []
        tie = 0
        for name, profile in sorted(self.profiles.items()):
            for _ in range(profile.users):
                heapq.heappush(ready, (0.0, tie, name))
                tie += 1
        pickers = {
            name: np.random.default_rng(self.seed * 15485863 + i)
            for i, name in enumerate(sorted(self.profiles))
        }
        busy_until = 0.0
        while ready:
            t_ready, _, name = heapq.heappop(ready)
            if t_ready >= horizon_s:
                continue
            profile = self.profiles[name]
            arrival = self._draw(pickers[name], name, profile, t_ready)
            self._fire_actions(arrival.t)
            outcome = self._submit(arrival)
            if isinstance(outcome, dict):  # rejected: back off one think time
                heapq.heappush(ready, (t_ready + profile.think_s, tie, name))
                tie += 1
                continue
            start_t = max(busy_until, t_ready)
            response = self._serve_one(start_t)
            if response is None:  # shed before service: user retries
                heapq.heappush(ready, (start_t + profile.think_s, tie, name))
                tie += 1
                continue
            busy_until = start_t + response["gateway"]["service_s"]
            heapq.heappush(ready, (busy_until + profile.think_s, tie, name))
            tie += 1
        return busy_until


class SeriesBank:
    """In-memory :class:`DataGenerator` stand-in over a list of node series.

    Provides the three methods the serving layer actually uses
    (``job_series`` / ``node_series`` / ``all_job_ids``), so a gateway can
    front telemetry loaded from CSV or synthesised on the fly without a
    DSOS store behind it.
    """

    def __init__(self, series: Sequence[NodeSeries]):
        self._by_job: dict[int, list[NodeSeries]] = {}
        for s in series:
            self._by_job.setdefault(int(s.job_id), []).append(s)

    def job_series(self, job_id: int) -> list[NodeSeries]:
        if job_id not in self._by_job:
            raise LookupError(f"job {job_id} not found in the store")
        return list(self._by_job[job_id])

    def node_series(self, job_id: int, component_id: int) -> NodeSeries:
        for s in self.job_series(job_id):
            if s.component_id == component_id:
                return s
        raise LookupError(f"component {component_id} not in job {job_id}")

    def all_job_ids(self) -> np.ndarray:
        return np.array(sorted(self._by_job), dtype=np.int64)


def sentinel_deployment(series: Sequence[NodeSeries], *, seed: int = 0, n_keep: int = 48):
    """Variance-ranked sentinel pipeline + tiny detector fitted on *series*.

    The same fast-deployment pattern as ``runtime stats`` / ``fleet run``:
    no chi-square search, no real training campaign — just enough of a
    fitted deployment to serve dashboards with real extraction costs.
    """
    from repro.core import ProdigyDetector
    from repro.features import FeatureExtractor
    from repro.features.scaling import make_scaler
    from repro.features.selection import ChiSquareSelector
    from repro.pipeline import DataPipeline
    from repro.runtime import ParallelExtractor

    engine = ParallelExtractor(FeatureExtractor(resample_points=32))
    features, feature_names = engine.extract_matrix(list(series))
    n_keep = min(n_keep, features.shape[1])
    var = features.var(axis=0)
    keep = np.sort(np.lexsort((np.arange(var.size), -var))[:n_keep])
    pipeline = DataPipeline(engine, n_features=n_keep)
    pipeline.selected_names_ = tuple(feature_names[i] for i in keep)
    pipeline.selector_ = ChiSquareSelector.sentinel(pipeline.selected_names_, var[keep])
    pipeline.scaler_ = make_scaler(pipeline.scaler_kind).fit(features[:, keep])
    detector = ProdigyDetector(
        hidden_dims=(16, 8), latent_dim=4, epochs=20, batch_size=16,
        learning_rate=1e-3, seed=seed,
    )
    train = pipeline.transform_series(list(series))
    detector.fit(train)
    # The default 99th-percentile threshold interpolates below the worst
    # training row on tiny fleets, guaranteeing a false positive; clear it
    # to just above the worst healthy reconstruction instead.
    detector.set_threshold(float(detector.anomaly_score(train).max()) + 0.01)
    return pipeline, detector


def demo_gateway(
    *,
    n_jobs: int = 3,
    nodes: int = 2,
    n_metrics: int = 6,
    n_samples: int = 96,
    seed: int = 0,
    tenants: Sequence[TenantSpec] | None = None,
    cache_size: int | None = None,
    version_source: Callable[[], str] | None = None,
    healthy_references: int = 0,
):
    """A self-contained synthetic gateway deployment.

    Synthesises ``n_jobs`` healthy jobs plus one anomalous job (node 0's
    telemetry shifted far out of distribution so the detector reliably
    flags it), fits a sentinel deployment on the healthy jobs, and wraps
    it in a two-tier-ready gateway.  Returns
    ``(gateway, service, job_ids, anomalous_job)``.

    Shared by the ``loadgen`` CLI subcommand, the gateway test suite, and
    ``run_serving_check`` so all three replay the same deployment shape.
    """
    from repro.pipeline import AnomalyDetectorService
    from repro.serving.service import AnalyticsService

    rng = ensure_rng(seed)
    names = tuple(f"m{i}" for i in range(n_metrics))
    t = np.arange(float(n_samples))

    def healthy_values() -> np.ndarray:
        # Structured telemetry the VAE can actually learn: per-metric
        # sinusoids with stable phases plus small jitter.  A pure-noise
        # baseline would give the detector no manifold to model, and any
        # injected anomaly would score in-distribution.
        phases = np.arange(n_metrics) / n_metrics + rng.normal(0.0, 0.02, n_metrics)
        waves = 0.5 + 0.35 * np.sin(
            2.0 * np.pi * (t[:, None] / 24.0 + phases[None, :])
        )
        return waves + rng.normal(0.0, 0.02, (n_samples, n_metrics))

    healthy: list[NodeSeries] = []
    for job in range(1, n_jobs + 1):
        for comp in range(nodes):
            healthy.append(NodeSeries(job, comp, t, healthy_values(), names))
    anomalous_job = n_jobs + 1
    anomaly_rows = []
    for comp in range(nodes):
        if comp == 0:
            # Break the learned shape, not just the offset: a runaway ramp
            # with heavy noise replaces the periodic structure entirely.
            values = (
                np.linspace(0.0, 6.0, n_samples)[:, None]
                + rng.normal(0.0, 1.5, (n_samples, n_metrics))
            )
        else:
            values = healthy_values()
        anomaly_rows.append(NodeSeries(anomalous_job, comp, t, values, names))
    pipeline, detector = sentinel_deployment(healthy, seed=seed)
    bank = SeriesBank(healthy + anomaly_rows)
    detector_service = AnomalyDetectorService(bank, pipeline, detector)
    refs = healthy[:healthy_references] if healthy_references else None
    service = AnalyticsService(detector_service, refs)
    if tenants is None:
        tenants = (
            TenantSpec("dashboard", priority="interactive", rate=200.0, burst=50.0,
                       queue_capacity=128, p99_slo_ms=250.0),
            TenantSpec("analytics", priority="batch", rate=100.0, burst=50.0,
                       queue_capacity=64, deadline_s=5.0, p99_slo_ms=5000.0),
        )
    gateway = ServingGateway(
        service, tenants, cache_size=cache_size, version_source=version_source
    )
    job_ids = list(range(1, n_jobs + 1)) + [anomalous_job]
    return gateway, service, job_ids, anomalous_job
