"""Multi-tenant serving gateway over :class:`AnalyticsService`.

The paper's serving story is a Grafana dashboard posting job ids to a
Django backend; :class:`~repro.serving.service.AnalyticsService` reproduces
that flow one caller at a time.  This module is the request front-end that
makes the flow survive *many* callers:

* :class:`RequestScheduler` — per-tenant token-bucket quotas, bounded
  admission queues with counted rejections, deadline-based shedding, and
  strict priority classes: ``interactive`` dashboard reads are always
  dispatched before ``batch`` retrain/explain work (round-robin within a
  class so no tenant starves its peers).
* :class:`ResponseCache` — LRU response cache keyed on
  ``(dashboard, job, params, model-version)``.  The model version is part
  of the key, so a lifecycle promotion/hot-swap makes every pre-promotion
  entry unreachable by construction — a stale verdict can never be served;
  the promotion listener then purges those unreachable entries.
* :class:`SloTracker` — per-tenant latency reservoirs (p50/p99), the
  queue-wait vs service-time split, rejection/shed/error rates, and the
  operator-facing early-warning lead time: for each (job, node) with a
  registered fault onset, how far ahead of the onset the first anomalous
  verdict was served.

Time is injectable everywhere (``now=`` on submit/pump): the traffic-replay
harness (:mod:`repro.serving.loadgen`) drives a virtual clock so replays
are deterministic, while live callers simply omit ``now``.

Stage timings land in the shared :mod:`repro.runtime.instrumentation`
registry (``gateway:serve`` plus per-tenant ``slo:<tenant>:wait`` /
``slo:<tenant>:service``), and the whole SLO picture is surfaced as a new
``slo`` dashboard section registered on the wrapped service.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.runtime.config import get_execution_config
from repro.runtime.instrumentation import Instrumentation, get_instrumentation
from repro.serving.errors import ServingError, error_envelope
from repro.serving.service import AnalyticsService

__all__ = [
    "PRIORITY_CLASSES",
    "CACHEABLE_DASHBOARDS",
    "TenantSpec",
    "TokenBucket",
    "RequestScheduler",
    "ResponseCache",
    "SloTracker",
    "ServingGateway",
]

#: Priority classes in dispatch order: every queued ``interactive`` request
#: is served before any ``batch`` one.
PRIORITY_CLASSES = ("interactive", "batch")

#: Dashboards whose responses are pure functions of (job, params, model
#: version) and therefore cacheable.  Live-state panels (lifecycle, fleet,
#: slo) are never cached.
CACHEABLE_DASHBOARDS = frozenset({"anomaly_detection", "node_analysis", "history"})

#: Model-version tag used when no lifecycle registry is attached.
UNVERSIONED = "unversioned"


@dataclass(frozen=True)
class TenantSpec:
    """Admission contract of one tenant.

    Parameters
    ----------
    name:
        Tenant id (the dashboard's API key, in production terms).
    priority:
        ``"interactive"`` (dashboard reads) or ``"batch"`` (retrain/explain
        sweeps); interactive requests preempt queued batch work.
    rate:
        Sustained token-bucket refill in requests/second.
    burst:
        Bucket capacity — requests admitted back-to-back after idle.
    queue_capacity:
        Bound on this tenant's admission queue; the queue full means
        rejection (counted), not unbounded buffering.
    deadline_s:
        Default per-request deadline.  A request still queued when its
        deadline passes is shed (counted) instead of served late.
    p99_slo_ms:
        The tenant's latency objective; :class:`SloTracker` reports
        ``slo_met`` against it.
    """

    name: str
    priority: str = "interactive"
    rate: float = 50.0
    burst: float = 20.0
    queue_capacity: int = 64
    deadline_s: float | None = None
    p99_slo_ms: float = 250.0

    def __post_init__(self) -> None:
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be one of {PRIORITY_CLASSES}, got {self.priority!r}"
            )
        if self.rate <= 0 or self.burst <= 0:
            raise ValueError("rate and burst must be > 0")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")


class TokenBucket:
    """Deterministic token bucket (time injected, never sampled).

    The epoch is set by the *first* ``try_take``, so the same bucket works
    against the live monotonic clock and a replay's virtual clock starting
    at zero.
    """

    def __init__(self, rate: float, burst: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last: float | None = None

    def try_take(self, now: float) -> bool:
        if self._last is not None and now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
        self._last = now if self._last is None else max(self._last, now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class Request:
    """One admitted dashboard request waiting in a tenant queue."""

    seq: int
    tenant: str
    dashboard: str
    job_id: int
    params: dict[str, Any]
    submitted_at: float
    deadline: float | None = None


@dataclass
class _TenantState:
    spec: TenantSpec
    bucket: TokenBucket
    queue: deque = field(default_factory=deque)
    admitted: int = 0
    rejected_quota: int = 0
    rejected_queue_full: int = 0
    shed_deadline: int = 0
    served: int = 0
    errors: int = 0


class RequestScheduler:
    """Admission control + priority dispatch over per-tenant bounded queues."""

    def __init__(self, tenants: Iterable[TenantSpec]):
        self._tenants: dict[str, _TenantState] = {}
        for spec in tenants:
            if spec.name in self._tenants:
                raise ValueError(f"duplicate tenant {spec.name!r}")
            self._tenants[spec.name] = _TenantState(
                spec, TokenBucket(spec.rate, spec.burst)
            )
        if not self._tenants:
            raise ValueError("at least one tenant is required")
        #: round-robin cursor per priority class, so same-class tenants
        #: share dispatch capacity fairly.
        self._cursor = {cls: 0 for cls in PRIORITY_CLASSES}
        self.priority_inversions = 0
        self._seq = 0

    @property
    def tenant_names(self) -> tuple[str, ...]:
        return tuple(self._tenants)

    def spec(self, tenant: str) -> TenantSpec:
        return self._state(tenant).spec

    def _state(self, tenant: str) -> _TenantState:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise ServingError(
                "unknown_tenant",
                f"unknown tenant {tenant!r}; available: {sorted(self._tenants)}",
                available=self._tenants,
            ) from None

    # -- admission -------------------------------------------------------------

    def admit(
        self,
        tenant: str,
        dashboard: str,
        job_id: int,
        params: dict[str, Any],
        *,
        now: float,
        deadline_s: float | None = None,
    ) -> Request | dict[str, Any]:
        """Admit a request or return its structured rejection envelope."""
        state = self._state(tenant)
        if not state.bucket.try_take(now):
            state.rejected_quota += 1
            return error_envelope(
                "quota_exhausted",
                f"tenant {tenant!r} over its {state.spec.rate:g} req/s quota",
            )
        if len(state.queue) >= state.spec.queue_capacity:
            state.rejected_queue_full += 1
            return error_envelope(
                "queue_full",
                f"tenant {tenant!r} admission queue at capacity "
                f"({state.spec.queue_capacity})",
            )
        self._seq += 1
        horizon = deadline_s if deadline_s is not None else state.spec.deadline_s
        request = Request(
            seq=self._seq,
            tenant=tenant,
            dashboard=dashboard,
            job_id=job_id,
            params=dict(params),
            submitted_at=now,
            deadline=None if horizon is None else now + horizon,
        )
        state.queue.append(request)
        state.admitted += 1
        return request

    # -- dispatch --------------------------------------------------------------

    def shed_expired(self, now: float) -> int:
        """Drop queued requests whose deadline has passed; return the count."""
        shed = 0
        for state in self._tenants.values():
            kept = deque()
            for request in state.queue:
                if request.deadline is not None and request.deadline < now:
                    state.shed_deadline += 1
                    shed += 1
                else:
                    kept.append(request)
            state.queue = kept
        return shed

    def next_request(self, now: float) -> Request | None:
        """Pop the next request: strict priority, round-robin within class."""
        self.shed_expired(now)
        for cls in PRIORITY_CLASSES:
            names = [n for n, s in self._tenants.items() if s.spec.priority == cls]
            if not names:
                continue
            start = self._cursor[cls] % len(names)
            for offset in range(len(names)):
                state = self._tenants[names[(start + offset) % len(names)]]
                if state.queue:
                    self._cursor[cls] = (start + offset + 1) % len(names)
                    request = state.queue.popleft()
                    if cls != PRIORITY_CLASSES[0] and self._interactive_pending():
                        # Defensive observability: unreachable by
                        # construction, counted so the replay harness can
                        # assert zero.
                        self.priority_inversions += 1
                    return request
        return None

    def _interactive_pending(self) -> bool:
        return any(
            s.queue for s in self._tenants.values()
            if s.spec.priority == PRIORITY_CLASSES[0]
        )

    def pending(self) -> dict[str, int]:
        return {name: len(state.queue) for name, state in self._tenants.items()}

    def counters(self) -> dict[str, dict[str, int]]:
        return {
            name: {
                "admitted": s.admitted,
                "served": s.served,
                "rejected_quota": s.rejected_quota,
                "rejected_queue_full": s.rejected_queue_full,
                "shed_deadline": s.shed_deadline,
                "errors": s.errors,
                "pending": len(s.queue),
            }
            for name, s in self._tenants.items()
        }


def _freeze(value: Any) -> Any:
    """Hashable, order-independent form of a request parameter value."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set)):
        items = [_freeze(v) for v in value]
        return tuple(sorted(items)) if isinstance(value, set) else tuple(items)
    return value


class ResponseCache:
    """Bounded LRU of dashboard responses, model-version aware.

    Keys are ``(dashboard, job_id, frozen params, model_version)``.
    Because the serving model version is *part of the key*, entries
    computed by a demoted version are unreachable the instant a promotion
    lands — correctness does not depend on anyone remembering to call
    :meth:`invalidate_except`; that call just reclaims the dead entries
    (and counts them) when the lifecycle promotion listener fires.
    """

    def __init__(self, capacity: int = 256):
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @staticmethod
    def key(
        dashboard: str, job_id: int, params: dict[str, Any], model_version: str
    ) -> tuple:
        return (dashboard, job_id, _freeze(params), model_version)

    def get(self, key: tuple) -> dict | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, response: dict) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = response
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate_except(self, model_version: str) -> int:
        """Purge every entry not computed by *model_version*."""
        doomed = [k for k in self._entries if k[3] != model_version]
        for key in doomed:
            del self._entries[key]
        self.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self.invalidations += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return 0.0 if total == 0 else self.hits / total

    def stats(self) -> dict[str, Any]:
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class SloTracker:
    """Per-tenant latency reservoirs plus early-warning lead-time accounting."""

    def __init__(self):
        self._wait: dict[str, list[float]] = {}
        self._service: dict[str, list[float]] = {}
        self._cached: dict[str, int] = {}
        self._onsets: dict[tuple[int, int], float] = {}
        self._first_alert: dict[tuple[int, int], float] = {}

    def record(
        self, tenant: str, *, queue_wait_s: float, service_s: float, cached: bool
    ) -> None:
        self._wait.setdefault(tenant, []).append(float(queue_wait_s))
        self._service.setdefault(tenant, []).append(float(service_s))
        if cached:
            self._cached[tenant] = self._cached.get(tenant, 0) + 1

    # -- early-warning lead time ----------------------------------------------

    def record_onset(self, job_id: int, component_id: int, at: float) -> None:
        """Register when an injected fault becomes operator-visible."""
        self._onsets[(int(job_id), int(component_id))] = float(at)

    def note_alert(self, job_id: int, component_id: int, at: float) -> None:
        """First anomalous verdict served for a (job, node); later ones ignored."""
        key = (int(job_id), int(component_id))
        self._first_alert.setdefault(key, float(at))

    def lead_times(self) -> list[float]:
        """Seconds of warning: onset minus first alert, per tracked pair.

        Positive means the first anomalous verdict was served *before* the
        registered fault onset (the Borghesi-style operator value metric).
        """
        return [
            onset - self._first_alert[key]
            for key, onset in sorted(self._onsets.items())
            if key in self._first_alert
        ]

    # -- reporting -------------------------------------------------------------

    def tenant_summary(self, tenant: str, spec: TenantSpec | None = None) -> dict:
        wait = np.asarray(self._wait.get(tenant, ()), dtype=np.float64)
        service = np.asarray(self._service.get(tenant, ()), dtype=np.float64)
        total = wait + service
        n = int(total.size)
        summary = {
            "requests": n,
            "cached": self._cached.get(tenant, 0),
            "p50_ms": float(np.percentile(total, 50) * 1e3) if n else 0.0,
            "p99_ms": float(np.percentile(total, 99) * 1e3) if n else 0.0,
            "queue_wait_ms_mean": float(wait.mean() * 1e3) if n else 0.0,
            "service_ms_mean": float(service.mean() * 1e3) if n else 0.0,
        }
        if spec is not None:
            summary["priority"] = spec.priority
            summary["p99_slo_ms"] = spec.p99_slo_ms
            summary["slo_met"] = bool(n == 0 or summary["p99_ms"] <= spec.p99_slo_ms)
        return summary

    def lead_time_summary(self) -> dict:
        leads = self.lead_times()
        return {
            "tracked_onsets": len(self._onsets),
            "alerted": len(leads),
            "lead_s_mean": float(np.mean(leads)) if leads else None,
            "lead_s_min": float(np.min(leads)) if leads else None,
            "lead_s_max": float(np.max(leads)) if leads else None,
        }


class ServingGateway:
    """The multi-tenant front door: scheduler + cache + SLO instrumentation.

    Parameters
    ----------
    service:
        The wrapped :class:`AnalyticsService`.  The gateway registers its
        ``slo`` dashboard on it, so ``handle_request(0, "slo")`` works
        through either entry point.
    tenants:
        Admission contracts; at least one.
    cache_size:
        Response-cache entries (default:
        :attr:`ExecutionConfig.gateway_cache_size`; ``0`` disables caching).
    version_source:
        Callable returning the serving model-version tag.  Defaults to the
        attached lifecycle registry's active version (``"unversioned"``
        when there is no lifecycle).  Every response carries the tag it was
        computed under.
    clock:
        Time source for live callers (default ``time.monotonic``); replay
        harnesses bypass it by passing ``now=`` explicitly.
    """

    def __init__(
        self,
        service: AnalyticsService,
        tenants: Sequence[TenantSpec],
        *,
        cache_size: int | None = None,
        cacheable: frozenset[str] | None = None,
        version_source: Callable[[], str] | None = None,
        instrumentation: Instrumentation | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.service = service
        self._clock = clock
        self.instrumentation = instrumentation or get_instrumentation()
        self.scheduler = RequestScheduler(tenants)
        if cache_size is None:
            cache_size = get_execution_config().gateway_cache_size
        self.cache = ResponseCache(cache_size)
        self.cacheable = CACHEABLE_DASHBOARDS if cacheable is None else cacheable
        self.tracker = SloTracker()
        self._version_source = version_source or self._lifecycle_version
        self._last_version = self._version_source()
        self._unclaimed: dict[int, dict] = {}
        service.register_dashboard("slo", self.slo_dashboard)
        lifecycle = getattr(service, "lifecycle", None)
        if lifecycle is not None and hasattr(lifecycle, "add_promotion_listener"):
            lifecycle.add_promotion_listener(self._on_promotion)

    # -- model-version tracking -----------------------------------------------

    def _lifecycle_version(self) -> str:
        lifecycle = getattr(self.service, "lifecycle", None)
        if lifecycle is not None:
            active = lifecycle.registry.active_version
            if active is not None:
                return active
        return UNVERSIONED

    def model_version(self) -> str:
        """Current serving version; a change purges dead cache entries."""
        version = self._version_source()
        if version != self._last_version:
            self.cache.invalidate_except(version)
            self._last_version = version
        return version

    def _on_promotion(self, version: str) -> None:
        """Lifecycle promotion hook: reclaim entries of the demoted version."""
        self.cache.invalidate_except(version)
        self._last_version = version
        self.instrumentation.count("gateway_promotions", 1)

    # -- request path ----------------------------------------------------------

    def submit(
        self,
        tenant: str,
        dashboard: str,
        job_id: int = 0,
        *,
        now: float | None = None,
        deadline_s: float | None = None,
        **params: Any,
    ) -> Request | dict[str, Any]:
        """Admit one request; returns the queued :class:`Request` or a
        rejection envelope (already carrying its ``gateway`` meta)."""
        now = self._clock() if now is None else now
        outcome = self.scheduler.admit(
            tenant, dashboard, job_id, params, now=now, deadline_s=deadline_s
        )
        if isinstance(outcome, dict):
            outcome["gateway"] = {
                "tenant": tenant,
                "rejected": True,
                "reason": outcome["error"]["code"],
                "model_version": self.model_version(),
            }
        return outcome

    def pump(
        self, *, now: float | None = None, max_requests: int | None = None
    ) -> list[dict[str, Any]]:
        """Serve queued requests in priority order; returns the responses."""
        now = self._clock() if now is None else now
        served: list[dict[str, Any]] = []
        while max_requests is None or len(served) < max_requests:
            request = self.scheduler.next_request(now)
            if request is None:
                break
            served.append(self._serve(request, now))
        return served

    def request(
        self,
        tenant: str,
        dashboard: str,
        job_id: int = 0,
        *,
        now: float | None = None,
        **params: Any,
    ) -> dict[str, Any]:
        """Submit + serve synchronously (the CLI's one-shot path)."""
        outcome = self.submit(tenant, dashboard, job_id, now=now, **params)
        if isinstance(outcome, dict):
            return outcome
        for response in self.pump(now=now):
            self._unclaimed[response["gateway"]["seq"]] = response
        return self._unclaimed.pop(outcome.seq)

    def _serve(self, request: Request, now: float) -> dict[str, Any]:
        version = self.model_version()
        queue_wait = max(0.0, now - request.submitted_at)
        state = self.scheduler._state(request.tenant)
        cacheable = self.cache.capacity > 0 and request.dashboard in self.cacheable
        key = ResponseCache.key(request.dashboard, request.job_id, request.params, version)
        cached_payload = self.cache.get(key) if cacheable else None

        start = time.perf_counter()
        error = False
        if cached_payload is not None:
            payload, cached = cached_payload, True
        else:
            try:
                payload = self.service.handle_request(
                    request.job_id, request.dashboard, **request.params
                )
            except ServingError as exc:
                payload = exc.envelope()
            cached = False
            error = "error" in payload
            if cacheable and not error:
                self.cache.put(key, payload)
        service_s = time.perf_counter() - start

        state.served += 1
        if error:
            state.errors += 1
        self.tracker.record(
            request.tenant, queue_wait_s=queue_wait, service_s=service_s, cached=cached
        )
        inst = self.instrumentation
        inst.record("gateway:serve", service_s, items=1)
        inst.record(f"slo:{request.tenant}:wait", queue_wait, items=1)
        inst.record(f"slo:{request.tenant}:service", service_s, items=1)
        if request.dashboard == "anomaly_detection" and not payload.get("error"):
            for node in payload.get("nodes", ()):
                if node.get("prediction") == "anomalous":
                    self.tracker.note_alert(
                        request.job_id, node["component_id"], at=now
                    )
        response = dict(payload)
        response["gateway"] = {
            "tenant": request.tenant,
            "seq": request.seq,
            "model_version": version,
            "cached": cached,
            "queue_wait_s": queue_wait,
            "service_s": service_s,
            "latency_ms": (queue_wait + service_s) * 1e3,
        }
        return response

    # -- the slo dashboard -----------------------------------------------------

    def slo_dashboard(self, job_id: int | None = None, **_: Any) -> dict[str, Any]:
        """Tenant-facing SLO panel (``job_id`` accepted but irrelevant)."""
        return self.slo_status()

    def slo_status(self) -> dict[str, Any]:
        counters = self.scheduler.counters()
        tenants = {}
        for name in self.scheduler.tenant_names:
            summary = self.tracker.tenant_summary(name, self.scheduler.spec(name))
            summary.update(counters[name])
            tenants[name] = summary
        return {
            "model_version": self.model_version(),
            "tenants": tenants,
            "scheduler": {
                "priority_inversions": self.scheduler.priority_inversions,
                "pending": self.scheduler.pending(),
            },
            "cache": self.cache.stats(),
            "lead_time": self.tracker.lead_time_summary(),
        }
