"""NumPy neural-network library: layers, losses, optimizers, gradient checks."""

from repro.nn.gradcheck import max_relative_error, numerical_gradient
from repro.nn.initializers import glorot_uniform, he_normal, zeros
from repro.nn.layers import ACTIVATIONS, Activation, Dense, Layer
from repro.nn.losses import bce_loss, gaussian_kl, mae_loss, mse_loss
from repro.nn.network import Sequential, mlp
from repro.nn.optimizers import SGD, Adam, Optimizer

__all__ = [
    "ACTIVATIONS",
    "Activation",
    "Adam",
    "Dense",
    "Layer",
    "Optimizer",
    "SGD",
    "Sequential",
    "bce_loss",
    "gaussian_kl",
    "glorot_uniform",
    "he_normal",
    "mae_loss",
    "max_relative_error",
    "mlp",
    "mse_loss",
    "numerical_gradient",
    "zeros",
]
