"""Fused Dense+Activation execution kernels with preallocated buffers.

The layer objects in :mod:`repro.nn.layers` allocate on every call: a
fresh matmul output, a broadcast bias add, a fresh activation output, and
three gradient temporaries per backward.  For the small dense stacks this
repo trains, those allocations dominate the step cost.

:class:`FusedDenseActivation` wraps an existing :class:`~repro.nn.layers.Dense`
(and its following :class:`~repro.nn.layers.Activation`, if any) and runs
both in one pass over preallocated per-batch-size buffers:

- forward: ``matmul(x, W, out=z); z += b`` then the activation applied in
  place — same floating-point operations in the same order, so outputs are
  **bit-identical** to the unfused layers;
- backward: activation gradient, weight/bias gradient accumulation
  (``grads += scratch``, preserving the layers' accumulate-on-backward
  contract), and the input gradient, all written into reused scratch.

Parameters and gradients are *shared* with the wrapped layers — the fused
view is an execution strategy, not a copy, so ``named_params`` naming,
persistence, and the unfused inference paths all keep working unchanged.

Buffer reuse rules: each step owns its output buffers, and a returned
array is only valid until that step's next forward/backward call.  Fused
passes must therefore not be interleaved with other fused work on the same
network (USAD's cross-wired multi-path backward keeps the unfused layers
for exactly this reason).
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Activation, Dense, Layer
from repro.nn.network import Sequential

__all__ = ["FusedDenseActivation", "FusedSequential", "fuse", "pack_parameters"]


def pack_parameters(layers) -> tuple[np.ndarray, np.ndarray]:
    """Repack *layers*' parameters/gradients into contiguous flat vectors.

    Each layer's ``params[name]``/``grads[name]`` entries are rebound to
    views into one shared parameter vector and one shared gradient vector
    (values preserved), and the two flat vectors are returned.  Consumers
    holding the layers' dicts (``named_params``, persistence, fused views)
    keep working unchanged — they now see the views.

    The payoff is the optimizer: one in-place update over a single
    contiguous vector replaces a Python loop over a dozen small arrays.
    Because optimizer updates are purely elementwise, operating on the
    concatenated vector is **bit-identical** to the per-parameter loop.
    Zeroing gradients becomes one fill of the flat gradient vector.
    """
    specs = []
    total = 0
    for layer in layers:
        for name, arr in layer.params.items():
            specs.append((layer, name, arr.shape, arr.size))
            total += arr.size
    flat_p = np.empty(total)
    flat_g = np.zeros(total)
    offset = 0
    for layer, name, shape, size in specs:
        flat_p[offset : offset + size] = layer.params[name].ravel()
        layer.params[name] = flat_p[offset : offset + size].reshape(shape)
        layer.grads[name] = flat_g[offset : offset + size].reshape(shape)
        offset += size
    return flat_p, flat_g


class FusedDenseActivation:
    """One Dense layer and its optional trailing activation, fused."""

    def __init__(self, dense: Dense, activation: Activation | None = None):
        if activation is not None and activation.name == "linear":
            activation = None
        self.dense = dense
        self.activation = activation
        self.act_name = activation.name if activation is not None else "linear"
        # Shared with the wrapped layers: updates through either view agree.
        self.params = dense.params
        self.grads = dense.grads
        self._bufs: dict[int, dict[str, np.ndarray]] = {}
        self._gW = np.empty_like(dense.params["W"])
        self._gb = np.empty_like(dense.params["b"])
        self._x: np.ndarray | None = None

    def _buffers(self, batch: int) -> dict[str, np.ndarray]:
        try:
            return self._bufs[batch]
        except KeyError:
            out_f = self.dense.out_features
            in_f = self.dense.in_features
            buf = {
                "z": np.empty((batch, out_f)),  # pre-activation (relu/softplus grads)
                "dx": np.empty((batch, in_f)),
                "t": np.empty((batch, out_f)),  # gradient / sigmoid scratch
            }
            if self.act_name == "linear":
                buf["y"] = buf["z"]
            else:
                buf["y"] = np.empty((batch, out_f))
            if self.act_name in ("sigmoid", "softplus"):
                buf["v"] = np.empty((batch, out_f))
                buf["mask"] = np.empty((batch, out_f), dtype=bool)
            elif self.act_name == "relu":
                buf["mask"] = np.empty((batch, out_f), dtype=bool)
            self._bufs[batch] = buf
            return buf

    @staticmethod
    def _sigmoid_into(z: np.ndarray, buf: dict[str, np.ndarray], out: np.ndarray) -> None:
        """Stable split-form sigmoid of *z* into *out*, bit-equal to layers._sigmoid."""
        t, v, mask = buf["t"], buf["v"], buf["mask"]
        np.greater_equal(z, 0.0, out=mask)
        with np.errstate(over="ignore", invalid="ignore"):
            np.negative(z, out=t)
            np.exp(t, out=t)  # exp(-z); overflows harmlessly where z << 0
            t += 1.0
            np.divide(1.0, t, out=t)  # valid where z >= 0
            np.exp(z, out=v)  # overflows harmlessly where z >> 0
            np.add(v, 1.0, out=out)
            np.divide(v, out, out=v)  # valid where z < 0
        np.copyto(out, v)
        np.copyto(out, t, where=mask)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.dense.in_features:
            raise ValueError(f"expected {self.dense.in_features} inputs, got {x.shape[1]}")
        self._x = x
        buf = self._buffers(x.shape[0])
        z, y = buf["z"], buf["y"]
        np.matmul(x, self.params["W"], out=z)
        z += self.params["b"]
        name = self.act_name
        if name == "linear":
            pass  # y aliases z
        elif name == "relu":
            np.maximum(z, 0.0, out=y)
        elif name == "tanh":
            np.tanh(z, out=y)
        elif name == "sigmoid":
            self._sigmoid_into(z, buf, y)
        elif name == "softplus":
            np.logaddexp(0.0, z, out=y)
        else:  # pragma: no cover - constructor restricts to ACTIVATIONS
            raise KeyError(f"unknown activation {name!r}")
        return y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        buf = self._buffers(dout.shape[0])
        z, y, t = buf["z"], buf["y"], buf["t"]
        name = self.act_name
        if name == "linear":
            da = dout
        elif name == "relu":
            mask = buf["mask"]
            np.greater(z, 0.0, out=mask)
            np.multiply(dout, mask, out=t)
            da = t
        elif name == "tanh":
            np.square(y, out=t)
            np.subtract(1.0, t, out=t)
            np.multiply(dout, t, out=t)
            da = t
        elif name == "sigmoid":
            v = buf["v"]
            np.subtract(1.0, y, out=v)
            np.multiply(y, v, out=v)
            np.multiply(dout, v, out=t)
            da = t
        else:  # softplus: grad is sigmoid(z); y is dead in backward, reuse it
            self._sigmoid_into(z, buf, y)
            np.multiply(dout, y, out=t)
            da = t
        np.matmul(x.T, da, out=self._gW)
        self.grads["W"] += self._gW
        da.sum(axis=0, out=self._gb)
        self.grads["b"] += self._gb
        np.matmul(da, self.params["W"].T, out=buf["dx"])
        return buf["dx"]


class _FallbackStep:
    """Wraps a layer the fuser doesn't recognise; allocating passthrough."""

    def __init__(self, layer: Layer):
        self.layer = layer

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.layer.forward(x)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        return self.layer.backward(dout)


class FusedSequential:
    """Fused execution view over a :class:`~repro.nn.network.Sequential`."""

    def __init__(self, steps: list):
        self.steps = steps

    def forward(self, x: np.ndarray) -> np.ndarray:
        for step in self.steps:
            x = step.forward(x)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for step in reversed(self.steps):
            dout = step.backward(dout)
        return dout


def fuse(net: Sequential) -> FusedSequential:
    """Build a fused execution view sharing *net*'s parameter arrays."""
    steps: list = []
    layers = net.layers
    i = 0
    while i < len(layers):
        layer = layers[i]
        if isinstance(layer, Dense):
            nxt = layers[i + 1] if i + 1 < len(layers) else None
            if isinstance(nxt, Activation):
                steps.append(FusedDenseActivation(layer, nxt))
                i += 2
            else:
                steps.append(FusedDenseActivation(layer, None))
                i += 1
        else:
            steps.append(_FallbackStep(layer))
            i += 1
    return FusedSequential(steps)
