"""Shared minibatch pipeline for the NumPy trainers.

The pre-fast-path training loops materialised one fancy-indexed copy per
batch (``x[idx[start:start+bs]]``) — one allocation and gather per step.
:class:`MinibatchIterator` keeps the exact same RNG stream (one
``rng.permutation(n)`` per shuffled epoch, none otherwise) and the exact
same batch values, but gathers the shuffled epoch **once** into a
preallocated buffer and hands out contiguous row views, so the per-step
cost drops to slice arithmetic.

Used by ``VAE.fit``, ``USAD.fit``, and ``AutoencoderDetector.fit``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinibatchIterator"]


class MinibatchIterator:
    """Epoch iterator yielding contiguous batch views over a sample matrix.

    Parameters
    ----------
    x:
        ``(n, features)`` float64 sample matrix.  Not copied; must not be
        mutated while the iterator is in use.
    batch_size:
        Rows per batch; the final batch of an epoch may be shorter.
    rng:
        Generator consumed exactly as the legacy loops did: one
        ``permutation(n)`` per epoch when *shuffle* is on, nothing
        otherwise.
    shuffle:
        When False, batches are in-order views straight into *x* — zero
        copies at all.
    """

    def __init__(
        self,
        x: np.ndarray,
        batch_size: int,
        *,
        rng: np.random.Generator,
        shuffle: bool = True,
    ):
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {x.shape}")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.x = x
        self.batch_size = int(batch_size)
        self.rng = rng
        self.shuffle = bool(shuffle)
        self.n = x.shape[0]
        # One epoch-sized gather buffer replaces per-batch fancy-index copies.
        self._buf = np.empty_like(x) if self.shuffle else None

    @property
    def n_batches(self) -> int:
        return -(-self.n // self.batch_size)

    def epoch(self):
        """Yield this epoch's batches as contiguous row views."""
        if self.shuffle:
            idx = self.rng.permutation(self.n)
            np.take(self.x, idx, axis=0, out=self._buf)
            data = self._buf
        else:
            data = self.x
        for start in range(0, self.n, self.batch_size):
            yield data[start : start + self.batch_size]
