"""Sequential container and MLP builder."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.layers import Activation, Dense, Layer
from repro.util.rng import derive_seed, ensure_rng

__all__ = ["Sequential", "mlp"]


class Sequential:
    """A stack of layers with chained forward/backward.

    The container also exposes a flat named-parameter view
    (``layer{i}.{name}``) that optimizers and the persistence layer use.
    """

    def __init__(self, layers: Iterable[Layer]):
        self.layers = list(layers)
        if not self.layers:
            raise ValueError("Sequential needs at least one layer")

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    # -- parameter access --------------------------------------------------------

    def named_params(self) -> dict[str, np.ndarray]:
        out = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                out[f"layer{i}.{name}"] = value
        return out

    def named_grads(self) -> dict[str, np.ndarray]:
        out = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.grads.items():
                out[f"layer{i}.{name}"] = value
        return out

    def load_params(self, params: dict[str, np.ndarray]) -> None:
        """Overwrite parameters in place from a ``named_params``-style dict."""
        own = self.named_params()
        missing = set(own) - set(params)
        if missing:
            raise KeyError(f"missing parameters: {sorted(missing)}")
        for name, value in own.items():
            incoming = np.asarray(params[name], dtype=np.float64)
            if incoming.shape != value.shape:
                raise ValueError(
                    f"parameter {name}: shape {incoming.shape} != expected {value.shape}"
                )
            value[...] = incoming

    @property
    def n_parameters(self) -> int:
        return sum(layer.n_parameters for layer in self.layers)


def mlp(
    widths: Sequence[int],
    *,
    hidden_activation: str = "relu",
    output_activation: str = "linear",
    seed: int | np.random.Generator | None = None,
) -> Sequential:
    """Build a multilayer perceptron ``widths[0] -> ... -> widths[-1]``."""
    if len(widths) < 2:
        raise ValueError("widths needs at least input and output sizes")
    rng = ensure_rng(seed)
    layers: list[Layer] = []
    for i in range(len(widths) - 1):
        layers.append(Dense(widths[i], widths[i + 1], seed=derive_seed(rng)))
        is_last = i == len(widths) - 2
        act = output_activation if is_last else hidden_activation
        if act != "linear":
            layers.append(Activation(act))
    return Sequential(layers)
