"""Gradient-descent optimizers operating on named parameter dicts.

Both optimizers run **fully in place**: momentum/second-moment state and
two per-parameter scratch buffers are preallocated on first sight of each
parameter, and every update is an ``out=``/augmented-assignment kernel —
zero allocations per step.  The floating-point operations and their order
are unchanged from the allocating originals (frozen in
:mod:`repro.nn.reference`), so training trajectories are bit-identical.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer(ABC):
    """Updates parameters in place from matching gradient dicts.

    State (momenta, scratch) is keyed by parameter name, so one optimizer
    instance must stay paired with one network for its lifetime.
    """

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    @abstractmethod
    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None: ...


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0,1)")
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}
        self._scratch: dict[str, np.ndarray] = {}

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        for name, p in params.items():
            g = grads[name]
            s = self._scratch.get(name)
            if s is None:
                s = self._scratch[name] = np.empty_like(p)
            np.multiply(g, self.learning_rate, out=s)  # == learning_rate * g
            if self.momentum > 0:
                v = self._velocity.get(name)
                if v is None:
                    v = self._velocity[name] = np.zeros_like(p)
                v *= self.momentum
                v -= s
                p += v
            else:
                p -= s


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimizer the paper's Keras models default to.

    The update sequence is the textbook one, decomposed into in-place
    kernels that reproduce the original expression
    ``p -= lr * (m / b1t) / (sqrt(v / b2t) + eps)`` bit-for-bit.
    """

    def __init__(
        self,
        learning_rate: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0,1)")
        self.beta1, self.beta2, self.epsilon = beta1, beta2, epsilon
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        # Two scratch buffers per parameter: _u holds the update numerator,
        # _d the denominator; both live simultaneously in the final divide.
        self._u: dict[str, np.ndarray] = {}
        self._d: dict[str, np.ndarray] = {}
        self._t = 0

    def _state(self, name: str, p: np.ndarray):
        m = self._m.get(name)
        if m is None:
            m = self._m[name] = np.zeros_like(p)
            self._v[name] = np.zeros_like(p)
            self._u[name] = np.empty_like(p)
            self._d[name] = np.empty_like(p)
        return m, self._v[name], self._u[name], self._d[name]

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        b1t = 1.0 - b1**self._t
        b2t = 1.0 - b2**self._t
        lr, eps = self.learning_rate, self.epsilon
        for name, p in params.items():
            g = grads[name]
            m, v, u, d = self._state(name, p)
            m *= b1
            np.multiply(g, 1.0 - b1, out=u)  # == (1 - beta1) * g
            m += u
            v *= b2
            np.multiply(g, 1.0 - b2, out=u)  # == (1 - beta2) * g
            u *= g
            v += u
            np.divide(v, b2t, out=d)
            np.sqrt(d, out=d)
            d += eps
            np.divide(m, b1t, out=u)
            u *= lr  # == lr * (m / b1t)
            u /= d
            p -= u
