"""Gradient-descent optimizers operating on named parameter dicts."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer(ABC):
    """Updates parameters in place from matching gradient dicts.

    State (momenta) is keyed by parameter name, so one optimizer instance
    must stay paired with one network for its lifetime.
    """

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate

    @abstractmethod
    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None: ...


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 1e-2, momentum: float = 0.0):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0,1)")
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        for name, p in params.items():
            g = grads[name]
            if self.momentum > 0:
                v = self._velocity.setdefault(name, np.zeros_like(p))
                v *= self.momentum
                v -= self.learning_rate * g
                p += v
            else:
                p -= self.learning_rate * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) — the optimizer the paper's Keras models default to."""

    def __init__(
        self,
        learning_rate: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0,1)")
        self.beta1, self.beta2, self.epsilon = beta1, beta2, epsilon
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for name, p in params.items():
            g = grads[name]
            m = self._m.setdefault(name, np.zeros_like(p))
            v = self._v.setdefault(name, np.zeros_like(p))
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.learning_rate * (m / b1t) / (np.sqrt(v / b2t) + self.epsilon)
