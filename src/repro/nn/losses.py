"""Loss functions returning ``(value, gradient_wrt_prediction)`` pairs.

Values are means over the batch (sums over feature dimensions), matching
the Keras conventions the paper's models were trained with; gradients are
w.r.t. the prediction and already include the 1/batch factor.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse_loss", "mae_loss", "bce_loss", "gaussian_kl"]


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean (over batch) of summed squared errors."""
    n = pred.shape[0]
    diff = pred - target
    value = float(np.sum(diff**2) / n)
    return value, 2.0 * diff / n


def mae_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean (over batch) of summed absolute errors (subgradient at 0 is 0)."""
    n = pred.shape[0]
    diff = pred - target
    value = float(np.sum(np.abs(diff)) / n)
    return value, np.sign(diff) / n


def bce_loss(pred: np.ndarray, target: np.ndarray, eps: float = 1e-7) -> tuple[float, np.ndarray]:
    """Binary cross-entropy for sigmoid outputs against [0,1] targets."""
    n = pred.shape[0]
    p = np.clip(pred, eps, 1.0 - eps)
    value = float(-np.sum(target * np.log(p) + (1.0 - target) * np.log(1.0 - p)) / n)
    grad = (p - target) / (p * (1.0 - p)) / n
    return value, grad


def gaussian_kl(mu: np.ndarray, logvar: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
    """KL( N(mu, diag(exp(logvar))) || N(0, I) ), batch-mean.

    Returns ``(value, dmu, dlogvar)`` — the closed-form Eq. (3) term of the
    paper's ELBO and its gradients.
    """
    n = mu.shape[0]
    var = np.exp(logvar)
    value = float(0.5 * np.sum(var + mu**2 - 1.0 - logvar) / n)
    dmu = mu / n
    dlogvar = 0.5 * (var - 1.0) / n
    return value, dmu, dlogvar
