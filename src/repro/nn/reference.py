"""Frozen pre-fast-path NN stack — the training parity and perf baseline.

This module snapshots the layers, optimizer, and VAE training loop exactly
as they existed before the training fast path (fused Dense+Activation
kernels, in-place Adam, shared minibatch iterator) landed.  It is the
contract the fast path is measured against:

- parity tests pin that a fixed seed still produces **bit-identical**
  weights and an identical :class:`~repro.core.vae.TrainingHistory`
  through the optimized trainer;
- ``benchmarks/check_perf.py`` times :class:`ReferenceVAETrainer` against
  ``VAE.fit`` to report the training speedup in ``BENCH_training.json``.

Like :mod:`repro.features.reference`, this code **must not be improved**:
its value is that it stays byte-for-byte equivalent to the original
implementation.  Fix bugs only if the live path has the same bug.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.nn.initializers import glorot_uniform
from repro.util.rng import derive_seed, ensure_rng

__all__ = [
    "ReferenceDense",
    "ReferenceActivation",
    "ReferenceSequential",
    "reference_mlp",
    "ReferenceAdam",
    "ReferenceVAETrainer",
]


# -- layers (pre-PR repro.nn.layers) ------------------------------------------


class ReferenceDense:
    """Frozen ``y = x @ W + b`` with allocating forward/backward."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        seed: int | np.random.Generator | None = None,
        initializer: Callable = glorot_uniform,
    ):
        if in_features < 1 or out_features < 1:
            raise ValueError("layer widths must be positive")
        rng = ensure_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": initializer(in_features, out_features, rng),
            "b": np.zeros(out_features),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.in_features:
            raise ValueError(f"expected {self.in_features} inputs, got {x.shape[1]}")
        self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads["W"] += self._x.T @ dout
        self.grads["b"] += dout.sum(axis=0)
        return dout @ self.params["W"].T

    def zero_grads(self) -> None:
        for k in self.grads:
            self.grads[k][...] = 0.0


def _ref_relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _ref_relu_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(np.float64)


def _ref_tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _ref_tanh_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return 1.0 - y**2


def _ref_sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically stable split form.
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _ref_sigmoid_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def _ref_linear(x: np.ndarray) -> np.ndarray:
    return x


def _ref_linear_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


def _ref_softplus(x: np.ndarray) -> np.ndarray:
    return np.logaddexp(0.0, x)


def _ref_softplus_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return _ref_sigmoid(x)


REFERENCE_ACTIVATIONS: dict[str, tuple[Callable, Callable]] = {
    "relu": (_ref_relu, _ref_relu_grad),
    "tanh": (_ref_tanh, _ref_tanh_grad),
    "sigmoid": (_ref_sigmoid, _ref_sigmoid_grad),
    "linear": (_ref_linear, _ref_linear_grad),
    "softplus": (_ref_softplus, _ref_softplus_grad),
}


class ReferenceActivation:
    """Frozen elementwise activation with allocating forward/backward."""

    def __init__(self, name: str):
        try:
            self._fn, self._grad_fn = REFERENCE_ACTIVATIONS[name]
        except KeyError:
            raise KeyError(
                f"unknown activation {name!r}; known: {sorted(REFERENCE_ACTIVATIONS)}"
            ) from None
        self.name = name
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._y = self._fn(x)
        return self._y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        return dout * self._grad_fn(self._x, self._y)

    def zero_grads(self) -> None:
        pass


class ReferenceSequential:
    """Frozen layer stack with the ``layer{i}.{name}`` parameter view."""

    def __init__(self, layers: Iterable):
        self.layers = list(layers)
        if not self.layers:
            raise ValueError("Sequential needs at least one layer")

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def named_params(self) -> dict[str, np.ndarray]:
        out = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                out[f"layer{i}.{name}"] = value
        return out

    def named_grads(self) -> dict[str, np.ndarray]:
        out = {}
        for i, layer in enumerate(self.layers):
            for name, value in layer.grads.items():
                out[f"layer{i}.{name}"] = value
        return out


def reference_mlp(
    widths: Sequence[int],
    *,
    hidden_activation: str = "relu",
    output_activation: str = "linear",
    seed: int | np.random.Generator | None = None,
) -> ReferenceSequential:
    """Frozen MLP builder — identical RNG consumption to :func:`repro.nn.mlp`."""
    if len(widths) < 2:
        raise ValueError("widths needs at least input and output sizes")
    rng = ensure_rng(seed)
    layers: list = []
    for i in range(len(widths) - 1):
        layers.append(ReferenceDense(widths[i], widths[i + 1], seed=derive_seed(rng)))
        is_last = i == len(widths) - 2
        act = output_activation if is_last else hidden_activation
        if act != "linear":
            layers.append(ReferenceActivation(act))
    return ReferenceSequential(layers)


# -- optimizer (pre-PR repro.nn.optimizers.Adam) ------------------------------


class ReferenceAdam:
    """Frozen Adam with per-step temporary allocations."""

    def __init__(
        self,
        learning_rate: float = 1e-4,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0,1)")
        self.learning_rate = learning_rate
        self.beta1, self.beta2, self.epsilon = beta1, beta2, epsilon
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for name, p in params.items():
            g = grads[name]
            m = self._m.setdefault(name, np.zeros_like(p))
            v = self._v.setdefault(name, np.zeros_like(p))
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.learning_rate * (m / b1t) / (np.sqrt(v / b2t) + self.epsilon)


# -- VAE trainer (pre-PR repro.core.vae.VAE) ----------------------------------


class ReferenceVAETrainer:
    """Frozen VAE construction + training loop.

    Replicates the pre-PR ``VAE.__init__`` RNG consumption order (encoder
    trunk, mu head, logvar head, decoder — each via ``derive_seed``) and the
    pre-PR ``fit`` loop: one ``permutation`` per shuffled epoch, a
    fancy-indexed batch **copy** per step, the allocating train-step math,
    parameter/gradient dicts rebuilt every step, and :class:`ReferenceAdam`.
    With the same constructor arguments and seed as a live ``VAE`` it draws
    the exact same RNG stream, so the fast path can be pinned bit-identical.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int] = (128, 64),
        latent_dim: int = 16,
        *,
        beta: float = 1.0,
        output_activation: str = "sigmoid",
        seed: int | np.random.Generator | None = None,
    ):
        rng = ensure_rng(seed)
        self.input_dim = int(input_dim)
        self.hidden_dims = tuple(int(h) for h in hidden_dims)
        self.latent_dim = int(latent_dim)
        self.beta = float(beta)
        self._rng = rng

        trunk_widths = [self.input_dim, *self.hidden_dims]
        self.encoder = reference_mlp(
            trunk_widths, hidden_activation="relu", output_activation="relu", seed=derive_seed(rng)
        )
        enc_out = self.hidden_dims[-1] if self.hidden_dims else self.input_dim
        self.mu_head = ReferenceDense(enc_out, self.latent_dim, seed=derive_seed(rng))
        self.logvar_head = ReferenceDense(enc_out, self.latent_dim, seed=derive_seed(rng))
        self.decoder = reference_mlp(
            [self.latent_dim, *reversed(self.hidden_dims), self.input_dim],
            hidden_activation="relu",
            output_activation=output_activation,
            seed=derive_seed(rng),
        )

    def _parts(self):
        return (
            ("encoder", self.encoder),
            ("mu", self.mu_head),
            ("logvar", self.logvar_head),
            ("decoder", self.decoder),
        )

    def named_params(self) -> dict[str, np.ndarray]:
        out = {}
        for prefix, net in self._parts():
            source = net.named_params() if isinstance(net, ReferenceSequential) else net.params
            for k, v in source.items():
                out[f"{prefix}.{k}"] = v
        return out

    def named_grads(self) -> dict[str, np.ndarray]:
        out = {}
        for prefix, net in self._parts():
            source = net.named_grads() if isinstance(net, ReferenceSequential) else net.grads
            for k, v in source.items():
                out[f"{prefix}.{k}"] = v
        return out

    def _zero_grads(self) -> None:
        self.encoder.zero_grads()
        self.mu_head.zero_grads()
        self.logvar_head.zero_grads()
        self.decoder.zero_grads()

    def load_params(self, params: dict[str, np.ndarray]) -> None:
        own = self.named_params()
        for name, value in own.items():
            value[...] = np.asarray(params[name], dtype=np.float64)

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray:
        h = self.encoder.forward(x)
        mu = self.mu_head.forward(h)
        xhat = self.decoder.forward(mu)
        return np.mean(np.abs(xhat - x), axis=1)

    def train_step(self, x: np.ndarray, optimizer: ReferenceAdam) -> tuple[float, float, float]:
        eps = self._rng.standard_normal((x.shape[0], self.latent_dim))
        self._zero_grads()

        h = self.encoder.forward(x)
        mu = self.mu_head.forward(h)
        logvar = self.logvar_head.forward(h)
        std = np.exp(0.5 * logvar)
        z = mu + std * eps
        xhat = self.decoder.forward(z)

        n = xhat.shape[0]
        diff = xhat - x
        recon = float(np.sum(diff**2) / n)
        dxhat = 2.0 * diff / n
        var = np.exp(logvar)
        kl = float(0.5 * np.sum(var + mu**2 - 1.0 - logvar) / n)
        dmu_kl = mu / n
        dlogvar_kl = 0.5 * (var - 1.0) / n

        dz = self.decoder.backward(dxhat)
        dmu = dz + self.beta * dmu_kl
        dlogvar = dz * eps * 0.5 * std + self.beta * dlogvar_kl
        dh = self.mu_head.backward(dmu) + self.logvar_head.backward(dlogvar)
        self.encoder.backward(dh)

        optimizer.step(self.named_params(), self.named_grads())
        return recon + self.beta * kl, recon, kl

    def fit(
        self,
        x: np.ndarray,
        *,
        epochs: int = 400,
        batch_size: int = 256,
        learning_rate: float = 1e-4,
        validation_data: np.ndarray | None = None,
        optimizer: ReferenceAdam | None = None,
        patience: int | None = None,
        shuffle: bool = True,
    ):
        from repro.core.vae import TrainingHistory

        opt = optimizer if optimizer is not None else ReferenceAdam(learning_rate)
        history = TrainingHistory()
        n = x.shape[0]
        best_val = np.inf
        best_params: dict[str, np.ndarray] | None = None
        stale = 0
        for _ in range(epochs):
            idx = self._rng.permutation(n) if shuffle else np.arange(n)
            ep_loss = ep_recon = ep_kl = 0.0
            n_batches = 0
            for start in range(0, n, batch_size):
                batch = x[idx[start : start + batch_size]]
                loss, recon, kl = self.train_step(batch, opt)
                ep_loss += loss
                ep_recon += recon
                ep_kl += kl
                n_batches += 1
            history.loss.append(ep_loss / n_batches)
            history.reconstruction.append(ep_recon / n_batches)
            history.kl.append(ep_kl / n_batches)
            if validation_data is not None:
                val = float(np.mean(self.reconstruction_error(validation_data)))
                history.val_reconstruction.append(val)
                if patience is not None:
                    if val < best_val - 1e-9:
                        best_val = val
                        best_params = {k: v.copy() for k, v in self.named_params().items()}
                        stale = 0
                    else:
                        stale += 1
                        if stale > patience:
                            break
        if best_params is not None:
            self.load_params(best_params)
        return history
