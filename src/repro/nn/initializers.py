"""Weight initialisers for the NumPy neural-network stack."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "zeros"]


def glorot_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform — the Keras Dense default the paper's VAE uses."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He normal — preferred for ReLU stacks."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))


def zeros(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    return np.zeros((fan_in, fan_out))
