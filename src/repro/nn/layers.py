"""Layers with explicit forward/backward passes.

A minimal, dependency-free substitute for the Keras layers the paper's
models use.  Every layer caches what its backward pass needs during
``forward`` and accumulates parameter gradients in ``grads`` during
``backward``; optimizers consume ``params``/``grads`` pairs by name.

All tensors are ``(batch, features)`` float64 — batch sizes and widths in
this domain are small enough that float64's numerical headroom is worth
more than float32's speed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.nn.initializers import glorot_uniform
from repro.util.rng import ensure_rng

__all__ = ["Layer", "Dense", "Activation", "ACTIVATIONS"]


class Layer(ABC):
    """Base layer: forward caches, backward returns input gradient."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    @abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray: ...

    @abstractmethod
    def backward(self, dout: np.ndarray) -> np.ndarray: ...

    def zero_grads(self) -> None:
        for k in self.grads:
            self.grads[k][...] = 0.0

    @property
    def n_parameters(self) -> int:
        return sum(p.size for p in self.params.values())


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        seed: int | np.random.Generator | None = None,
        initializer: Callable = glorot_uniform,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("layer widths must be positive")
        rng = ensure_rng(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.params = {
            "W": initializer(in_features, out_features, rng),
            "b": np.zeros(out_features),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[1] != self.in_features:
            raise ValueError(f"expected {self.in_features} inputs, got {x.shape[1]}")
        self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.grads["W"] += self._x.T @ dout
        self.grads["b"] += dout.sum(axis=0)
        return dout @ self.params["W"].T


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(np.float64)


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return 1.0 - y**2


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Numerically stable split form.
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _sigmoid_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def _linear(x: np.ndarray) -> np.ndarray:
    return x


def _linear_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


def _softplus(x: np.ndarray) -> np.ndarray:
    return np.logaddexp(0.0, x)


def _softplus_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return _sigmoid(x)


ACTIVATIONS: dict[str, tuple[Callable, Callable]] = {
    "relu": (_relu, _relu_grad),
    "tanh": (_tanh, _tanh_grad),
    "sigmoid": (_sigmoid, _sigmoid_grad),
    "linear": (_linear, _linear_grad),
    "softplus": (_softplus, _softplus_grad),
}


class Activation(Layer):
    """Elementwise activation layer (relu/tanh/sigmoid/linear/softplus)."""

    def __init__(self, name: str):
        super().__init__()
        try:
            self._fn, self._grad_fn = ACTIVATIONS[name]
        except KeyError:
            raise KeyError(f"unknown activation {name!r}; known: {sorted(ACTIVATIONS)}") from None
        self.name = name
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._y = self._fn(x)
        return self._y

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        return dout * self._grad_fn(self._x, self._y)
