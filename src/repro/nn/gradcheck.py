"""Finite-difference gradient checking for the NN stack.

Backprop implemented by hand needs a referee: these helpers compare
analytic gradients against central finite differences and are used by the
test suite on every layer type and on the full VAE loss.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["numerical_gradient", "max_relative_error"]


def numerical_gradient(
    f: Callable[[], float], param: np.ndarray, *, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. *param* in place.

    ``f`` must re-evaluate the full computation each call (it reads *param*
    by reference).  O(2 * param.size) evaluations — for tests only.
    """
    grad = np.zeros_like(param)
    flat = param.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f()
        flat[i] = orig - eps
        f_minus = f()
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray, *, floor: float = 1e-8) -> float:
    """Worst-case elementwise relative error between two gradient arrays."""
    denom = np.maximum(np.abs(analytic) + np.abs(numeric), floor)
    return float(np.max(np.abs(analytic - numeric) / denom))
