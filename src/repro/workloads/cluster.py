"""Cluster model and job execution.

Models the two target systems (Eclipse, 1488 nodes / 128 GB; Volta, 52 nodes
/ 64 GB) at the fidelity the detector sees: a set of nodes with per-node
hardware character, a job scheduler that assigns node sets, and a runner
that renders each node's telemetry — optionally with an anomaly injector
active on designated nodes, exactly like the paper's controlled HPAS runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.telemetry.frame import NodeSeries, TelemetryFrame
from repro.util.rng import derive_seed, ensure_rng
from repro.workloads.base import ApplicationSignature
from repro.workloads.metrics import MetricCatalog, MetricSynthesizer, default_catalog

__all__ = ["DriverInjector", "Cluster", "JobSpec", "JobResult", "JobRunner", "ECLIPSE", "VOLTA"]


@runtime_checkable
class DriverInjector(Protocol):
    """Anything that perturbs a node's latent drivers (an anomaly)."""

    name: str

    def apply(
        self, drivers: dict[str, np.ndarray], rng: np.random.Generator
    ) -> dict[str, np.ndarray]: ...


@dataclass(frozen=True)
class Cluster:
    """Static description of a target system."""

    name: str
    n_nodes: int
    mem_gb: float
    cores_per_node: int

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.mem_gb <= 0:
            raise ValueError("mem_gb must be positive")

    @property
    def mem_total_mb(self) -> float:
        return self.mem_gb * 1024.0


#: The production system of the paper (Sec. 5.1).
ECLIPSE = Cluster(name="eclipse", n_nodes=1488, mem_gb=128.0, cores_per_node=72)
#: The testbed system of the paper (Sec. 5.1).
VOLTA = Cluster(name="volta", n_nodes=52, mem_gb=64.0, cores_per_node=48)


@dataclass(frozen=True)
class JobSpec:
    """One scheduled application run.

    ``anomalies`` maps node index *within the allocation* (0..n_nodes-1) to
    the injector active on that node — the paper injects HPAS anomalies on a
    subset of a job's nodes and labels those node-samples anomalous.
    """

    job_id: int
    app: ApplicationSignature
    n_nodes: int
    duration_s: int
    anomalies: Mapping[int, DriverInjector] = field(default_factory=dict)
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if self.duration_s < 4:
            raise ValueError("duration_s must be >= 4")
        bad = [i for i in self.anomalies if not 0 <= i < self.n_nodes]
        if bad:
            raise ValueError(f"anomaly node indices out of range: {bad}")


@dataclass(frozen=True)
class JobResult:
    """Telemetry and ground truth of one executed job."""

    spec: JobSpec
    frame: TelemetryFrame
    #: component_id -> anomaly name ("none" for healthy nodes)
    node_anomalies: dict[int, str]
    #: component ids in allocation order
    component_ids: tuple[int, ...]

    def node_label(self, component_id: int) -> int:
        """Ground-truth label: 1 if an anomaly ran on that node."""
        return int(self.node_anomalies.get(component_id, "none") != "none")


class JobRunner:
    """Executes :class:`JobSpec`'s against a cluster, producing telemetry.

    The runner draws node allocations from the cluster, generates per-node
    drivers from the application signature, applies any injector, and
    synthesises the raw metric series.  All randomness flows from the single
    ``seed`` so whole campaigns are reproducible.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        catalog: MetricCatalog | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        self.cluster = cluster
        self.catalog = catalog if catalog is not None else default_catalog()
        self.synthesizer = MetricSynthesizer(self.catalog, cluster.mem_total_mb)
        self._rng = ensure_rng(seed)

    def allocate_nodes(self, n: int) -> tuple[int, ...]:
        """Pick *n* distinct node ids (the scheduler's placement decision)."""
        if n > self.cluster.n_nodes:
            raise ValueError(
                f"job needs {n} nodes but {self.cluster.name} has {self.cluster.n_nodes}"
            )
        chosen = self._rng.choice(self.cluster.n_nodes, size=n, replace=False)
        return tuple(int(c) for c in np.sort(chosen))

    def run(self, spec: JobSpec) -> JobResult:
        """Execute one job and return its telemetry plus ground truth."""
        component_ids = self.allocate_nodes(spec.n_nodes)
        series: list[NodeSeries] = []
        node_anomalies: dict[int, str] = {}
        for rank, comp in enumerate(component_ids):
            rng = ensure_rng(derive_seed(self._rng))
            drivers = spec.app.generate_drivers(
                spec.duration_s, seed=rng, node_rank=rank, n_nodes=spec.n_nodes
            )
            injector = spec.anomalies.get(rank)
            if injector is not None:
                drivers = injector.apply(drivers, rng)
                node_anomalies[comp] = injector.name
            else:
                node_anomalies[comp] = "none"
            series.append(
                self.synthesizer.synthesize(
                    drivers,
                    job_id=spec.job_id,
                    component_id=comp,
                    start_time=spec.start_time,
                    seed=rng,
                )
            )
        return JobResult(
            spec=spec,
            frame=TelemetryFrame.from_node_series(series),
            node_anomalies=node_anomalies,
            component_ids=component_ids,
        )

    def run_campaign(self, specs: Sequence[JobSpec]) -> list[JobResult]:
        """Execute a list of jobs (a data-collection campaign)."""
        return [self.run(s) for s in specs]
