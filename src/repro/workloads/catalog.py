"""Application catalogs for the two target systems (paper Table 1).

Parameter choices encode each application's published character: molecular
dynamics codes have short timestep loops and modest I/O; HACC checkpoints
heavily; FFT codes are all-to-all communication bound; AMR codes have
sawtooth memory; Gauss-Seidel/multigrid solvers show longer phase structure.
Absolute values are synthetic but mutually distinct, which is what matters
for learning per-application "healthy" characteristics.
"""

from __future__ import annotations

from repro.workloads.base import ApplicationSignature
from repro.workloads.gpu import GpuApplicationSignature

__all__ = [
    "ECLIPSE_APPS",
    "VOLTA_APPS",
    "GPU_APPS",
    "EMPIRE",
    "get_application",
    "all_applications",
]

# -- Eclipse: real applications + ECP proxy suite ---------------------------

ECLIPSE_APPS: dict[str, ApplicationSignature] = {
    # Molecular dynamics: tight timestep loop, high compute, little I/O.
    "lammps": ApplicationSignature(
        name="lammps",
        compute_level=0.88,
        compute_period=22.0,
        compute_duty=0.8,
        comm_level=0.3,
        mem_mb=21000.0,
        mem_shape="flat",
        io_read_mbps=1.5,
        io_write_mbps=35.0,
        checkpoint_period=240.0,
        page_rate=26000.0,
    ),
    # Cosmology: large memory, heavy periodic checkpoint I/O.
    "hacc": ApplicationSignature(
        name="hacc",
        compute_level=0.82,
        compute_period=45.0,
        compute_duty=0.7,
        comm_level=0.45,
        mem_mb=52000.0,
        mem_shape="grow",
        file_cache_mb=4000.0,
        io_read_mbps=6.0,
        io_write_mbps=160.0,
        checkpoint_period=150.0,
        page_rate=34000.0,
    ),
    # Seismic modelling: stencil code, moderate comm, step memory.
    "sw4": ApplicationSignature(
        name="sw4",
        compute_level=0.78,
        compute_period=34.0,
        compute_duty=0.72,
        comm_level=0.4,
        mem_mb=30000.0,
        mem_shape="steps",
        io_read_mbps=3.0,
        io_write_mbps=70.0,
        checkpoint_period=200.0,
        page_rate=29000.0,
    ),
    # ECP proxy: MD mini-app, like LAMMPS but leaner.
    "examinimd": ApplicationSignature(
        name="examinimd",
        compute_level=0.85,
        compute_period=18.0,
        compute_duty=0.82,
        comm_level=0.25,
        mem_mb=12000.0,
        mem_shape="flat",
        io_read_mbps=0.8,
        io_write_mbps=15.0,
        checkpoint_period=300.0,
        page_rate=20000.0,
    ),
    # ECP proxy: 3-D FFT — alternating compute / all-to-all communication.
    "swfft": ApplicationSignature(
        name="swfft",
        compute_level=0.7,
        compute_period=26.0,
        compute_duty=0.5,
        comm_level=0.65,
        mem_mb=26000.0,
        mem_shape="flat",
        io_read_mbps=1.0,
        io_write_mbps=8.0,
        checkpoint_period=0.0,
        page_rate=31000.0,
    ),
    # ECP proxy: sw4 numerical-kernel variant.
    "sw4lite": ApplicationSignature(
        name="sw4lite",
        compute_level=0.8,
        compute_period=30.0,
        compute_duty=0.75,
        comm_level=0.35,
        mem_mb=17000.0,
        mem_shape="steps",
        io_read_mbps=2.0,
        io_write_mbps=40.0,
        checkpoint_period=260.0,
        page_rate=24000.0,
    ),
}

# -- Volta: NAS parallel benchmarks + Mantevo suite + Kripke ----------------

VOLTA_APPS: dict[str, ApplicationSignature] = {
    "bt": ApplicationSignature(
        name="bt",
        compute_level=0.82,
        compute_period=24.0,
        compute_duty=0.78,
        comm_level=0.3,
        mem_mb=14000.0,
        page_rate=22000.0,
        io_write_mbps=10.0,
        checkpoint_period=0.0,
    ),
    "cg": ApplicationSignature(
        name="cg",
        compute_level=0.68,
        compute_period=14.0,
        compute_duty=0.55,
        comm_level=0.55,
        mem_mb=19000.0,
        page_rate=30000.0,
        io_write_mbps=5.0,
        checkpoint_period=0.0,
    ),
    "ft": ApplicationSignature(
        name="ft",
        compute_level=0.72,
        compute_period=28.0,
        compute_duty=0.5,
        comm_level=0.68,
        mem_mb=24000.0,
        page_rate=33000.0,
        io_write_mbps=6.0,
        checkpoint_period=0.0,
    ),
    "lu": ApplicationSignature(
        name="lu",
        compute_level=0.8,
        compute_period=20.0,
        compute_duty=0.7,
        comm_level=0.42,
        mem_mb=11000.0,
        page_rate=21000.0,
        io_write_mbps=8.0,
        checkpoint_period=0.0,
    ),
    "mg": ApplicationSignature(
        name="mg",
        compute_level=0.75,
        compute_period=36.0,
        compute_duty=0.65,
        comm_level=0.5,
        mem_mb=28000.0,
        mem_shape="steps",
        page_rate=36000.0,
        io_write_mbps=6.0,
        checkpoint_period=0.0,
    ),
    "sp": ApplicationSignature(
        name="sp",
        compute_level=0.79,
        compute_period=22.0,
        compute_duty=0.74,
        comm_level=0.38,
        mem_mb=13000.0,
        page_rate=23000.0,
        io_write_mbps=9.0,
        checkpoint_period=0.0,
    ),
    "minimd": ApplicationSignature(
        name="minimd",
        compute_level=0.86,
        compute_period=16.0,
        compute_duty=0.84,
        comm_level=0.22,
        mem_mb=9000.0,
        page_rate=18000.0,
        io_write_mbps=12.0,
        checkpoint_period=280.0,
    ),
    "comd": ApplicationSignature(
        name="comd",
        compute_level=0.84,
        compute_period=19.0,
        compute_duty=0.8,
        comm_level=0.28,
        mem_mb=10000.0,
        page_rate=19500.0,
        io_write_mbps=14.0,
        checkpoint_period=260.0,
    ),
    "minighost": ApplicationSignature(
        name="minighost",
        compute_level=0.74,
        compute_period=30.0,
        compute_duty=0.66,
        comm_level=0.48,
        mem_mb=16000.0,
        page_rate=26000.0,
        io_write_mbps=7.0,
        checkpoint_period=0.0,
    ),
    "miniamr": ApplicationSignature(
        name="miniamr",
        compute_level=0.72,
        compute_period=40.0,
        compute_duty=0.68,
        comm_level=0.4,
        mem_mb=20000.0,
        mem_shape="sawtooth",
        page_rate=38000.0,
        io_write_mbps=9.0,
        checkpoint_period=0.0,
    ),
    "kripke": ApplicationSignature(
        name="kripke",
        compute_level=0.81,
        compute_period=26.0,
        compute_duty=0.76,
        comm_level=0.36,
        mem_mb=22000.0,
        page_rate=27000.0,
        io_write_mbps=11.0,
        checkpoint_period=0.0,
    ),
}

# -- GPU partition: accelerated applications (omnistat-era collector family) -

GPU_APPS: dict[str, GpuApplicationSignature] = {
    # GPU molecular dynamics: short offload bursts, hot dies, modest VRAM.
    "lammps-gpu": GpuApplicationSignature(
        name="lammps-gpu",
        compute_level=0.45,
        compute_period=22.0,
        compute_duty=0.6,
        comm_level=0.35,
        mem_mb=16000.0,
        io_write_mbps=30.0,
        checkpoint_period=240.0,
        page_rate=20000.0,
        gpu_level=0.9,
        gpu_period=10.0,
        gpu_duty=0.8,
        gpu_vram_mb=22000.0,
        gpu_power_range_w=430.0,
        gpu_temp_range_c=55.0,
    ),
    # Dense-training loop: long kernels, large VRAM set, sustained power.
    "resnet-train": GpuApplicationSignature(
        name="resnet-train",
        compute_level=0.35,
        compute_period=30.0,
        compute_duty=0.5,
        comm_level=0.5,
        mem_mb=24000.0,
        io_read_mbps=18.0,
        io_write_mbps=12.0,
        checkpoint_period=300.0,
        page_rate=24000.0,
        gpu_level=0.95,
        gpu_period=18.0,
        gpu_duty=0.9,
        gpu_vram_mb=52000.0,
        gpu_vram_growth=0.02,
        gpu_power_range_w=470.0,
        gpu_temp_range_c=58.0,
        gpu_thermal_tau_s=35.0,
    ),
    # Lattice-Boltzmann CFD: memory-bandwidth bound, cooler dies.
    "lbm-gpu": GpuApplicationSignature(
        name="lbm-gpu",
        compute_level=0.4,
        compute_period=26.0,
        compute_duty=0.55,
        comm_level=0.45,
        mem_mb=20000.0,
        io_write_mbps=40.0,
        checkpoint_period=200.0,
        page_rate=26000.0,
        gpu_level=0.75,
        gpu_period=14.0,
        gpu_duty=0.65,
        gpu_vram_mb=38000.0,
        gpu_power_range_w=340.0,
        gpu_temp_range_c=42.0,
    ),
    # Graph analytics: irregular occupancy, swinging power draw.
    "pagerank-gpu": GpuApplicationSignature(
        name="pagerank-gpu",
        compute_level=0.5,
        compute_period=16.0,
        compute_duty=0.5,
        comm_level=0.55,
        mem_mb=28000.0,
        page_rate=30000.0,
        io_write_mbps=8.0,
        checkpoint_period=0.0,
        gpu_level=0.6,
        gpu_period=8.0,
        gpu_duty=0.45,
        gpu_vram_mb=30000.0,
        gpu_power_range_w=300.0,
        gpu_temp_range_c=38.0,
        gpu_thermal_tau_s=18.0,
    ),
}

# -- Empire: plasma physics application of production experiment 2 ----------

EMPIRE = ApplicationSignature(
    name="empire",
    compute_level=0.8,
    compute_period=32.0,
    compute_duty=0.7,
    comm_level=0.42,
    mem_mb=34000.0,
    mem_shape="grow",
    file_cache_mb=3000.0,
    io_read_mbps=5.0,
    io_write_mbps=120.0,
    checkpoint_period=140.0,
    page_rate=30000.0,
)


def all_applications() -> dict[str, ApplicationSignature]:
    """Every known application keyed by name."""
    apps: dict[str, ApplicationSignature] = dict(ECLIPSE_APPS)
    apps.update(VOLTA_APPS)
    apps.update(GPU_APPS)
    apps["empire"] = EMPIRE
    return apps


def get_application(name: str) -> ApplicationSignature:
    apps = all_applications()
    try:
        return apps[name]
    except KeyError:
        raise KeyError(f"unknown application {name!r}; known: {sorted(apps)}") from None
