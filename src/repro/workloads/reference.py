"""Frozen pre-schema-refactor synthesizer — the homogeneous parity oracle.

Verbatim snapshot of :class:`MetricSynthesizer` as it stood before the
metric-schema layer landed (per-spec packing, node-level columns only, no
sub-entity expansion, no schema attached to the output).  The refactored
synthesizer packs per *flat column* and draws per-column jitter/noise; for a
catalog whose specs are all cardinality 1 the column axis is the spec axis,
so both must consume the RNG identically and produce **bit-identical**
telemetry.  Parity tests assert exactly that for the default node catalog —
the guarantee that existing homogeneous scenarios are unchanged by the
refactor.

Like :mod:`repro.features.reference`, this module must not be "improved";
it only ever changes if the pre-refactor behaviour was itself wrong.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.telemetry.frame import NodeSeries
from repro.util.rng import ensure_rng
from repro.workloads.metrics import COUNTER, DRIVER_NAMES, MetricCatalog

__all__ = ["PreRefactorSynthesizer"]


class PreRefactorSynthesizer:
    """The pre-refactor driver->telemetry renderer (node-level columns only)."""

    def __init__(self, catalog: MetricCatalog, mem_total_mb: float):
        expanded = [s for s in catalog if s.cardinality != 1]
        if expanded:
            raise ValueError(
                "pre-refactor synthesizer predates sub-entity metrics; "
                f"catalog {catalog.name!r} has per-entity specs "
                f"{[s.full_name for s in expanded]}"
            )
        self.catalog = catalog
        self.mem_total_mb = float(mem_total_mb)
        self._weight_matrix = np.zeros((len(catalog), len(DRIVER_NAMES)))
        self._bases = np.empty(len(catalog))
        self._noises = np.empty(len(catalog))
        self._jitters = np.empty(len(catalog))
        self._is_counter = np.zeros(len(catalog), dtype=bool)
        self._clip_min = np.full(len(catalog), -np.inf)
        driver_pos = {d: i for i, d in enumerate(DRIVER_NAMES)}
        for m, spec in enumerate(catalog):
            base = spec.base
            if spec.full_name == "MemTotal::meminfo":
                base = self.mem_total_mb
            self._bases[m] = base
            self._noises[m] = spec.noise
            self._jitters[m] = spec.node_jitter
            self._is_counter[m] = spec.kind == COUNTER
            if spec.clip_min is not None:
                self._clip_min[m] = spec.clip_min
            for d, w in spec.weights.items():
                self._weight_matrix[m, driver_pos[d]] = w

    def synthesize(
        self,
        drivers: Mapping[str, np.ndarray],
        *,
        job_id: int,
        component_id: int,
        start_time: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> NodeSeries:
        """Produce the raw ``(T, M)`` telemetry of one node run."""
        rng = ensure_rng(seed)
        missing = set(DRIVER_NAMES) - set(drivers)
        if missing:
            raise KeyError(f"missing drivers: {sorted(missing)}")
        lengths = {len(np.asarray(drivers[d])) for d in DRIVER_NAMES}
        if len(lengths) != 1:
            raise ValueError(f"drivers must share one length, got {sorted(lengths)}")
        (n_seconds,) = lengths
        if n_seconds < 1:
            raise ValueError("drivers must cover at least one second")

        dblock = np.column_stack(
            [np.asarray(drivers[d], dtype=np.float64) for d in DRIVER_NAMES]
        )
        inst = dblock @ self._weight_matrix.T + self._bases

        node_factor = 1.0 + self._jitters * rng.standard_normal(len(self.catalog))
        inst *= node_factor

        noisy = inst + self._noises * rng.standard_normal(inst.shape)
        np.maximum(noisy, self._clip_min, out=noisy)

        values = noisy
        if self._is_counter.any():
            cols = self._is_counter
            offsets = rng.uniform(0.0, 1e6, size=int(cols.sum()))
            values[:, cols] = np.cumsum(values[:, cols], axis=0) + offsets

        timestamps = start_time + np.arange(n_seconds, dtype=np.float64)
        return NodeSeries(
            job_id, component_id, timestamps, values, self.catalog.metric_names
        )
