"""GPU application signatures.

Accelerated applications add a second phase structure on top of the CPU
signature: kernel-occupancy waves (offload bursts), a device-memory working
set, and the power/thermal response that follows occupancy with thermal
inertia.  :class:`GpuApplicationSignature` extends
:class:`~repro.workloads.base.ApplicationSignature` with those GPU latent
drivers so the same :class:`~repro.workloads.cluster.JobRunner` renders GPU
node telemetry through a :func:`~repro.workloads.metrics.gpu_catalog`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import (
    ApplicationSignature,
    ou_noise,
    periodic_wave,
    phase_envelope,
)
from repro.workloads.metrics import GPU_DRIVER_NAMES

__all__ = ["GpuApplicationSignature"]


def _thermal_response(
    occupancy: np.ndarray, *, tau_s: float
) -> np.ndarray:
    """First-order thermal lag: temperature follows occupancy with inertia.

    Dies and heatsinks integrate power over tens of seconds; the junction
    temperature is an exponential moving average of the heat input, not the
    instantaneous load.
    """
    n = occupancy.shape[0]
    out = np.empty(n)
    alpha = 1.0 / max(tau_s, 1.0)
    acc = float(occupancy[0]) if n else 0.0
    for i in range(n):
        acc += alpha * (float(occupancy[i]) - acc)
        out[i] = acc
    return out


@dataclass(frozen=True)
class GpuApplicationSignature(ApplicationSignature):
    """CPU signature plus GPU offload phases.

    GPU parameters are in driver units: occupancy fractions, MB for VRAM,
    W for socket power, degrees C for junction temperature.
    """

    #: mean kernel occupancy in [0, 1] during offload phases
    gpu_level: float = 0.85
    #: offload burst period (s); usually shorter than the CPU timestep
    gpu_period: float = 12.0
    #: fraction of each period spent in kernels
    gpu_duty: float = 0.7
    #: device-memory working set (MB)
    gpu_vram_mb: float = 30000.0
    #: VRAM ramp fraction — working set grows this much over the run
    gpu_vram_growth: float = 0.04
    #: socket power at idle (W)
    gpu_power_idle_w: float = 90.0
    #: additional power at full occupancy (W)
    gpu_power_range_w: float = 410.0
    #: junction temperature at idle (deg C)
    gpu_temp_idle_c: float = 38.0
    #: additional junction heat at sustained full occupancy (deg C)
    gpu_temp_range_c: float = 52.0
    #: thermal time constant (s)
    gpu_thermal_tau_s: float = 25.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.gpu_level <= 1.0:
            raise ValueError(f"{self.name}: gpu_level must be in [0,1]")
        if self.gpu_vram_mb <= 0:
            raise ValueError(f"{self.name}: gpu_vram_mb must be positive")

    def generate_drivers(
        self,
        duration_s: int,
        *,
        seed: int | np.random.Generator | None = None,
        node_rank: int = 0,
        n_nodes: int = 1,
    ) -> dict[str, np.ndarray]:
        """CPU drivers from the base signature plus the six GPU channels."""
        from repro.util.rng import ensure_rng

        rng = ensure_rng(seed)
        drivers = super().generate_drivers(
            duration_s, seed=rng, node_rank=node_rank, n_nodes=n_nodes
        )
        n = int(duration_s)
        env = phase_envelope(n)
        run_factor = float(np.exp(self.variability * rng.standard_normal()))
        phase = 0.03 * node_rank / max(n_nodes, 1) + rng.uniform(0.0, 0.05)

        wave = periodic_wave(n, self.gpu_period, duty=self.gpu_duty, phase=phase)
        occupancy = np.clip(
            self.gpu_level * run_factor * env * wave
            + ou_noise(n, rng, sigma=self.noise_sigma),
            0.0,
            1.0,
        )

        # VRAM: allocation ramps in, then holds with slow healthy growth.
        t = np.linspace(0.0, 1.0, n) if n > 1 else np.zeros(n)
        vram = np.clip(
            self.gpu_vram_mb
            * run_factor
            * env
            * (1.0 + self.gpu_vram_growth * t)
            * (1.0 + ou_noise(n, rng, sigma=0.01)),
            0.0,
            None,
        )

        power = np.clip(
            self.gpu_power_idle_w
            + self.gpu_power_range_w * occupancy
            + self.gpu_power_range_w * ou_noise(n, rng, sigma=0.02),
            0.0,
            None,
        )
        temp = np.clip(
            self.gpu_temp_idle_c
            + self.gpu_temp_range_c
            * _thermal_response(occupancy, tau_s=self.gpu_thermal_tau_s)
            + ou_noise(n, rng, sigma=0.4),
            0.0,
            None,
        )
        # Healthy cards: sparse correctable ECC noise, no throttling.
        ecc = np.clip(0.02 * (1.0 + ou_noise(n, rng, sigma=0.5)), 0.0, None)
        throttle = np.zeros(n)

        drivers.update(
            {
                "gpu_compute": occupancy,
                "gpu_vram_mb": vram,
                "gpu_power_w": power,
                "gpu_temp_c": temp,
                "gpu_ecc_rate": ecc,
                "gpu_throttle_rate": throttle,
            }
        )
        assert set(GPU_DRIVER_NAMES) <= set(drivers)
        return drivers
