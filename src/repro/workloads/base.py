"""Application signature model.

Each HPC application in Table 1 of the paper is represented by a *signature*:
a parameterised generator of the latent activity drivers (compute intensity,
communication, memory footprint, I/O, page activity) that the
:class:`~repro.workloads.metrics.MetricSynthesizer` renders into raw node
telemetry.  Signatures encode what makes applications distinguishable —
timestep periodicity, checkpoint cadence, memory growth shape, communication
fraction — plus healthy run-to-run variability.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

import numpy as np

from repro.util.rng import ensure_rng
from repro.workloads.metrics import DRIVER_NAMES

__all__ = [
    "ApplicationSignature",
    "ou_noise",
    "phase_envelope",
    "periodic_wave",
    "checkpoint_train",
]

MemShape = Literal["flat", "grow", "sawtooth", "steps"]


def ou_noise(
    n: int, rng: np.random.Generator, *, sigma: float = 0.05, theta: float = 0.08
) -> np.ndarray:
    """Ornstein-Uhlenbeck noise: temporally correlated, mean-reverting to 0.

    Telemetry fluctuation is autocorrelated (system daemons, turbo states),
    not white; OU noise gives the feature extractor realistic
    autocorrelation structure to measure.
    """
    if n <= 0:
        return np.zeros(0)
    steps = sigma * np.sqrt(2.0 * theta) * rng.standard_normal(n)
    out = np.empty(n)
    acc = 0.0
    decay = 1.0 - theta
    # Scalar recursion; n is a few hundred so this stays off the hot path.
    for i in range(n):
        acc = decay * acc + steps[i]
        out[i] = acc
    return out


def phase_envelope(n: int, *, ramp_fraction: float = 0.05) -> np.ndarray:
    """Trapezoid in [0, 1]: linear ramp-in, plateau, linear ramp-out.

    Models initialisation and termination phases of an application run (the
    paper trims 60 s from each end precisely because of these transients).
    """
    if n <= 0:
        return np.zeros(0)
    ramp = max(1, int(round(n * ramp_fraction)))
    env = np.ones(n)
    up = np.linspace(0.0, 1.0, ramp, endpoint=False)
    env[:ramp] = up
    env[n - ramp :] = up[::-1]
    return env


def periodic_wave(
    n: int,
    period: float,
    *,
    duty: float = 0.5,
    phase: float = 0.0,
    smooth: float = 2.0,
) -> np.ndarray:
    """Smoothed square wave in [0, 1] modelling timestep compute/comm loops.

    ``duty`` is the high fraction of each period; ``smooth`` controls edge
    sharpness (sigmoid half-width in seconds).
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    t = np.arange(n, dtype=np.float64)
    pos = ((t / period) + phase) % 1.0
    # Distance (in period fraction) inside the duty window, mapped by sigmoid.
    edge = smooth / period
    rise = 1.0 / (1.0 + np.exp(-(duty - pos) / max(edge, 1e-6)))
    start = 1.0 / (1.0 + np.exp(-(pos) / max(edge, 1e-6)))
    return np.clip(rise * start, 0.0, 1.0)


def checkpoint_train(
    n: int, period: float, *, width: float = 8.0, phase: float = 0.3
) -> np.ndarray:
    """Train of Gaussian I/O bursts (checkpoint writes) in [0, 1]."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    t = np.arange(n, dtype=np.float64)
    centers = np.arange(phase * period, n + period, period)
    out = np.zeros(n)
    for c in centers:
        out += np.exp(-0.5 * ((t - c) / width) ** 2)
    return np.clip(out, 0.0, 1.0)


@dataclass(frozen=True)
class ApplicationSignature:
    """Parameterised latent-driver generator for one application.

    Parameters are in driver units (fractions for intensities, MB for
    memory, MB/s for I/O, events/s for page activity).
    """

    name: str
    #: mean compute intensity in [0, 1] during compute phases
    compute_level: float = 0.8
    #: timestep period (s) of the compute/communication alternation
    compute_period: float = 30.0
    #: fraction of each period spent computing (rest communicates)
    compute_duty: float = 0.75
    #: communication intensity during comm phases, [0, 1]
    comm_level: float = 0.35
    #: resident memory at steady state (MB)
    mem_mb: float = 18000.0
    #: memory profile over the run
    mem_shape: MemShape = "flat"
    #: page-cache working set (MB)
    file_cache_mb: float = 1500.0
    #: background read rate (MB/s)
    io_read_mbps: float = 2.0
    #: checkpoint write burst height (MB/s); 0 disables checkpoints
    io_write_mbps: float = 60.0
    #: checkpoint period (s)
    checkpoint_period: float = 180.0
    #: page-fault/allocation activity during compute (events/s)
    page_rate: float = 25000.0
    #: healthy run-to-run variability (std of log-scale factor)
    variability: float = 0.06
    #: temporally correlated noise level on intensities
    noise_sigma: float = 0.035

    def __post_init__(self) -> None:
        if not 0.0 <= self.compute_level <= 1.0:
            raise ValueError(f"{self.name}: compute_level must be in [0,1]")
        if not 0.0 < self.compute_duty <= 1.0:
            raise ValueError(f"{self.name}: compute_duty must be in (0,1]")
        if self.mem_mb <= 0:
            raise ValueError(f"{self.name}: mem_mb must be positive")

    def scaled(self, **overrides: float) -> ApplicationSignature:
        """Return a copy with parameter overrides (e.g. larger input deck)."""
        return replace(self, **overrides)

    # -- driver generation ---------------------------------------------------

    def generate_drivers(
        self,
        duration_s: int,
        *,
        seed: int | np.random.Generator | None = None,
        node_rank: int = 0,
        n_nodes: int = 1,
    ) -> dict[str, np.ndarray]:
        """Generate the latent driver series for one node of one run.

        ``node_rank``/``n_nodes`` de-phase the timestep loops across nodes
        slightly (collective operations synchronise but never perfectly) and
        assign rank 0 extra I/O work (typical of gather-then-write output).
        """
        if duration_s < 4:
            raise ValueError(f"duration_s must be >= 4, got {duration_s}")
        rng = ensure_rng(seed)
        n = int(duration_s)

        # Healthy run-to-run variability: one log-normal factor per run/node.
        run_factor = float(np.exp(self.variability * rng.standard_normal()))
        env = phase_envelope(n)
        phase_shift = 0.02 * node_rank / max(n_nodes, 1) + rng.uniform(0.0, 0.05)

        wave = periodic_wave(n, self.compute_period, duty=self.compute_duty, phase=phase_shift)
        compute = np.clip(
            self.compute_level * run_factor * env * wave
            + ou_noise(n, rng, sigma=self.noise_sigma),
            0.0,
            1.0,
        )
        comm = np.clip(
            self.comm_level * run_factor * env * (1.0 - wave)
            + 0.2 * self.comm_level * env
            + ou_noise(n, rng, sigma=self.noise_sigma),
            0.0,
            1.0,
        )

        memory = self._memory_profile(n, rng) * run_factor
        cache = np.clip(
            self.file_cache_mb * env * (0.7 + 0.3 * wave)
            + self.file_cache_mb * ou_noise(n, rng, sigma=0.05),
            0.0,
            None,
        )

        io_boost = 1.6 if node_rank == 0 else 1.0
        reads = np.clip(
            self.io_read_mbps * env * (1.0 + ou_noise(n, rng, sigma=0.25)), 0.0, None
        )
        writes = np.zeros(n)
        if self.io_write_mbps > 0 and self.checkpoint_period > 0:
            ckpt_phase = rng.uniform(0.2, 0.6)
            writes = (
                self.io_write_mbps
                * io_boost
                * checkpoint_train(n, self.checkpoint_period, phase=ckpt_phase)
            )
        writes = np.clip(writes + 0.4 * env * (1.0 + ou_noise(n, rng, sigma=0.3)), 0.0, None)

        pages = np.clip(
            self.page_rate * run_factor * env * (0.35 + 0.65 * wave)
            + self.page_rate * ou_noise(n, rng, sigma=0.06),
            0.0,
            None,
        )

        # Healthy nodes see negligible reclaim pressure and no swapping.
        pressure = np.clip(0.004 + 0.01 * ou_noise(n, rng, sigma=0.4), 0.0, 1.0)
        swap = np.zeros(n)

        iowait = np.clip(
            0.01 * env + 0.002 * (reads + writes) / max(self.io_write_mbps, 1.0), 0.0, 1.0
        )

        drivers = {
            "compute": compute,
            "comm": comm,
            "iowait": iowait,
            "memory_mb": memory,
            "file_cache_mb": cache,
            "io_read_mbps": reads,
            "io_write_mbps": writes,
            "page_rate": pages,
            "cache_pressure": pressure,
            "swap_rate": swap,
        }
        assert set(drivers) == set(DRIVER_NAMES)
        return drivers

    def _memory_profile(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Resident-set trajectory according to ``mem_shape``."""
        env = phase_envelope(n, ramp_fraction=0.04)
        t = np.linspace(0.0, 1.0, n)
        if self.mem_shape == "flat":
            prof = np.ones(n)
        elif self.mem_shape == "grow":
            # Slow healthy growth (e.g. accumulating diagnostics), <= +12 %.
            prof = 1.0 + 0.12 * t
        elif self.mem_shape == "sawtooth":
            # AMR-style: refine (grow) then regrid (drop), a few cycles.
            cycles = 4.0
            prof = 1.0 + 0.18 * ((t * cycles) % 1.0)
        elif self.mem_shape == "steps":
            # Multigrid-style level changes.
            prof = 1.0 + 0.1 * np.floor(t * 4.0) / 4.0
        else:  # pragma: no cover - guarded by Literal type
            raise ValueError(f"unknown mem_shape {self.mem_shape!r}")
        base = self.mem_mb * prof * env
        return np.clip(base * (1.0 + ou_noise(n, rng, sigma=0.01)), 0.0, None)
